//! Job specifications, states, and lifecycle events.

use hpcci_cluster::{NodeId, Uid};
use hpcci_sim::{SimDuration, SimTime};
use std::fmt;

/// Scheduler-assigned job identifier (monotonic per scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// What the job does once its allocation starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPayload {
    /// Classic batch job: occupies the allocation for a known duration, then
    /// exits with `success`.
    Fixed { duration: SimDuration, success: bool },
    /// Pilot job: holds the allocation until cancelled or until walltime —
    /// the Globus Compute / Parsl model (§5.1). Tasks are multiplexed onto it
    /// by the FaaS layer.
    Pilot,
}

/// A job submission request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    pub name: String,
    /// Local account the job runs as — HPC security invariant (i): every job
    /// is attributable to the submitting local user.
    pub user: Uid,
    /// Allocation/project charged.
    pub allocation: String,
    pub partition: String,
    pub nodes: u32,
    pub cores_per_node: u32,
    pub walltime: SimDuration,
    pub payload: JobPayload,
}

impl JobSpec {
    /// A conventional single-node job.
    pub fn single_node(name: &str, user: Uid, allocation: &str, cores: u32, walltime: SimDuration) -> Self {
        JobSpec {
            name: name.to_string(),
            user,
            allocation: allocation.to_string(),
            partition: "compute".to_string(),
            nodes: 1,
            cores_per_node: cores,
            walltime,
            payload: JobPayload::Pilot,
        }
    }

    pub fn with_payload(mut self, payload: JobPayload) -> Self {
        self.payload = payload;
        self
    }

    pub fn with_partition(mut self, partition: &str) -> Self {
        self.partition = partition.to_string();
        self
    }

    pub fn with_nodes(mut self, nodes: u32) -> Self {
        assert!(nodes > 0);
        self.nodes = nodes;
        self
    }

    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.cores_per_node as u64
    }
}

/// Job lifecycle state. Terminal states carry their timestamps so accounting
/// can compute queue wait and runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in queue since the given submit time.
    Pending { submitted: SimTime },
    /// Running since `started` on an allocation.
    Running { submitted: SimTime, started: SimTime },
    /// Exited normally.
    Completed { submitted: SimTime, started: SimTime, ended: SimTime, success: bool },
    /// Killed by the scheduler for exceeding walltime.
    TimedOut { submitted: SimTime, started: SimTime, ended: SimTime },
    /// Cancelled by the user (pending or running).
    Cancelled { submitted: SimTime, ended: SimTime },
    /// Evicted by the scheduler (node drain/maintenance). Fixed jobs are
    /// requeued as fresh submissions; pilots are re-provisioned by their
    /// endpoint.
    Preempted { submitted: SimTime, started: SimTime, ended: SimTime },
}

impl JobState {
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed { .. }
                | JobState::TimedOut { .. }
                | JobState::Cancelled { .. }
                | JobState::Preempted { .. }
        )
    }

    pub fn is_running(&self) -> bool {
        matches!(self, JobState::Running { .. })
    }

    pub fn is_pending(&self) -> bool {
        matches!(self, JobState::Pending { .. })
    }

    /// Queue wait: submit → start (None if never started).
    pub fn queue_wait(&self) -> Option<SimDuration> {
        match self {
            JobState::Running { submitted, started }
            | JobState::Completed { submitted, started, .. }
            | JobState::TimedOut { submitted, started, .. }
            | JobState::Preempted { submitted, started, .. } => Some(started.since(*submitted)),
            _ => None,
        }
    }

    /// Wall-clock runtime (None unless terminal-after-start).
    pub fn runtime(&self) -> Option<SimDuration> {
        match self {
            JobState::Completed { started, ended, .. }
            | JobState::TimedOut { started, ended, .. }
            | JobState::Preempted { started, ended, .. } => Some(ended.since(*started)),
            _ => None,
        }
    }
}

/// Events emitted by the scheduler for upper layers (FaaS endpoints poll
/// these to learn when their pilot started).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    Started { job: JobId, at: SimTime, nodes: Vec<NodeId> },
    Ended { job: JobId, at: SimTime, state: JobState },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder() {
        let s = JobSpec::single_node("pilot", Uid(1001), "CIS230030", 8, SimDuration::from_hours(1))
            .with_nodes(4)
            .with_partition("gpu")
            .with_payload(JobPayload::Fixed {
                duration: SimDuration::from_mins(5),
                success: true,
            });
        assert_eq!(s.total_cores(), 32);
        assert_eq!(s.partition, "gpu");
    }

    #[test]
    fn state_predicates_and_durations() {
        let submitted = SimTime::from_secs(10);
        let started = SimTime::from_secs(40);
        let ended = SimTime::from_secs(100);
        let pending = JobState::Pending { submitted };
        assert!(pending.is_pending() && !pending.is_terminal());
        assert_eq!(pending.queue_wait(), None);

        let done = JobState::Completed { submitted, started, ended, success: true };
        assert!(done.is_terminal());
        assert_eq!(done.queue_wait(), Some(SimDuration::from_secs(30)));
        assert_eq!(done.runtime(), Some(SimDuration::from_secs(60)));

        let cancelled = JobState::Cancelled { submitted, ended };
        assert!(cancelled.is_terminal());
        assert_eq!(cancelled.runtime(), None);
    }
}
