//! # hpcci-scheduler — a SLURM-like batch scheduler
//!
//! HPC CI is hard precisely because compute is reached through a batch
//! scheduler rather than started directly (§3, §4.4). This crate implements
//! the scheduler the rest of the federation submits to:
//!
//! * [`job::JobSpec`] — name, owner, node/core/walltime request, payload;
//! * [`engine::BatchScheduler`] — event-driven engine with FIFO dispatch plus
//!   **EASY backfill** (later jobs may start early iff they cannot delay the
//!   queue head), walltime enforcement, cancellation, per-node core
//!   accounting;
//! * [`accounting::AccountingLog`] — an `sacct`-style record of every
//!   terminal job, used by provenance capture;
//! * [`provider::ExecutionProvider`] — the Parsl-style resource-provisioning
//!   abstraction Globus Compute endpoints use: [`provider::LocalProvider`]
//!   runs workers directly on the login node, [`provider::SlurmProvider`]
//!   provisions **pilot jobs** through the batch scheduler (§5.1, §7.3).
//!
//! Jobs are either fixed-duration batch work or open-ended *pilots* that run
//! until cancelled or until their walltime expires — the pilot model is what
//! lets CORRECT amortize one allocation over many test tasks.

pub mod accounting;
pub mod engine;
pub mod error;
pub mod job;
pub mod partition;
pub mod provider;

pub use accounting::AccountingLog;
pub use engine::{BatchScheduler, SchedulerConfig, SchedulingPolicy};
pub use error::SchedulerError;
pub use job::{JobEvent, JobId, JobPayload, JobSpec, JobState};
pub use partition::Partition;
pub use provider::{BlockId, BlockState, ExecutionProvider, LocalProvider, SlurmProvider};
