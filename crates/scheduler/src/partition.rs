//! Partitions: named groups of nodes with limits.

use hpcci_cluster::NodeId;
use hpcci_sim::SimDuration;

/// A scheduler partition (SLURM terminology): a set of nodes plus policy
/// limits that job requests are validated against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    pub name: String,
    pub nodes: Vec<NodeId>,
    /// Cores per node in this partition (homogeneous within a partition).
    pub cores_per_node: u32,
    /// Upper bound on requested walltime.
    pub max_walltime: SimDuration,
    /// Maximum nodes a single job may request (0 = whole partition).
    pub max_nodes_per_job: u32,
}

impl Partition {
    pub fn new(name: &str, nodes: Vec<NodeId>, cores_per_node: u32) -> Self {
        Partition {
            name: name.to_string(),
            nodes,
            cores_per_node,
            max_walltime: SimDuration::from_hours(48),
            max_nodes_per_job: 0,
        }
    }

    pub fn with_max_walltime(mut self, d: SimDuration) -> Self {
        self.max_walltime = d;
        self
    }

    pub fn with_max_nodes_per_job(mut self, n: u32) -> Self {
        self.max_nodes_per_job = n;
        self
    }

    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Effective per-job node cap.
    pub fn job_node_cap(&self) -> u32 {
        if self.max_nodes_per_job == 0 {
            self.node_count()
        } else {
            self.max_nodes_per_job.min(self.node_count())
        }
    }

    /// Can a request of this shape *ever* run here?
    pub fn admits(&self, nodes: u32, cores_per_node: u32, walltime: SimDuration) -> bool {
        nodes > 0
            && nodes <= self.job_node_cap()
            && cores_per_node > 0
            && cores_per_node <= self.cores_per_node
            && walltime <= self.max_walltime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition() -> Partition {
        Partition::new("compute", (0..4).map(NodeId).collect(), 64)
            .with_max_walltime(SimDuration::from_hours(2))
            .with_max_nodes_per_job(2)
    }

    #[test]
    fn admission_rules() {
        let p = partition();
        assert!(p.admits(1, 64, SimDuration::from_hours(1)));
        assert!(p.admits(2, 1, SimDuration::from_hours(2)));
        assert!(!p.admits(3, 1, SimDuration::from_hours(1)), "node cap");
        assert!(!p.admits(1, 65, SimDuration::from_hours(1)), "core cap");
        assert!(!p.admits(1, 64, SimDuration::from_hours(3)), "walltime cap");
        assert!(!p.admits(0, 64, SimDuration::from_hours(1)), "zero nodes");
    }

    #[test]
    fn zero_cap_means_whole_partition() {
        let p = Partition::new("all", (0..8).map(NodeId).collect(), 32);
        assert_eq!(p.job_node_cap(), 8);
        assert!(p.admits(8, 32, SimDuration::from_hours(1)));
    }
}
