//! `sacct`-style accounting: a permanent record of every terminal job.
//!
//! Provenance capture (§5, §7.4) reads this log to document what ran, as
//! which user, charged to which allocation, for how long.

use crate::job::{JobId, JobState};
use hpcci_cluster::Uid;
use hpcci_sim::SimDuration;

/// One terminal job record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountingRecord {
    pub job: JobId,
    pub name: String,
    pub user: Uid,
    pub allocation: String,
    pub partition: String,
    pub nodes: u32,
    pub cores_per_node: u32,
    pub state: JobState,
}

impl AccountingRecord {
    /// Core-seconds charged to the allocation (0 if the job never started).
    pub fn core_seconds(&self) -> f64 {
        let runtime = self.state.runtime().unwrap_or(SimDuration::ZERO);
        runtime.as_secs_f64() * (self.nodes as u64 * self.cores_per_node as u64) as f64
    }
}

/// Append-only accounting log.
#[derive(Debug, Clone, Default)]
pub struct AccountingLog {
    records: Vec<AccountingRecord>,
}

impl AccountingLog {
    pub fn new() -> Self {
        AccountingLog::default()
    }

    pub fn append(&mut self, record: AccountingRecord) {
        debug_assert!(record.state.is_terminal(), "accounting only stores terminal jobs");
        self.records.push(record);
    }

    pub fn records(&self) -> &[AccountingRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records charged to `allocation`.
    pub fn by_allocation<'a>(&'a self, allocation: &'a str) -> impl Iterator<Item = &'a AccountingRecord> {
        self.records.iter().filter(move |r| r.allocation == allocation)
    }

    /// All records for `user`.
    pub fn by_user(&self, user: Uid) -> impl Iterator<Item = &AccountingRecord> {
        self.records.iter().filter(move |r| r.user == user)
    }

    /// Total core-seconds charged to `allocation`.
    pub fn usage(&self, allocation: &str) -> f64 {
        self.by_allocation(allocation).map(AccountingRecord::core_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_sim::SimTime;

    fn completed(job: u64, user: u32, alloc: &str, cores: u32, secs: u64) -> AccountingRecord {
        AccountingRecord {
            job: JobId(job),
            name: format!("j{job}"),
            user: Uid(user),
            allocation: alloc.to_string(),
            partition: "compute".to_string(),
            nodes: 1,
            cores_per_node: cores,
            state: JobState::Completed {
                submitted: SimTime::ZERO,
                started: SimTime::from_secs(5),
                ended: SimTime::from_secs(5 + secs),
                success: true,
            },
        }
    }

    #[test]
    fn usage_sums_core_seconds() {
        let mut log = AccountingLog::new();
        log.append(completed(1, 1001, "projA", 4, 100));
        log.append(completed(2, 1001, "projA", 2, 50));
        log.append(completed(3, 1002, "projB", 8, 10));
        assert_eq!(log.usage("projA"), 4.0 * 100.0 + 2.0 * 50.0);
        assert_eq!(log.usage("projB"), 80.0);
        assert_eq!(log.usage("nothing"), 0.0);
        assert_eq!(log.by_user(Uid(1001)).count(), 2);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn cancelled_jobs_charge_nothing() {
        let r = AccountingRecord {
            state: JobState::Cancelled {
                submitted: SimTime::ZERO,
                ended: SimTime::from_secs(9),
            },
            ..completed(4, 1001, "projA", 16, 0)
        };
        assert_eq!(r.core_seconds(), 0.0);
    }
}
