//! Execution providers: the Parsl-style resource-provisioning abstraction.
//!
//! Globus Compute endpoints "use Parsl to dynamically provision resources,
//! deploy a pilot job model, and manage the execution of tasks on those
//! resources" (§5.1). A provider turns "give me a worker block" into either:
//!
//! * [`LocalProvider`] — a worker process on the login node, active almost
//!   immediately (used on Anvil for the PSI/J tests, and on FASTER/Expanse
//!   for the repository clone step, §6.1–6.2);
//! * [`SlurmProvider`] — a **pilot job** submitted through the batch
//!   scheduler; the block becomes active when the allocation starts and dies
//!   with it (used for the ParslDock test execution on compute nodes).
//!
//! The distinction matters for two paper points: network policy (login nodes
//! have outbound internet, compute nodes may not) and overhead (§7.3 —
//! pilots amortize one queue wait over many tasks).

use crate::engine::BatchScheduler;
use crate::error::SchedulerError;
use crate::job::{JobId, JobSpec, JobState};
use hpcci_cluster::{NodeId, NodeRole, Uid};
use hpcci_sim::{Advance, SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Provider-level identifier of a worker block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Lifecycle of a worker block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockState {
    /// Requested but not yet active (queued pilot / starting process).
    Requested { since: SimTime },
    /// Workers are live on these nodes.
    Active { since: SimTime, nodes: Vec<NodeId>, role: NodeRole },
    /// Block has ended (released, pilot finished, or walltime expired).
    Terminated { at: SimTime },
}

impl BlockState {
    pub fn is_active(&self) -> bool {
        matches!(self, BlockState::Active { .. })
    }
}

/// Common provider interface consumed by FaaS endpoints.
pub trait ExecutionProvider {
    /// Ask for one worker block. Non-blocking: poll [`ExecutionProvider::block_state`].
    fn request_block(&mut self, now: SimTime) -> Result<BlockId, SchedulerError>;

    /// Current state of a block.
    fn block_state(&mut self, id: BlockId, now: SimTime) -> Result<BlockState, SchedulerError>;

    /// Release a block (drain the pilot / stop the local worker).
    fn release_block(&mut self, id: BlockId, now: SimTime) -> Result<(), SchedulerError>;

    /// Cores available to each worker block.
    fn cores_per_block(&self) -> u32;

    /// Role of the nodes this provider places workers on — determines the
    /// network zone for tasks (login nodes reach the internet, compute nodes
    /// may not).
    fn node_role(&self) -> NodeRole;

    /// Virtual time at which the provider next changes state on its own, if
    /// known (used by drivers to avoid busy-polling).
    fn next_event(&self) -> Option<SimTime>;
}

// ---------------------------------------------------------------------
// LocalProvider
// ---------------------------------------------------------------------

/// Workers forked directly on the login node.
pub struct LocalProvider {
    login_node: NodeId,
    cores: u32,
    /// Worker process spawn latency.
    startup: SimDuration,
    blocks: BTreeMap<BlockId, BlockState>,
    /// Blocks still starting: (ready_at).
    starting: BTreeMap<BlockId, SimTime>,
    next_id: u64,
}

impl LocalProvider {
    pub fn new(login_node: NodeId, cores: u32) -> Self {
        LocalProvider {
            login_node,
            cores,
            startup: SimDuration::from_millis(500),
            blocks: BTreeMap::new(),
            starting: BTreeMap::new(),
            next_id: 1,
        }
    }

    pub fn with_startup(mut self, d: SimDuration) -> Self {
        self.startup = d;
        self
    }

    fn settle(&mut self, now: SimTime) {
        let ready: Vec<BlockId> = self
            .starting
            .iter()
            .filter(|(_, &t)| t <= now)
            .map(|(&b, _)| b)
            .collect();
        for b in ready {
            let since = self.starting.remove(&b).expect("key present");
            self.blocks.insert(
                b,
                BlockState::Active {
                    since,
                    nodes: vec![self.login_node],
                    role: NodeRole::Login,
                },
            );
        }
    }
}

impl ExecutionProvider for LocalProvider {
    fn request_block(&mut self, now: SimTime) -> Result<BlockId, SchedulerError> {
        let id = BlockId(self.next_id);
        self.next_id += 1;
        self.blocks.insert(id, BlockState::Requested { since: now });
        self.starting.insert(id, now + self.startup);
        Ok(id)
    }

    fn block_state(&mut self, id: BlockId, now: SimTime) -> Result<BlockState, SchedulerError> {
        self.settle(now);
        self.blocks
            .get(&id)
            .cloned()
            .ok_or(SchedulerError::UnknownBlock(id.0))
    }

    fn release_block(&mut self, id: BlockId, now: SimTime) -> Result<(), SchedulerError> {
        self.settle(now);
        if !self.blocks.contains_key(&id) {
            return Err(SchedulerError::UnknownBlock(id.0));
        }
        self.starting.remove(&id);
        self.blocks.insert(id, BlockState::Terminated { at: now });
        Ok(())
    }

    fn cores_per_block(&self) -> u32 {
        self.cores
    }

    fn node_role(&self) -> NodeRole {
        NodeRole::Login
    }

    fn next_event(&self) -> Option<SimTime> {
        self.starting.values().min().copied()
    }
}

// ---------------------------------------------------------------------
// SlurmProvider
// ---------------------------------------------------------------------

/// Workers provisioned as pilot jobs through a shared [`BatchScheduler`].
pub struct SlurmProvider {
    scheduler: Arc<Mutex<BatchScheduler>>,
    user: Uid,
    allocation: String,
    partition: String,
    nodes_per_block: u32,
    cores_per_node: u32,
    walltime: SimDuration,
    blocks: BTreeMap<BlockId, JobId>,
    released: BTreeMap<BlockId, SimTime>,
    next_id: u64,
}

impl SlurmProvider {
    pub fn new(
        scheduler: Arc<Mutex<BatchScheduler>>,
        user: Uid,
        allocation: &str,
        cores_per_node: u32,
        walltime: SimDuration,
    ) -> Self {
        SlurmProvider {
            scheduler,
            user,
            allocation: allocation.to_string(),
            partition: "compute".to_string(),
            nodes_per_block: 1,
            cores_per_node,
            walltime,
            blocks: BTreeMap::new(),
            released: BTreeMap::new(),
            next_id: 1,
        }
    }

    pub fn with_nodes_per_block(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.nodes_per_block = n;
        self
    }

    pub fn with_partition(mut self, p: &str) -> Self {
        self.partition = p.to_string();
        self
    }

    /// The scheduler job backing a block (for tests/accounting).
    pub fn job_of(&self, id: BlockId) -> Option<JobId> {
        self.blocks.get(&id).copied()
    }
}

impl ExecutionProvider for SlurmProvider {
    fn request_block(&mut self, now: SimTime) -> Result<BlockId, SchedulerError> {
        let spec = JobSpec {
            name: format!("gc-pilot-{}", self.next_id),
            user: self.user,
            allocation: self.allocation.clone(),
            partition: self.partition.clone(),
            nodes: self.nodes_per_block,
            cores_per_node: self.cores_per_node,
            walltime: self.walltime,
            payload: crate::job::JobPayload::Pilot,
        };
        let job = self.scheduler.lock().submit(spec, now)?;
        let id = BlockId(self.next_id);
        self.next_id += 1;
        self.blocks.insert(id, job);
        Ok(id)
    }

    fn block_state(&mut self, id: BlockId, now: SimTime) -> Result<BlockState, SchedulerError> {
        let job = *self.blocks.get(&id).ok_or(SchedulerError::UnknownBlock(id.0))?;
        let mut sched = self.scheduler.lock();
        if sched.now() < now {
            sched.advance_to(now);
        }
        let state = sched.state(job)?;
        Ok(match state {
            JobState::Pending { submitted } => BlockState::Requested { since: submitted },
            JobState::Running { started, .. } => {
                // Recover the allocated nodes from the start event history is
                // overkill; the scheduler doesn't expose allocations, so we
                // report the role (Compute) and synthesize node ids from the
                // job id for placement-sensitive callers.
                BlockState::Active {
                    since: started,
                    nodes: Vec::new(),
                    role: NodeRole::Compute,
                }
            }
            JobState::Completed { ended, .. }
            | JobState::TimedOut { ended, .. }
            | JobState::Cancelled { ended, .. }
            | JobState::Preempted { ended, .. } => BlockState::Terminated { at: ended },
        })
    }

    fn release_block(&mut self, id: BlockId, now: SimTime) -> Result<(), SchedulerError> {
        let job = *self.blocks.get(&id).ok_or(SchedulerError::UnknownBlock(id.0))?;
        let mut sched = self.scheduler.lock();
        match sched.state(job)? {
            JobState::Running { .. } => sched.shutdown_pilot(job, true, now)?,
            JobState::Pending { .. } => sched.cancel(job, now)?,
            _ => {}
        }
        self.released.insert(id, now);
        Ok(())
    }

    fn cores_per_block(&self) -> u32 {
        self.nodes_per_block * self.cores_per_node
    }

    fn node_role(&self) -> NodeRole {
        NodeRole::Compute
    }

    fn next_event(&self) -> Option<SimTime> {
        self.scheduler.lock().next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_provider_activates_after_startup() {
        let mut p = LocalProvider::new(NodeId(0), 16).with_startup(SimDuration::from_secs(1));
        let b = p.request_block(SimTime::ZERO).unwrap();
        assert!(matches!(
            p.block_state(b, SimTime::from_millis(500)).unwrap(),
            BlockState::Requested { .. }
        ));
        let st = p.block_state(b, SimTime::from_secs(2)).unwrap();
        assert!(st.is_active());
        if let BlockState::Active { nodes, role, .. } = st {
            assert_eq!(nodes, vec![NodeId(0)]);
            assert_eq!(role, NodeRole::Login);
        }
        p.release_block(b, SimTime::from_secs(3)).unwrap();
        assert!(matches!(
            p.block_state(b, SimTime::from_secs(3)).unwrap(),
            BlockState::Terminated { .. }
        ));
    }

    #[test]
    fn local_provider_unknown_block() {
        let mut p = LocalProvider::new(NodeId(0), 16);
        assert!(matches!(
            p.block_state(BlockId(99), SimTime::ZERO),
            Err(SchedulerError::UnknownBlock(99))
        ));
    }

    fn shared_scheduler(nodes: u32, cores: u32) -> Arc<Mutex<BatchScheduler>> {
        Arc::new(Mutex::new(BatchScheduler::with_compute_partition(
            (0..nodes).map(NodeId).collect(),
            cores,
        )))
    }

    #[test]
    fn slurm_provider_pilot_lifecycle() {
        let sched = shared_scheduler(2, 8);
        let mut p = SlurmProvider::new(
            sched.clone(),
            Uid(1001),
            "CIS230030",
            8,
            SimDuration::from_mins(30),
        );
        let b = p.request_block(SimTime::ZERO).unwrap();
        // Idle machine: pilot starts immediately.
        let st = p.block_state(b, SimTime::from_secs(1)).unwrap();
        assert!(st.is_active());
        assert_eq!(p.cores_per_block(), 8);
        assert_eq!(p.node_role(), NodeRole::Compute);
        // Release -> scheduler records a successful pilot completion.
        p.release_block(b, SimTime::from_secs(100)).unwrap();
        let job = p.job_of(b).unwrap();
        assert!(matches!(
            sched.lock().state(job).unwrap(),
            JobState::Completed { success: true, .. }
        ));
    }

    #[test]
    fn slurm_provider_blocks_queue_when_machine_full() {
        let sched = shared_scheduler(1, 8);
        let mut p = SlurmProvider::new(
            sched.clone(),
            Uid(1001),
            "a",
            8,
            SimDuration::from_mins(10),
        );
        let b1 = p.request_block(SimTime::ZERO).unwrap();
        let b2 = p.request_block(SimTime::ZERO).unwrap();
        assert!(p.block_state(b1, SimTime::from_secs(1)).unwrap().is_active());
        assert!(matches!(
            p.block_state(b2, SimTime::from_secs(1)).unwrap(),
            BlockState::Requested { .. }
        ));
        // Releasing b1 frees the node; b2 starts.
        p.release_block(b1, SimTime::from_secs(5)).unwrap();
        assert!(p.block_state(b2, SimTime::from_secs(6)).unwrap().is_active());
    }

    #[test]
    fn slurm_provider_block_dies_at_walltime() {
        let sched = shared_scheduler(1, 8);
        let mut p = SlurmProvider::new(sched.clone(), Uid(1001), "a", 8, SimDuration::from_mins(1));
        let b = p.request_block(SimTime::ZERO).unwrap();
        assert!(p.block_state(b, SimTime::from_secs(30)).unwrap().is_active());
        sched.lock().advance_to(SimTime::from_secs(120));
        assert!(matches!(
            p.block_state(b, SimTime::from_secs(120)).unwrap(),
            BlockState::Terminated { .. }
        ));
    }

    #[test]
    fn release_pending_block_cancels_job() {
        let sched = shared_scheduler(1, 8);
        let mut p = SlurmProvider::new(sched.clone(), Uid(1), "a", 8, SimDuration::from_mins(10));
        let b1 = p.request_block(SimTime::ZERO).unwrap();
        let b2 = p.request_block(SimTime::ZERO).unwrap();
        p.release_block(b2, SimTime::from_secs(1)).unwrap();
        let job2 = p.job_of(b2).unwrap();
        assert!(matches!(
            sched.lock().state(job2).unwrap(),
            JobState::Cancelled { .. }
        ));
        let _ = b1;
    }
}
