//! The batch scheduler engine.
//!
//! Event-driven: job-end events live in an internal [`EventQueue`]; a
//! scheduling pass runs after every state change (submission, completion,
//! cancellation). Two policies are provided — plain FIFO and **EASY
//! backfill** (Lifka '95): later jobs may start out of order only if their
//! requested walltime guarantees they finish before the earliest time the
//! queue head could otherwise start (the *shadow time*). The
//! `scheduler_backfill` bench ablates the two.

use crate::accounting::{AccountingLog, AccountingRecord};
use crate::error::SchedulerError;
use crate::job::{JobEvent, JobId, JobPayload, JobSpec, JobState};
use crate::partition::Partition;
use hpcci_cluster::NodeId;
use hpcci_obs::Obs;
use hpcci_sim::{Advance, EventQueue, FaultInjector, SimTime, Sym};
use std::collections::{BTreeMap, VecDeque};

/// Queueing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Strict arrival order; head-of-line blocking.
    Fifo,
    /// FIFO for the head plus conservative EASY backfill behind it.
    EasyBackfill,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    pub policy: SchedulingPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: SchedulingPolicy::EasyBackfill,
        }
    }
}

#[derive(Debug, Clone)]
struct JobRecord {
    spec: JobSpec,
    state: JobState,
}

#[derive(Debug, Clone)]
struct RunningAlloc {
    nodes: Vec<NodeId>,
    cores_per_node: u32,
    /// When the allocation will end if nothing intervenes.
    end_at: SimTime,
    /// Whether hitting `end_at` means success (Fixed) or timeout (walltime).
    ends_as_timeout: bool,
    fixed_success: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineEvent {
    JobEnd(JobId),
}

/// A SLURM-like batch scheduler over one site's compute partition(s).
pub struct BatchScheduler {
    config: SchedulerConfig,
    partitions: BTreeMap<String, Partition>,
    /// Free cores per node.
    free: BTreeMap<NodeId, u32>,
    /// Total cores per node (for invariant checks).
    capacity: BTreeMap<NodeId, u32>,
    queue: VecDeque<JobId>,
    jobs: BTreeMap<JobId, JobRecord>,
    running: BTreeMap<JobId, RunningAlloc>,
    events: EventQueue<EngineEvent>,
    outbox: Vec<JobEvent>,
    accounting: AccountingLog,
    now: SimTime,
    next_id: u64,
    /// Fault injector plus the scheduler's label in fault plans (site name).
    injector: Option<(FaultInjector, String)>,
    obs: Obs,
    /// Pre-interned per-site queue-wait series (`sched.{site}.queue_wait_us`)
    /// so `start_job` never allocates a metric name.
    obs_site_queue_wait: Sym,
}

impl BatchScheduler {
    pub fn new(config: SchedulerConfig) -> Self {
        BatchScheduler {
            config,
            partitions: BTreeMap::new(),
            free: BTreeMap::new(),
            capacity: BTreeMap::new(),
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            running: BTreeMap::new(),
            events: EventQueue::new(),
            outbox: Vec::new(),
            accounting: AccountingLog::new(),
            now: SimTime::ZERO,
            next_id: 1,
            injector: None,
            obs: Obs::disabled(),
            obs_site_queue_wait: Sym::Static(""),
        }
    }

    /// Attach a fault injector; `label` is how drain faults name this
    /// scheduler (the site name at the federation layer).
    pub fn set_fault_injector(&mut self, injector: FaultInjector, label: &str) {
        self.injector = Some((injector, label.to_string()));
    }

    /// Attach an observability handle; `label` names this scheduler's
    /// per-site metric series (the site name at the federation layer).
    pub fn set_obs(&mut self, obs: Obs, label: &str) {
        self.obs_site_queue_wait = obs.intern(&format!("sched.{label}.queue_wait_us"));
        self.obs = obs;
    }

    /// Register a partition; its nodes become schedulable.
    pub fn add_partition(&mut self, partition: Partition) {
        for &n in &partition.nodes {
            self.free.insert(n, partition.cores_per_node);
            self.capacity.insert(n, partition.cores_per_node);
        }
        self.partitions.insert(partition.name.clone(), partition);
    }

    /// Convenience: one `"compute"` partition covering `node_ids`.
    pub fn with_compute_partition(node_ids: Vec<NodeId>, cores_per_node: u32) -> Self {
        let mut s = BatchScheduler::new(SchedulerConfig::default());
        s.add_partition(Partition::new("compute", node_ids, cores_per_node));
        s
    }

    /// Submit a job at `now`. Validates admissibility, enqueues, and runs a
    /// scheduling pass (so an idle machine starts the job immediately).
    pub fn submit(&mut self, spec: JobSpec, now: SimTime) -> Result<JobId, SchedulerError> {
        self.catch_up(now);
        let partition = self
            .partitions
            .get(&spec.partition)
            .ok_or_else(|| SchedulerError::UnknownPartition(spec.partition.clone()))?;
        if spec.walltime > partition.max_walltime {
            return Err(SchedulerError::WalltimeExceedsLimit);
        }
        if !partition.admits(spec.nodes, spec.cores_per_node, spec.walltime) {
            return Err(SchedulerError::Unsatisfiable {
                requested_nodes: spec.nodes,
                requested_cores: spec.cores_per_node,
            });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobRecord {
                spec,
                state: JobState::Pending { submitted: now },
            },
        );
        self.queue.push_back(id);
        self.obs.gauge_set("sched.queue_depth", self.queue.len() as u64);
        self.schedule_pass();
        Ok(id)
    }

    /// Cancel a pending or running job (`scancel`).
    pub fn cancel(&mut self, id: JobId, now: SimTime) -> Result<(), SchedulerError> {
        self.catch_up(now);
        let record = self.jobs.get(&id).ok_or(SchedulerError::UnknownJob(id))?;
        match record.state {
            JobState::Pending { submitted } => {
                self.queue.retain(|q| *q != id);
                self.finish(id, JobState::Cancelled { submitted, ended: now });
                Ok(())
            }
            JobState::Running { submitted, .. } => {
                self.release(id);
                self.finish(id, JobState::Cancelled { submitted, ended: now });
                self.schedule_pass();
                Ok(())
            }
            _ => Err(SchedulerError::InvalidState(id)),
        }
    }

    /// Gracefully end a running pilot (`Completed{success}` rather than
    /// `Cancelled`) — the FaaS layer calls this when draining an endpoint.
    pub fn shutdown_pilot(&mut self, id: JobId, success: bool, now: SimTime) -> Result<(), SchedulerError> {
        self.catch_up(now);
        let record = self.jobs.get(&id).ok_or(SchedulerError::UnknownJob(id))?;
        if record.spec.payload != JobPayload::Pilot {
            return Err(SchedulerError::InvalidState(id));
        }
        match record.state {
            JobState::Running { submitted, started } => {
                self.release(id);
                self.finish(
                    id,
                    JobState::Completed { submitted, started, ended: now, success },
                );
                self.schedule_pass();
                Ok(())
            }
            _ => Err(SchedulerError::InvalidState(id)),
        }
    }

    /// Current state of a job (`squeue`/`sacct`).
    pub fn state(&self, id: JobId) -> Result<JobState, SchedulerError> {
        Ok(self.jobs.get(&id).ok_or(SchedulerError::UnknownJob(id))?.state)
    }

    /// Drain lifecycle events for upper layers.
    pub fn take_events(&mut self) -> Vec<JobEvent> {
        std::mem::take(&mut self.outbox)
    }

    pub fn accounting(&self) -> &AccountingLog {
        &self.accounting
    }

    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Cores currently free across all partitions.
    pub fn free_cores(&self) -> u64 {
        self.free.values().map(|&c| c as u64).sum()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn catch_up(&mut self, now: SimTime) {
        if now > self.now {
            self.advance_to(now);
        }
    }

    /// Find `nodes` distinct nodes in `partition` with at least
    /// `cores_per_node` free, against an arbitrary free map (used both for
    /// real allocation and shadow-time projection). Deterministic: partition
    /// node order.
    fn find_nodes(
        partition: &Partition,
        free: &BTreeMap<NodeId, u32>,
        nodes: u32,
        cores_per_node: u32,
    ) -> Option<Vec<NodeId>> {
        let mut chosen = Vec::with_capacity(nodes as usize);
        for &n in &partition.nodes {
            if free.get(&n).copied().unwrap_or(0) >= cores_per_node {
                chosen.push(n);
                if chosen.len() == nodes as usize {
                    return Some(chosen);
                }
            }
        }
        None
    }

    fn start_job(&mut self, id: JobId, nodes: Vec<NodeId>, backfill: bool) {
        let record = self.jobs.get_mut(&id).expect("queued job exists");
        let JobState::Pending { submitted } = record.state else {
            panic!("starting a non-pending job");
        };
        let started = self.now;
        record.state = JobState::Running { submitted, started };
        if self.obs.is_enabled() {
            let wait = started.since(submitted);
            self.obs.observe_duration("sched.queue_wait_us", wait);
            self.obs.observe_duration(&self.obs_site_queue_wait, wait);
            if backfill {
                self.obs.observe_duration("sched.backfill_wait_us", wait);
            }
        }
        let spec = &record.spec;
        let (end_at, ends_as_timeout, fixed_success) = match spec.payload {
            JobPayload::Fixed { duration, success } => {
                if duration > spec.walltime {
                    (started + spec.walltime, true, success)
                } else {
                    (started + duration, false, success)
                }
            }
            JobPayload::Pilot => (started + spec.walltime, true, true),
        };
        let cores = spec.cores_per_node;
        for &n in &nodes {
            let f = self.free.get_mut(&n).expect("allocated node tracked");
            debug_assert!(*f >= cores, "over-allocation on {n}");
            *f -= cores;
        }
        self.running.insert(
            id,
            RunningAlloc {
                nodes: nodes.clone(),
                cores_per_node: cores,
                end_at,
                ends_as_timeout,
                fixed_success,
            },
        );
        self.events.push(end_at, EngineEvent::JobEnd(id));
        self.outbox.push(JobEvent::Started { job: id, at: started, nodes });
    }

    fn release(&mut self, id: JobId) {
        if let Some(alloc) = self.running.remove(&id) {
            for n in alloc.nodes {
                let f = self.free.get_mut(&n).expect("released node tracked");
                *f += alloc.cores_per_node;
                debug_assert!(*f <= self.capacity[&n], "core count overflow on {n}");
            }
        }
    }

    fn finish(&mut self, id: JobId, state: JobState) {
        let record = self.jobs.get_mut(&id).expect("finishing known job");
        record.state = state;
        self.outbox.push(JobEvent::Ended { job: id, at: self.now, state });
        let spec = &record.spec;
        self.accounting.append(AccountingRecord {
            job: id,
            name: spec.name.clone(),
            user: spec.user,
            allocation: spec.allocation.clone(),
            partition: spec.partition.clone(),
            nodes: spec.nodes,
            cores_per_node: spec.cores_per_node,
            state,
        });
    }

    /// A node-drain fault: evict every job on one node (the first node of the
    /// lowest-id running job — deterministic). Fixed jobs are requeued as
    /// fresh submissions; pilots end as `Preempted` and their endpoint
    /// re-provisions a new block on demand.
    fn drain_node(&mut self, now: SimTime) {
        let component = self
            .injector
            .as_ref()
            .map(|(_, label)| format!("sched.{label}"))
            .unwrap_or_else(|| "sched".to_string());
        let Some(victim_node) = self.running.values().next().map(|a| a.nodes[0]) else {
            if let Some((inj, _)) = &self.injector {
                inj.record(now, component, "fault.effect", "node drain: machine idle, no-op");
            }
            return;
        };
        let victims: Vec<JobId> = self
            .running
            .iter()
            .filter(|(_, a)| a.nodes.contains(&victim_node))
            .map(|(id, _)| *id)
            .collect();
        let mut requeued = 0usize;
        for id in &victims {
            let record = self.jobs[id].clone();
            let JobState::Running { submitted, started } = record.state else {
                continue;
            };
            self.release(*id);
            self.finish(*id, JobState::Preempted { submitted, started, ended: now });
            if matches!(record.spec.payload, JobPayload::Fixed { .. })
                && self.submit(record.spec, now).is_ok()
            {
                requeued += 1;
            }
        }
        if let Some((inj, _)) = &self.injector {
            inj.record(
                now,
                component.clone(),
                "fault.effect",
                format!(
                    "drained node {victim_node}: preempted {} job(s)",
                    victims.len()
                ),
            );
            if requeued > 0 {
                inj.record(
                    now,
                    component,
                    "fault.recover",
                    format!("{requeued} preempted fixed job(s) requeued"),
                );
            }
        }
        self.schedule_pass();
    }

    /// Projected earliest start for the queue head, given current running
    /// jobs ending at their `end_at` (EASY shadow time).
    fn shadow_time(&self, head: &JobSpec, partition: &Partition) -> SimTime {
        let mut free = self.free.clone();
        // Running allocations sorted by end time.
        let mut ends: Vec<(&SimTime, &RunningAlloc)> = self
            .running
            .values()
            .map(|a| (&a.end_at, a))
            .collect();
        ends.sort_by_key(|(t, _)| **t);
        for (t, alloc) in ends {
            for &n in &alloc.nodes {
                *free.get_mut(&n).expect("node tracked") += alloc.cores_per_node;
            }
            if Self::find_nodes(partition, &free, head.nodes, head.cores_per_node).is_some() {
                return *t;
            }
        }
        // Admission guarantees the request fits an empty machine, so the last
        // release always suffices; an empty running set means it fits now.
        self.now
    }

    /// One scheduling pass at `self.now`. Specs and partitions are read in
    /// place — the only allocation a pass makes is the candidate id list
    /// (the queue is mutated while backfilling) and the node sets of jobs
    /// that actually start.
    fn schedule_pass(&mut self) {
        // Start queue-head jobs while resources allow.
        while let Some(&head) = self.queue.front() {
            let spec = &self.jobs[&head].spec;
            let partition = &self.partitions[&spec.partition];
            match Self::find_nodes(partition, &self.free, spec.nodes, spec.cores_per_node) {
                Some(nodes) => {
                    self.queue.pop_front();
                    self.start_job(head, nodes, false);
                }
                None => break,
            }
        }
        if self.config.policy == SchedulingPolicy::Fifo || self.queue.len() < 2 {
            return;
        }
        // EASY backfill: the head is blocked; compute its shadow time and let
        // later jobs run iff they are guaranteed to finish before it.
        let head_id = *self.queue.front().expect("non-empty checked");
        let head_spec = &self.jobs[&head_id].spec;
        let head_partition = &self.partitions[&head_spec.partition];
        let shadow = self.shadow_time(head_spec, head_partition);
        let candidates: Vec<JobId> = self.queue.iter().skip(1).copied().collect();
        for id in candidates {
            let spec = &self.jobs[&id].spec;
            if self.now + spec.walltime > shadow {
                continue;
            }
            let partition = &self.partitions[&spec.partition];
            if let Some(nodes) =
                Self::find_nodes(partition, &self.free, spec.nodes, spec.cores_per_node)
            {
                self.queue.retain(|q| *q != id);
                self.start_job(id, nodes, true);
            }
        }
    }
}

impl Advance for BatchScheduler {
    fn next_event(&self) -> Option<SimTime> {
        self.events.next_time()
    }

    fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "scheduler time went backwards");
        while let Some((at, EngineEvent::JobEnd(id))) = self.events.pop_due(t) {
            self.now = at;
            // The end event may be stale (job already cancelled/shut down).
            let Some(alloc) = self.running.get(&id) else {
                continue;
            };
            if alloc.end_at != at {
                continue; // superseded
            }
            let (ends_as_timeout, fixed_success) = (alloc.ends_as_timeout, alloc.fixed_success);
            let record = &self.jobs[&id];
            let JobState::Running { submitted, started } = record.state else {
                continue;
            };
            self.release(id);
            let state = if ends_as_timeout {
                JobState::TimedOut { submitted, started, ended: at }
            } else {
                JobState::Completed { submitted, started, ended: at, success: fixed_success }
            };
            self.finish(id, state);
            self.schedule_pass();
        }
        self.now = t;
        let drain_due = self
            .injector
            .as_ref()
            .is_some_and(|(inj, label)| inj.drain_due(label, t));
        if drain_due {
            self.drain_node(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::Uid;
    use hpcci_sim::SimDuration;

    fn fixed(name: &str, nodes: u32, cores: u32, secs: u64, wall_mins: u64) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            user: Uid(1001),
            allocation: "alloc".to_string(),
            partition: "compute".to_string(),
            nodes,
            cores_per_node: cores,
            walltime: SimDuration::from_mins(wall_mins),
            payload: JobPayload::Fixed {
                duration: SimDuration::from_secs(secs),
                success: true,
            },
        }
    }

    fn scheduler(nodes: u32, cores: u32) -> BatchScheduler {
        BatchScheduler::with_compute_partition((0..nodes).map(NodeId).collect(), cores)
    }

    #[test]
    fn idle_machine_starts_job_immediately() {
        let mut s = scheduler(2, 8);
        let id = s.submit(fixed("a", 1, 8, 60, 10), SimTime::ZERO).unwrap();
        assert!(s.state(id).unwrap().is_running());
        s.advance_to(SimTime::from_secs(60));
        let st = s.state(id).unwrap();
        assert!(matches!(st, JobState::Completed { success: true, .. }));
        assert_eq!(st.runtime(), Some(SimDuration::from_secs(60)));
        assert_eq!(s.free_cores(), 16);
    }

    #[test]
    fn fifo_queues_when_full() {
        let mut s = scheduler(1, 8);
        let a = s.submit(fixed("a", 1, 8, 100, 10), SimTime::ZERO).unwrap();
        let b = s.submit(fixed("b", 1, 8, 50, 10), SimTime::ZERO).unwrap();
        assert!(s.state(a).unwrap().is_running());
        assert!(s.state(b).unwrap().is_pending());
        s.advance_to(SimTime::from_secs(100));
        assert!(s.state(b).unwrap().is_running());
        s.advance_to(SimTime::from_secs(150));
        assert!(s.state(b).unwrap().is_terminal());
        assert_eq!(s.state(b).unwrap().queue_wait(), Some(SimDuration::from_secs(100)));
    }

    #[test]
    fn easy_backfill_lets_short_job_jump_but_not_delay_head() {
        // 2 nodes. A holds node0 for 100s. B (head) needs both nodes, so it
        // blocks until A ends at t=100 (shadow time). C, short enough to
        // finish before the shadow time, may backfill onto node1; D, whose
        // walltime crosses the shadow time, must not.
        let mut s = scheduler(2, 8);
        let _a = s.submit(fixed("a", 1, 8, 100, 10), SimTime::ZERO).unwrap(); // node0, 100s
        let b = s.submit(fixed("b", 2, 8, 10, 10), SimTime::ZERO).unwrap(); // blocked: needs 2 nodes
        let d = s.submit(fixed("d", 1, 8, 200, 10), SimTime::ZERO).unwrap(); // too long to backfill
        let c = s.submit(fixed("c", 1, 8, 20, 1), SimTime::ZERO).unwrap(); // short: backfills
        assert!(s.state(b).unwrap().is_pending(), "head blocked");
        assert!(s.state(d).unwrap().is_pending(), "long job must not backfill");
        assert!(s.state(c).unwrap().is_running(), "short job backfills");
        // When A ends at 100, B starts (c finished at 20).
        s.advance_to(SimTime::from_secs(100));
        assert!(s.state(b).unwrap().is_running());
        assert_eq!(
            s.state(b).unwrap().queue_wait(),
            Some(SimDuration::from_secs(100))
        );
        let _ = d;
    }

    #[test]
    fn fifo_policy_never_backfills() {
        let mut s = BatchScheduler::new(SchedulerConfig {
            policy: SchedulingPolicy::Fifo,
        });
        s.add_partition(Partition::new("compute", (0..2).map(NodeId).collect(), 8));
        let _a = s.submit(fixed("a", 1, 8, 100, 10), SimTime::ZERO).unwrap();
        let b = s.submit(fixed("b", 2, 8, 10, 10), SimTime::ZERO).unwrap();
        let c = s.submit(fixed("c", 1, 8, 20, 1), SimTime::ZERO).unwrap();
        assert!(s.state(b).unwrap().is_pending());
        assert!(s.state(c).unwrap().is_pending(), "FIFO: no backfill");
    }

    #[test]
    fn walltime_timeout() {
        let mut s = scheduler(1, 8);
        // 600s of work, 1-minute walltime -> killed at 60s.
        let id = s.submit(fixed("long", 1, 8, 600, 1), SimTime::ZERO).unwrap();
        s.advance_to(SimTime::from_secs(61));
        assert!(matches!(s.state(id).unwrap(), JobState::TimedOut { .. }));
        assert_eq!(
            s.state(id).unwrap().runtime(),
            Some(SimDuration::from_secs(60))
        );
    }

    #[test]
    fn pilot_runs_until_shutdown() {
        let mut s = scheduler(1, 8);
        let spec = JobSpec::single_node("pilot", Uid(1001), "alloc", 8, SimDuration::from_mins(30));
        let id = s.submit(spec, SimTime::ZERO).unwrap();
        s.advance_to(SimTime::from_secs(300));
        assert!(s.state(id).unwrap().is_running(), "pilot persists");
        s.shutdown_pilot(id, true, SimTime::from_secs(400)).unwrap();
        assert!(matches!(
            s.state(id).unwrap(),
            JobState::Completed { success: true, .. }
        ));
        assert_eq!(s.free_cores(), 8);
    }

    #[test]
    fn pilot_times_out_at_walltime() {
        let mut s = scheduler(1, 8);
        let spec = JobSpec::single_node("pilot", Uid(1001), "alloc", 8, SimDuration::from_mins(1));
        let id = s.submit(spec, SimTime::ZERO).unwrap();
        s.advance_to(SimTime::from_secs(120));
        assert!(matches!(s.state(id).unwrap(), JobState::TimedOut { .. }));
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut s = scheduler(1, 8);
        let a = s.submit(fixed("a", 1, 8, 100, 10), SimTime::ZERO).unwrap();
        let b = s.submit(fixed("b", 1, 8, 100, 10), SimTime::ZERO).unwrap();
        s.cancel(b, SimTime::from_secs(10)).unwrap();
        assert!(matches!(s.state(b).unwrap(), JobState::Cancelled { .. }));
        s.cancel(a, SimTime::from_secs(20)).unwrap();
        assert!(matches!(s.state(a).unwrap(), JobState::Cancelled { .. }));
        assert_eq!(s.free_cores(), 8);
        // double cancel is invalid
        assert!(matches!(
            s.cancel(a, SimTime::from_secs(30)),
            Err(SchedulerError::InvalidState(_))
        ));
    }

    #[test]
    fn submission_validation() {
        let mut s = scheduler(2, 8);
        assert!(matches!(
            s.submit(fixed("wide", 3, 8, 10, 10), SimTime::ZERO),
            Err(SchedulerError::Unsatisfiable { .. })
        ));
        assert!(matches!(
            s.submit(fixed("deep", 1, 9, 10, 10), SimTime::ZERO),
            Err(SchedulerError::Unsatisfiable { .. })
        ));
        let mut too_long = fixed("long", 1, 8, 10, 10);
        too_long.walltime = SimDuration::from_hours(100);
        assert!(matches!(
            s.submit(too_long, SimTime::ZERO),
            Err(SchedulerError::WalltimeExceedsLimit)
        ));
        let mut bad_part = fixed("p", 1, 8, 10, 10);
        bad_part.partition = "gpu".to_string();
        assert!(matches!(
            s.submit(bad_part, SimTime::ZERO),
            Err(SchedulerError::UnknownPartition(_))
        ));
    }

    #[test]
    fn events_are_emitted_in_order() {
        let mut s = scheduler(1, 8);
        let a = s.submit(fixed("a", 1, 8, 30, 10), SimTime::ZERO).unwrap();
        let b = s.submit(fixed("b", 1, 8, 30, 10), SimTime::ZERO).unwrap();
        s.advance_to(SimTime::from_secs(120));
        let events = s.take_events();
        let kinds: Vec<String> = events
            .iter()
            .map(|e| match e {
                JobEvent::Started { job, .. } => format!("start:{job}"),
                JobEvent::Ended { job, .. } => format!("end:{job}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                format!("start:{a}"),
                format!("end:{a}"),
                format!("start:{b}"),
                format!("end:{b}")
            ]
        );
        assert!(s.take_events().is_empty(), "outbox drained");
    }

    #[test]
    fn accounting_records_terminal_jobs() {
        let mut s = scheduler(2, 8);
        let _a = s.submit(fixed("a", 1, 4, 50, 10), SimTime::ZERO).unwrap();
        let b = s.submit(fixed("b", 1, 4, 50, 10), SimTime::ZERO).unwrap();
        s.cancel(b, SimTime::from_secs(5)).unwrap();
        s.advance_to(SimTime::from_secs(60));
        assert_eq!(s.accounting().len(), 2);
        assert_eq!(s.accounting().usage("alloc"), 4.0 * 50.0);
    }

    #[test]
    fn obs_records_queue_wait_depth_and_backfill() {
        let mut s = scheduler(2, 8);
        let obs = Obs::enabled();
        s.set_obs(obs.clone(), "anvil");
        // a starts immediately; b (needs both nodes) waits for a; c backfills.
        let _a = s.submit(fixed("a", 1, 8, 100, 10), SimTime::ZERO).unwrap();
        let b = s.submit(fixed("b", 2, 8, 10, 10), SimTime::ZERO).unwrap();
        let _c = s.submit(fixed("c", 1, 8, 20, 1), SimTime::ZERO).unwrap();
        s.advance_to(SimTime::from_secs(100));
        assert!(s.state(b).unwrap().is_running());
        let snap = obs.snapshot();
        let wait = snap.histogram("sched.queue_wait_us").expect("global series");
        assert_eq!(wait.count, 3, "a, b, and c each started once");
        assert_eq!(wait.max, 100_000_000, "b waited 100s");
        let site = snap
            .histogram("sched.anvil.queue_wait_us")
            .expect("per-site series");
        assert_eq!(site.count, 3);
        let backfill = snap.histogram("sched.backfill_wait_us").expect("backfill series");
        assert_eq!(backfill.count, 1, "only c backfilled");
        let depth = snap.gauge("sched.queue_depth").expect("queue depth gauge");
        assert_eq!(depth.max, 2, "b and c were queued together");
    }

    #[test]
    fn node_sharing_between_small_jobs() {
        let mut s = scheduler(1, 8);
        let a = s.submit(fixed("a", 1, 4, 100, 10), SimTime::ZERO).unwrap();
        let b = s.submit(fixed("b", 1, 4, 100, 10), SimTime::ZERO).unwrap();
        assert!(s.state(a).unwrap().is_running());
        assert!(s.state(b).unwrap().is_running(), "two 4-core jobs share 8 cores");
        assert_eq!(s.free_cores(), 0);
    }
}
