//! Scheduler error types.

use crate::job::JobId;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// The request can never be satisfied by this partition (too many nodes
    /// or cores per node).
    Unsatisfiable { requested_nodes: u32, requested_cores: u32 },
    /// Requested walltime exceeds the partition limit.
    WalltimeExceedsLimit,
    /// No such job.
    UnknownJob(JobId),
    /// No such partition.
    UnknownPartition(String),
    /// Operation invalid in the job's current state (e.g. cancel a finished
    /// job).
    InvalidState(JobId),
    /// No such block (provider-level).
    UnknownBlock(u64),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::Unsatisfiable {
                requested_nodes,
                requested_cores,
            } => write!(
                f,
                "request for {requested_nodes} node(s) x {requested_cores} core(s) can never be satisfied"
            ),
            SchedulerError::WalltimeExceedsLimit => write!(f, "walltime exceeds partition limit"),
            SchedulerError::UnknownJob(id) => write!(f, "unknown job {id}"),
            SchedulerError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            SchedulerError::InvalidState(id) => write!(f, "invalid state transition for job {id}"),
            SchedulerError::UnknownBlock(b) => write!(f, "unknown block {b}"),
        }
    }
}

impl std::error::Error for SchedulerError {}
