//! Registered functions.

use hpcci_auth::IdentityId;
use std::fmt;

/// Function identifier ("function UUID" in the paper's action inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub u64);

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn-{:08x}", self.0)
    }
}

/// What a function does when executed at a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionBody {
    /// A shell command interpreted by the site's command registry. `{args}`
    /// in the template is replaced by the task's args string.
    Shell { command: String },
    /// A named native handler resolved in the site's command registry — the
    /// analogue of a registered (serialized) Python function.
    Native { handler: String },
}

/// A function registered with the cloud service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    pub id: FunctionId,
    pub name: String,
    pub owner: IdentityId,
    pub body: FunctionBody,
}

impl Function {
    /// Resolve the effective command line for execution given task args.
    pub fn command_line(&self, args: &str) -> String {
        match &self.body {
            FunctionBody::Shell { command } => {
                if command.contains("{args}") {
                    command.replace("{args}", args)
                } else if args.is_empty() {
                    command.clone()
                } else {
                    format!("{command} {args}")
                }
            }
            FunctionBody::Native { handler } => {
                if args.is_empty() {
                    handler.clone()
                } else {
                    format!("{handler} {args}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn function(body: FunctionBody) -> Function {
        Function {
            id: FunctionId(1),
            name: "f".into(),
            owner: IdentityId(1),
            body,
        }
    }

    #[test]
    fn shell_args_substitution() {
        let f = function(FunctionBody::Shell {
            command: "pytest {args} tests/".into(),
        });
        assert_eq!(f.command_line("-v"), "pytest -v tests/");
    }

    #[test]
    fn shell_args_appended_when_no_placeholder() {
        let f = function(FunctionBody::Shell { command: "tox".into() });
        assert_eq!(f.command_line(""), "tox");
        assert_eq!(f.command_line("-e py312"), "tox -e py312");
    }

    #[test]
    fn native_command_line() {
        let f = function(FunctionBody::Native {
            handler: "parsldock.dock_single".into(),
        });
        assert_eq!(f.command_line("ligand=aspirin"), "parsldock.dock_single ligand=aspirin");
    }
}
