//! Conservative parallel advancement of one federation.
//!
//! The cloud's serial event loop interleaves three phases at every step
//! instant: advance due endpoints (endpoint-name order), collect finished
//! outputs onto the return wire, and handle due wire events (FIFO within a
//! timestamp). This module splits the *endpoint advancement* across worker
//! threads — one [`hpcci_sim::DomainPlan`] lookahead domain per thread —
//! and then replays a deterministic merge of the domains' logs so the
//! committed trace is **byte-identical** to what the serial loop writes.
//!
//! Why a whole window is one safe horizon (see [`hpcci_sim::horizon`]):
//! within one `advance_to(t)` window no new task submissions happen (they
//! occur between drives), so every cloud→endpoint `Deliver` that can land
//! in the window is already committed to the wire when the window opens.
//! The reverse direction — endpoint→cloud `Return`s — only mutates
//! coordinator state (task records, the trace, the wire), never another
//! domain. With every cross-domain interaction pre-committed or one-way,
//! each domain can advance straight to `t` without hearing from the others:
//! the window needs exactly one barrier, at its end.
//!
//! The merge reproduces the serial schedule from the domain logs:
//!
//! 1. Workers record, per instant, which endpoints they advanced and the
//!    outputs each advancement surfaced (an [`StepKind::Advanced`] entry is
//!    logged even when no outputs appeared — the *instant* matters, because
//!    the serial loop collects previously-delivered endpoints' outputs at
//!    the next global step whatever its cause). Outputs that appear
//!    synchronously while applying a delivery ([`StepKind::DeliverInduced`])
//!    are deferred to the next committed instant, exactly as the serial
//!    loop's touched-list collection would observe them.
//! 2. The coordinator walks the committed instants — the union of wire
//!    event times and every domain's step instants — and at each instant
//!    re-emits `task.returning` records in endpoint-name order (domain id
//!    never breaks a tie; slot rank does, which is the serial order), then
//!    handles wire events in structural FIFO order, consuming each domain's
//!    enqueue results in the order the worker produced them.
//!
//! Anything the replay cannot reproduce exactly falls back to serial before
//! the window starts: fault injectors (consult boundaries move under
//! partitioning) and shared batch schedulers (zero lookahead: a scheduler
//! job-end re-times its tenants at the very instant it happens, and the
//! scheduler's queue-depth gauge is write-order-sensitive).

use super::*;
use hpcci_sim::{DomainPlan, SimDuration};

/// One cloud→endpoint delivery routed to the owning domain for the window.
pub(super) struct WindowDeliver {
    pub at: SimTime,
    pub slot: usize,
    pub task: TaskId,
    pub identity: Arc<Identity>,
    pub command: Sym,
}

/// The deliveries one domain must apply during the window, in wire order.
#[derive(Default)]
pub(super) struct DomainBatch {
    pub delivers: Vec<WindowDeliver>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum StepKind {
    /// The endpoint had a due internal event and was advanced; its finished
    /// outputs (possibly none) are collected at this very instant.
    Advanced,
    /// Outputs that appeared synchronously while applying a delivery. The
    /// serial loop only sees these at the *next* step instant (the deliver
    /// phase runs after collection), so the merge defers them one instant.
    DeliverInduced,
}

/// One instant of one endpoint's life inside a domain, plus the range of
/// `DomainLog::outputs` it surfaced.
pub(super) struct StepEntry {
    pub at: SimTime,
    pub slot: usize,
    pub kind: StepKind,
    pub out_start: usize,
    pub out_len: usize,
}

/// Everything a domain worker did during the window, in causal order.
#[derive(Default)]
pub(super) struct DomainLog {
    pub steps: Vec<StepEntry>,
    /// Flattened outputs referenced by `StepEntry` ranges; `Option` so the
    /// merge can move each one out exactly once.
    pub outputs: Vec<Option<(TaskId, TaskOutput)>>,
    /// Enqueue results in delivery order — the merge consumes these FIFO
    /// while replaying the domain's `Deliver` wire events.
    pub deliver_results: Vec<Result<(), FaasError>>,
    /// Due-endpoint advancements performed (the serial loop's
    /// `events_dispatched` contribution from this domain).
    pub advancements: u64,
}

/// Split `endpoints` into per-domain disjoint `&mut` sets per the plan.
fn disjoint_domains<'a>(
    endpoints: &'a mut [EndpointRegistration],
    plan: &DomainPlan,
) -> Vec<Vec<(usize, &'a mut EndpointRegistration)>> {
    let len = endpoints.len();
    let base = endpoints.as_mut_ptr();
    let mut taken = vec![false; len];
    plan.iter()
        .map(|slots| {
            slots
                .iter()
                .map(|&s| {
                    assert!(s < len, "domain plan slot out of range");
                    assert!(!taken[s], "domain plan slots must be disjoint");
                    taken[s] = true;
                    // SAFETY: every index is handed out at most once (checked
                    // just above), so the mutable borrows never alias, and
                    // they all live no longer than the `endpoints` borrow.
                    (s, unsafe { &mut *base.add(s) })
                })
                .collect()
        })
        .collect()
}

/// Run every domain of the plan to `horizon` on its own thread and return
/// the logs in domain order.
pub(super) fn run_domains(
    endpoints: &mut [EndpointRegistration],
    plan: &DomainPlan,
    batches: Vec<DomainBatch>,
    horizon: SimTime,
) -> Vec<DomainLog> {
    debug_assert_eq!(plan.len(), batches.len());
    let mut split = disjoint_domains(endpoints, plan);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = split
            .drain(..)
            .zip(batches)
            .map(|(eps, batch)| scope.spawn(move |_| run_domain(eps, batch, horizon)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("domain worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("domain scope")
}

/// One domain's event loop: advance due endpoints (slot order — which is
/// endpoint-name order, the serial order) and apply the domain's deliveries
/// (wire order), logging each instant for the deterministic merge.
fn run_domain(
    mut endpoints: Vec<(usize, &mut EndpointRegistration)>,
    batch: DomainBatch,
    horizon: SimTime,
) -> DomainLog {
    let mut log = DomainLog::default();
    let mut times: Vec<Option<SimTime>> =
        endpoints.iter().map(|(_, ep)| ep.next_event()).collect();
    let mut scratch: Vec<(TaskId, TaskOutput)> = Vec::new();
    let mut delivers = batch.delivers.into_iter().peekable();
    loop {
        let mut tau: Option<SimTime> = delivers.peek().map(|d| d.at);
        for t in times.iter().flatten() {
            tau = Some(tau.map_or(*t, |x| x.min(*t)));
        }
        let Some(tau) = tau else { break };
        if tau > horizon {
            break;
        }
        // Advance endpoints with a due event, in slot order.
        for (i, (slot, ep)) in endpoints.iter_mut().enumerate() {
            if times[i].is_some_and(|next| next <= tau) {
                ep.advance_to(tau);
                log.advancements += 1;
                scratch.clear();
                ep.drain_finished_into(&mut scratch);
                push_step(&mut log, tau, *slot, StepKind::Advanced, &mut scratch);
                times[i] = ep.next_event();
            }
        }
        // Apply this domain's due deliveries in wire (FIFO) order.
        while delivers.peek().is_some_and(|d| d.at == tau) {
            let d = delivers.next().expect("peeked");
            let i = endpoints
                .iter()
                .position(|(s, _)| *s == d.slot)
                .expect("delivery routed to its owning domain");
            let (slot, ep) = &mut endpoints[i];
            let result = match ep {
                EndpointRegistration::Single(e) => e.enqueue(d.task, &d.command, tau),
                EndpointRegistration::Multi(m) => m.enqueue(d.task, &d.identity, &d.command, tau),
            };
            log.deliver_results.push(result);
            scratch.clear();
            ep.drain_finished_into(&mut scratch);
            if !scratch.is_empty() {
                push_step(&mut log, tau, *slot, StepKind::DeliverInduced, &mut scratch);
            }
            times[i] = ep.next_event();
        }
    }
    log
}

fn push_step(
    log: &mut DomainLog,
    at: SimTime,
    slot: usize,
    kind: StepKind,
    outputs: &mut Vec<(TaskId, TaskOutput)>,
) {
    let out_start = log.outputs.len();
    log.outputs.extend(outputs.drain(..).map(Some));
    log.steps.push(StepEntry {
        at,
        slot,
        kind,
        out_start,
        out_len: log.outputs.len() - out_start,
    });
}

/// A wire event of the window being replayed at the barrier. `Deliver`
/// payloads travelled to the domains; only the stub (task + slot) stays
/// behind so the coordinator can re-emit the record and the transition in
/// structural FIFO order.
enum Replay {
    Deliver { task: TaskId, slot: usize },
    Return { task: TaskId, output: TaskOutput },
}

/// Finished outputs awaiting collection at the next committed instant.
enum Deferred {
    /// Drained from an endpoint's buffer before the window (outputs
    /// stranded by a previous window's final delivery).
    Pre {
        slot: usize,
        items: Vec<(TaskId, TaskOutput)>,
    },
    /// A range of one domain log's outputs.
    Log {
        slot: usize,
        domain: usize,
        start: usize,
        len: usize,
    },
}

impl Deferred {
    fn slot(&self) -> usize {
        match self {
            Deferred::Pre { slot, .. } | Deferred::Log { slot, .. } => *slot,
        }
    }
}

impl CloudService {
    /// Advance the whole federation to `t` using one worker thread per
    /// lookahead domain, then merge the domain logs back into the committed
    /// trace. Returns the last committed instant, or `None` when the window
    /// held no events at all.
    ///
    /// Caller guarantees: no fault injector anywhere, no shared batch
    /// scheduler (see [`CloudService::parallel_static_ok`]), and a plan with
    /// at least two domains.
    pub(super) fn advance_window_parallel(&mut self, t: SimTime) -> Option<SimTime> {
        let plan = self
            .domain_plan
            .clone()
            .expect("domain plan ensured before a parallel window");
        // -- Stranded outputs from before the window: the serial loop would
        //    collect these at its next step instant, whatever causes it.
        let mut deferred: Vec<Deferred> = Vec::new();
        if !self.touched.is_empty() {
            {
                let rank = &self.slot_rank;
                self.touched.sort_unstable_by_key(|&s| rank[s]);
            }
            self.touched.dedup();
            for i in 0..self.touched.len() {
                let slot = self.touched[i];
                let mut items = Vec::new();
                self.endpoints[slot].drain_finished_into(&mut items);
                if !items.is_empty() {
                    deferred.push(Deferred::Pre { slot, items });
                }
            }
            self.touched.clear();
        }
        // -- Extract the window's committed wire events: Deliver payloads go
        //    to the owning domain, stubs and Returns into the replay queue
        //    (same structural FIFO order the serial drain would see).
        let mut incoming = std::mem::take(&mut self.wire_scratch);
        incoming.clear();
        self.wire.drain_due_into(t, &mut incoming);
        let mut replay: EventQueue<Replay> = EventQueue::new();
        let mut batches: Vec<DomainBatch> =
            (0..plan.len()).map(|_| DomainBatch::default()).collect();
        for (at, event) in incoming.drain(..) {
            match event {
                InFlight::Submit { .. } => {
                    // `parallel_window_ok` requires `pending_submits == 0`,
                    // so no scheduled submission can be on the wire here.
                    unreachable!("scheduled submissions drain before parallel windows open")
                }
                InFlight::Deliver { task, identity, slot } => {
                    let command = self.tasks[task.0 as usize - 1].command.clone();
                    replay.push(at, Replay::Deliver { task, slot });
                    batches[plan.domain_of(slot)].delivers.push(WindowDeliver {
                        at,
                        slot,
                        task,
                        identity,
                        command,
                    });
                }
                InFlight::Return { task, output } => {
                    replay.push(at, Replay::Return { task, output });
                }
            }
        }
        self.wire_scratch = incoming;
        // Per-slot one-way return latency, probed before workers borrow the
        // endpoints. No injector on this path: the wire is never partitioned.
        let latency: Vec<SimDuration> =
            self.endpoints.iter().map(|ep| ep.wan_latency()).collect();

        // -- Parallel phase: one thread per domain, one barrier at the end.
        let mut logs = run_domains(&mut self.endpoints, &plan, batches, t);

        // -- Deterministic merge: walk the committed instants and re-emit
        //    the serial schedule from the logs.
        let mut cursors = vec![0usize; logs.len()];
        let mut results_cursor = vec![0usize; logs.len()];
        let mut collect_list: Vec<Deferred> = Vec::new();
        let mut out_scratch: Vec<(TaskId, TaskOutput)> = Vec::new();
        let mut last_instant = None;
        loop {
            let mut tau = replay.next_time();
            for (d, log) in logs.iter().enumerate() {
                if let Some(entry) = log.steps.get(cursors[d]) {
                    tau = Some(tau.map_or(entry.at, |x| x.min(entry.at)));
                }
            }
            let Some(tau) = tau else { break };
            last_instant = Some(tau);
            // Collection phase: deferred outputs first (they were already in
            // the endpoints' buffers when this instant's advances appended to
            // them), then this instant's advancement outputs — all ordered by
            // slot rank, i.e. endpoint-name order, exactly the serial
            // `collect_touched_returns` order.
            collect_list.append(&mut deferred);
            for (d, log) in logs.iter().enumerate() {
                while let Some(e) = log.steps.get(cursors[d]) {
                    if e.at != tau || e.kind != StepKind::Advanced {
                        break;
                    }
                    collect_list.push(Deferred::Log {
                        slot: e.slot,
                        domain: d,
                        start: e.out_start,
                        len: e.out_len,
                    });
                    cursors[d] += 1;
                }
            }
            {
                let rank = &self.slot_rank;
                collect_list.sort_by_key(|c| rank[c.slot()]);
            }
            for entry in collect_list.drain(..) {
                let slot = entry.slot();
                out_scratch.clear();
                match entry {
                    Deferred::Pre { items, .. } => out_scratch.extend(items),
                    Deferred::Log {
                        domain, start, len, ..
                    } => {
                        for o in &mut logs[domain].outputs[start..start + len] {
                            out_scratch.push(o.take().expect("each output is consumed once"));
                        }
                    }
                }
                for (task, output) in out_scratch.drain(..) {
                    self.trace.record(tau, "faas.cloud", "task.returning", {
                        let mut d = String::with_capacity(35);
                        task.write_label(&mut d);
                        d.push_str(" from endpoint");
                        d
                    });
                    let ret_at = tau + latency[slot];
                    if ret_at <= t {
                        replay.push(ret_at, Replay::Return { task, output });
                    } else {
                        self.wire.push(ret_at, InFlight::Return { task, output });
                    }
                }
            }
            // Wire phase: structural FIFO within the instant, consuming each
            // domain's enqueue results in the order the worker produced them.
            while let Some((at, event)) = replay.pop_due(tau) {
                self.events_dispatched += 1;
                match event {
                    Replay::Return { task, output } => {
                        self.handle_wire_event(at, InFlight::Return { task, output });
                    }
                    Replay::Deliver { task, slot } => {
                        let domain = plan.domain_of(slot);
                        let component = self.slot_syms[slot].clone();
                        let mut detail = String::with_capacity(21);
                        task.write_label(&mut detail);
                        self.trace
                            .record(at, component.clone(), "task.deliver", detail);
                        let result = std::mem::replace(
                            &mut logs[domain].deliver_results[results_cursor[domain]],
                            Ok(()),
                        );
                        results_cursor[domain] += 1;
                        let record = &mut self.tasks[task.0 as usize - 1];
                        let transition = match result {
                            Ok(()) => record.transition(TaskState::QueuedAtEndpoint { at }),
                            Err(e) => {
                                self.trace
                                    .record(at, component, "task.reject", format!("{task}: {e}"));
                                self.tasks[task.0 as usize - 1].transition(TaskState::Rejected {
                                    at,
                                    reason: e.to_string(),
                                })
                            }
                        };
                        if let Err(e) = transition {
                            self.trace.record(
                                at,
                                "faas.cloud",
                                "task.transition-blocked",
                                e.to_string(),
                            );
                        }
                    }
                }
            }
            // Defer phase: outputs induced by this instant's deliveries are
            // observed by the serial loop at the next step instant.
            for (d, log) in logs.iter().enumerate() {
                while let Some(e) = log.steps.get(cursors[d]) {
                    if e.at != tau {
                        break;
                    }
                    debug_assert_eq!(e.kind, StepKind::DeliverInduced);
                    deferred.push(Deferred::Log {
                        slot: e.slot,
                        domain: d,
                        start: e.out_start,
                        len: e.out_len,
                    });
                    cursors[d] += 1;
                }
            }
        }
        // Outputs induced at the final instant never saw a later instant:
        // the serial loop leaves them in the endpoints' buffers with the
        // slots on the touched list. Restore exactly that state.
        for entry in deferred.drain(..) {
            let slot = entry.slot();
            out_scratch.clear();
            match entry {
                Deferred::Pre { items, .. } => out_scratch.extend(items),
                Deferred::Log {
                    domain, start, len, ..
                } => {
                    for o in &mut logs[domain].outputs[start..start + len] {
                        out_scratch.push(o.take().expect("each output is consumed once"));
                    }
                }
            }
            self.endpoints[slot].restore_finished(&mut out_scratch);
            self.touched.push(slot);
        }
        // Bookkeeping: the serial loop's due-advancement event counts, the
        // per-domain window stats, and a full cache invalidation (workers
        // advanced endpoints behind the cache's back).
        let mut per_domain: Vec<u64> = Vec::with_capacity(logs.len());
        for (d, log) in logs.iter().enumerate() {
            debug_assert_eq!(cursors[d], log.steps.len(), "merge consumed every step");
            debug_assert_eq!(
                results_cursor[d],
                log.deliver_results.len(),
                "merge consumed every enqueue result"
            );
            self.events_dispatched += log.advancements;
            per_domain.push(log.advancements + log.deliver_results.len() as u64);
        }
        self.domain_stats.record_window(&per_domain);
        self.cache.mark_all_dirty();
        last_instant
    }
}
