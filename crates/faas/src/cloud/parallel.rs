//! Conservative parallel advancement of one federation.
//!
//! The cloud's serial event loop interleaves three phases at every step
//! instant: advance due endpoints (endpoint-name order), collect finished
//! outputs onto the return wire, and handle due wire events (FIFO within a
//! timestamp). This module splits the *endpoint advancement* across worker
//! threads — one [`hpcci_sim::DomainPlan`] lookahead domain per thread —
//! and then replays a deterministic merge of the domains' logs so the
//! committed trace is **byte-identical** to what the serial loop writes.
//!
//! Why a whole window is one safe horizon (see [`hpcci_sim::horizon`]):
//! every cloud→endpoint `Deliver` that can land in an `advance_to(t)`
//! window is either already committed to the wire when the window opens,
//! or is induced by a scheduled [`InFlight::Submit`] that is itself on the
//! wire — and with positive lookahead its delivery leg lands *strictly
//! after* the submit instant, so the coordinator can pre-route it at
//! extraction time (acceptance stays on the coordinator, ids dense in
//! arrival order). The reverse direction — endpoint→cloud `Return`s — only
//! mutates coordinator state (task records, the trace, the wire), never
//! another domain. With every cross-domain interaction pre-committed or
//! one-way, each domain can advance straight to `t` without hearing from
//! the others: the window needs exactly one barrier, at its end.
//!
//! The merge reproduces the serial schedule from the domain logs in two
//! passes:
//!
//! 1. **State commit** (coordinator, before the next window opens): walk
//!    the committed instants — the union of wire event times and every
//!    domain's step instants — and at each instant re-emit `task.returning`
//!    collections in endpoint-name order (domain id never breaks a tie;
//!    slot rank does, which is the serial order), then handle wire events
//!    in structural FIFO order, consuming each domain's enqueue results in
//!    the order the worker produced them. Task records, the wire, counters
//!    and the latency reservoir all mutate here; trace records are only
//!    *described*, appended to a [`TraceOps`] batch.
//! 2. **Trace replay** (merge worker, overlapping the next window's domain
//!    execution): apply the `TraceOps` batch to the real [`Trace`] in
//!    order. The batch carries pre-formatted detail bytes and static kind
//!    names, so the applied records are byte-for-byte what the serial loop
//!    would have written — the pass is pure formatting, which is why it
//!    can be deferred off the critical path.
//!
//! [`CloudService::drain_pooled`] keeps one persistent pool per drain —
//! `plan.len()` domain workers plus one merge worker, spawned at the first
//! eligible window — and feeds it per-window [`DomainBatch`]es over
//! channels with full scratch reuse, so a steady-state window allocates
//! almost nothing and spawns no threads.
//!
//! Anything the replay cannot reproduce exactly falls back to serial before
//! the window starts: fault injectors (consult boundaries move under
//! partitioning), shared batch schedulers (zero lookahead: a scheduler
//! job-end re-times its tenants at the very instant it happens), and
//! pending submits under zero lookahead (the induced delivery could land at
//! the submit's own instant, which the one-generation instant walk cannot
//! order).

use super::*;
use crossbeam::channel::{Receiver, Sender};
use hpcci_sim::{DomainPlan, SimDuration};
use std::fmt::Write as _;
use std::time::Instant;

/// Target committed events per pooled window. The drain adapts its window
/// span toward this batch size: large enough to amortize the channel
/// round-trip, small enough that the merge worker's trace replay overlaps
/// the next window's domain execution instead of serializing behind it.
const TARGET_WINDOW_EVENTS: u64 = 4096;

/// Initial pooled window span (virtual µs); adapted per window.
pub(super) const WINDOW_SPAN_INIT_US: u64 = 1_000_000;

/// Window-span adaptation bounds (virtual µs): 1 ms to 1 hour.
const WINDOW_SPAN_MIN_US: u64 = 1_000;
const WINDOW_SPAN_MAX_US: u64 = 3_600_000_000;

/// Calibrated serial cost of one dispatched event, used to re-derive the
/// break-even window size from the measured per-window overhead. The
/// BENCH_federation.json trajectory has held ~2.3–2.6M events/s no-obs
/// since PR 5, i.e. ~400 ns/event on the reference host.
const SERIAL_NS_PER_EVENT: u64 = 400;

/// Adaptive `min_wire` clamp. The floor keeps degenerate windows serial
/// even when the measured overhead rounds to zero; the ceiling keeps a
/// slow host from locking the drain out of parallelism entirely.
const PARALLEL_WIRE_FLOOR: usize = 8;
const PARALLEL_WIRE_CEIL: usize = 256;

/// One cloud→endpoint delivery routed to the owning domain for the window.
pub(super) struct WindowDeliver {
    pub at: SimTime,
    pub slot: usize,
    pub task: TaskId,
    pub identity: Arc<Identity>,
    pub command: Sym,
}

/// The deliveries one domain must apply during the window, in wire order.
#[derive(Default)]
pub(super) struct DomainBatch {
    pub delivers: Vec<WindowDeliver>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum StepKind {
    /// The endpoint had a due internal event and was advanced; its finished
    /// outputs (possibly none) are collected at this very instant.
    Advanced,
    /// Outputs that appeared synchronously while applying a delivery. The
    /// serial loop only sees these at the *next* step instant (the deliver
    /// phase runs after collection), so the merge defers them one instant.
    DeliverInduced,
}

/// One instant of one endpoint's life inside a domain, plus the range of
/// `DomainLog::outputs` it surfaced.
pub(super) struct StepEntry {
    pub at: SimTime,
    pub slot: usize,
    pub kind: StepKind,
    pub out_start: usize,
    pub out_len: usize,
}

/// Everything a domain worker did during the window, in causal order.
#[derive(Default)]
pub(super) struct DomainLog {
    pub steps: Vec<StepEntry>,
    /// Flattened outputs referenced by `StepEntry` ranges; `Option` so the
    /// merge can move each one out exactly once.
    pub outputs: Vec<Option<(TaskId, TaskOutput)>>,
    /// Enqueue results in delivery order — the merge consumes these FIFO
    /// while replaying the domain's `Deliver` wire events.
    pub deliver_results: Vec<Result<(), FaasError>>,
    /// Due-endpoint advancements performed (the serial loop's
    /// `events_dispatched` contribution from this domain).
    pub advancements: u64,
}

impl DomainLog {
    fn clear(&mut self) {
        self.steps.clear();
        self.outputs.clear();
        self.deliver_results.clear();
        self.advancements = 0;
    }
}

/// Base pointer of the endpoint slot table, sendable to domain workers.
///
/// SAFETY contract: a worker dereferences only the slots of its own domain
/// (disjoint across domains by `DomainPlan` construction, re-asserted at
/// pool spawn), and the coordinator does not touch `self.endpoints` — nor
/// anything that could move the `Vec` — between dispatching a window's
/// jobs and receiving all of its results.
#[derive(Clone, Copy)]
pub(super) struct EndpointsBase {
    ptr: *mut EndpointRegistration,
    len: usize,
}

unsafe impl Send for EndpointsBase {}

impl EndpointsBase {
    fn of(endpoints: &mut [EndpointRegistration]) -> Self {
        EndpointsBase {
            ptr: endpoints.as_mut_ptr(),
            len: endpoints.len(),
        }
    }
}

/// One window's work order for one domain worker: the shared slot table,
/// the horizon, the pre-routed deliveries, and a recycled log to fill.
pub(super) struct DomainJob {
    domain: usize,
    base: EndpointsBase,
    horizon: SimTime,
    batch: DomainBatch,
    log: DomainLog,
}

/// Every slot index a plan hands out must be in range and owned by exactly
/// one domain; workers rely on this for the disjoint `&mut` derivation.
fn assert_plan_disjoint(plan: &DomainPlan, len: usize) {
    let mut taken = vec![false; len];
    for slots in plan.iter() {
        for &s in slots.iter() {
            assert!(s < len, "domain plan slot out of range");
            assert!(!taken[s], "domain plan slots must be disjoint");
            taken[s] = true;
        }
    }
}

/// One domain's event loop: advance due endpoints (slot order — which is
/// endpoint-name order, the serial order) and apply the domain's deliveries
/// (wire order), logging each instant for the deterministic merge. All
/// buffers are caller-owned so a pooled worker reuses them across windows.
fn run_domain_into(
    base: EndpointsBase,
    slots: &[usize],
    batch: &DomainBatch,
    horizon: SimTime,
    log: &mut DomainLog,
    times: &mut Vec<Option<SimTime>>,
    scratch: &mut Vec<(TaskId, TaskOutput)>,
) {
    log.clear();
    times.clear();
    for &s in slots {
        debug_assert!(s < base.len);
        // SAFETY: `s` belongs to this domain (see `EndpointsBase`).
        times.push(unsafe { (*base.ptr.add(s)).next_event() });
    }
    let mut di = 0usize;
    loop {
        let mut tau: Option<SimTime> = batch.delivers.get(di).map(|d| d.at);
        for t in times.iter().flatten() {
            tau = Some(tau.map_or(*t, |x| x.min(*t)));
        }
        let Some(tau) = tau else { break };
        if tau > horizon {
            break;
        }
        // Advance endpoints with a due event, in slot order.
        for (i, &slot) in slots.iter().enumerate() {
            if times[i].is_some_and(|next| next <= tau) {
                // SAFETY: `slot` belongs to this domain (see `EndpointsBase`).
                let ep = unsafe { &mut *base.ptr.add(slot) };
                ep.advance_to(tau);
                log.advancements += 1;
                scratch.clear();
                ep.drain_finished_into(scratch);
                push_step(log, tau, slot, StepKind::Advanced, scratch);
                times[i] = ep.next_event();
            }
        }
        // Apply this domain's due deliveries in wire (FIFO) order.
        while batch.delivers.get(di).is_some_and(|d| d.at == tau) {
            let d = &batch.delivers[di];
            di += 1;
            let i = slots
                .iter()
                .position(|&s| s == d.slot)
                .expect("delivery routed to its owning domain");
            // SAFETY: `d.slot` belongs to this domain (routed by the plan).
            let ep = unsafe { &mut *base.ptr.add(d.slot) };
            let result = match ep {
                EndpointRegistration::Single(e) => e.enqueue(d.task, &d.command, tau),
                EndpointRegistration::Multi(m) => m.enqueue(d.task, &d.identity, &d.command, tau),
            };
            log.deliver_results.push(result);
            scratch.clear();
            ep.drain_finished_into(scratch);
            if !scratch.is_empty() {
                push_step(log, tau, d.slot, StepKind::DeliverInduced, scratch);
            }
            times[i] = ep.next_event();
        }
    }
}

fn push_step(
    log: &mut DomainLog,
    at: SimTime,
    slot: usize,
    kind: StepKind,
    outputs: &mut Vec<(TaskId, TaskOutput)>,
) {
    let out_start = log.outputs.len();
    log.outputs.extend(outputs.drain(..).map(Some));
    log.steps.push(StepEntry {
        at,
        slot,
        kind,
        out_start,
        out_len: log.outputs.len() - out_start,
    });
}

/// Run every domain of the plan to `horizon` on a one-shot scoped thread
/// each. Used by the bounded `advance_to(t)` window path, where no drain
/// loop exists to keep a pool alive.
pub(super) fn run_domains(
    endpoints: &mut [EndpointRegistration],
    plan: &DomainPlan,
    batches: &[DomainBatch],
    horizon: SimTime,
    logs: &mut Vec<DomainLog>,
) {
    debug_assert_eq!(plan.len(), batches.len());
    logs.clear();
    logs.resize_with(plan.len(), DomainLog::default);
    assert_plan_disjoint(plan, endpoints.len());
    let base = EndpointsBase::of(endpoints);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .iter()
            .zip(batches.iter().zip(logs.iter_mut()))
            .map(|(slots, (batch, log))| {
                scope.spawn(move |_| {
                    let mut times = Vec::new();
                    let mut scratch = Vec::new();
                    run_domain_into(base, slots, batch, horizon, log, &mut times, &mut scratch);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("domain worker panicked");
        }
    })
    .expect("domain scope");
}

/// A wire event of the window being replayed at the barrier. `Deliver`
/// payloads travelled to the domains; only the stub (task + slot) stays
/// behind so the coordinator can re-emit the record and the transition in
/// structural FIFO order. `Submit` carries its full payload: acceptance —
/// the id assignment, the task record, the `task.submit` line — happens on
/// the coordinator during the merge, in arrival order.
enum Replay {
    Submit {
        task: TaskId,
        slot: usize,
        identity: Arc<Identity>,
        command: Sym,
    },
    Deliver {
        task: TaskId,
        slot: usize,
    },
    Return {
        task: TaskId,
        output: TaskOutput,
    },
}

/// Finished outputs awaiting collection at the next committed instant.
enum Deferred {
    /// Drained from an endpoint's buffer before the window (outputs
    /// stranded by a previous window's final delivery).
    Pre {
        slot: usize,
        items: Vec<(TaskId, TaskOutput)>,
    },
    /// A range of one domain log's outputs.
    Log {
        slot: usize,
        domain: usize,
        start: usize,
        len: usize,
    },
}

impl Deferred {
    fn slot(&self) -> usize {
        match self {
            Deferred::Pre { slot, .. } | Deferred::Log { slot, .. } => *slot,
        }
    }
}

/// Component column of a deferred trace record: a cache slot, or the cloud.
const OPS_CLOUD: u32 = u32::MAX;

struct Op {
    at: SimTime,
    comp: u32,
    kind: &'static str,
    start: u32,
    len: u32,
}

/// A window's trace records, described but not yet written: static kind
/// names plus pre-formatted detail bytes in one arena. The state-commit
/// pass appends; the merge worker (or the inline caller) applies them to
/// the real [`Trace`] in order, reproducing the serial bytes exactly.
#[derive(Default)]
pub(super) struct TraceOps {
    text: String,
    ops: Vec<Op>,
}

impl TraceOps {
    fn begin(&mut self) -> u32 {
        self.text.len() as u32
    }

    fn buf(&mut self) -> &mut String {
        &mut self.text
    }

    fn commit_op(&mut self, at: SimTime, comp: u32, kind: &'static str, start: u32) {
        self.ops.push(Op {
            at,
            comp,
            kind,
            start,
            len: self.text.len() as u32 - start,
        });
    }

    fn abandon(&mut self, start: u32) {
        self.text.truncate(start as usize);
    }

    fn clear(&mut self) {
        self.text.clear();
        self.ops.clear();
    }

    pub(super) fn apply(&self, trace: &mut Trace, slot_syms: &[Sym]) {
        for op in &self.ops {
            let mut d = trace.detail_buf();
            d.push_str(&self.text[op.start as usize..(op.start + op.len) as usize]);
            match op.comp {
                OPS_CLOUD => trace.record(op.at, "faas.cloud", op.kind, d),
                slot => trace.record(op.at, slot_syms[slot as usize].clone(), op.kind, d),
            }
        }
    }
}

/// Commands for the merge worker. Sent on one channel, so per-sender FIFO
/// guarantees every `Apply` drains before a `Handback` returns the trace.
enum MergeCmd {
    /// Hand the trace to the worker (taken from the coordinator).
    Resume(Box<Trace>),
    /// Apply one window's records; the emptied batch comes back on the
    /// recycle channel.
    Apply(TraceOps),
    /// Return the trace to the coordinator (who must block on it before
    /// recording anything itself).
    Handback,
}

/// Per-drain state and static scaffolding of the pooled drive: `plan.len()`
/// domain workers plus one merge worker, all channel-fed, plus every
/// recycled per-window buffer.
pub(super) struct WindowPool {
    job_txs: Vec<Sender<DomainJob>>,
    result_rx: Receiver<DomainJob>,
    merge_tx: Sender<MergeCmd>,
    recycle_rx: Receiver<TraceOps>,
    trace_rx: Receiver<Box<Trace>>,
    /// Per-domain delivery batches, refilled each window.
    batches: Vec<DomainBatch>,
    /// Per-domain logs, moved into jobs and back each window.
    logs: Vec<DomainLog>,
    /// Replayed wire events of the current window (always drained empty).
    replay: EventQueue<Replay>,
    /// Pre-window stranded outputs (usually empty).
    deferred: Vec<Deferred>,
    /// `TraceOps` batches not currently in flight.
    ops_free: Vec<TraceOps>,
    /// The merge worker holds the trace; flush before touching `self.trace`.
    trace_out: bool,
    ops_sent: u64,
    ops_recycled: u64,
    /// Threads this pool spawned (domain workers + the merge worker).
    pub spawned: u64,
}

impl WindowPool {
    /// Spawn the pool inside the drain's scope. Workers own only their slot
    /// list and channel ends, so a window dispatch moves no thread state.
    fn spawn<'scope, 'env>(
        scope: &crossbeam::thread::Scope<'scope, 'env>,
        plan: &DomainPlan,
        n_slots: usize,
        slot_syms: Vec<Sym>,
    ) -> WindowPool {
        assert_plan_disjoint(plan, n_slots);
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<DomainJob>();
        let mut job_txs = Vec::with_capacity(plan.len());
        for slots in plan.iter() {
            let (tx, rx) = crossbeam::channel::unbounded::<DomainJob>();
            let result_tx = result_tx.clone();
            let slots: Vec<usize> = slots.to_vec();
            scope.spawn(move |_| {
                let mut times: Vec<Option<SimTime>> = Vec::new();
                let mut scratch: Vec<(TaskId, TaskOutput)> = Vec::new();
                while let Ok(mut job) = rx.recv() {
                    run_domain_into(
                        job.base,
                        &slots,
                        &job.batch,
                        job.horizon,
                        &mut job.log,
                        &mut times,
                        &mut scratch,
                    );
                    if result_tx.send(job).is_err() {
                        break;
                    }
                }
            });
            job_txs.push(tx);
        }
        let (merge_tx, merge_rx) = crossbeam::channel::unbounded::<MergeCmd>();
        let (recycle_tx, recycle_rx) = crossbeam::channel::unbounded::<TraceOps>();
        let (trace_tx, trace_rx) = crossbeam::channel::unbounded::<Box<Trace>>();
        scope.spawn(move |_| {
            let mut trace: Option<Box<Trace>> = None;
            while let Ok(cmd) = merge_rx.recv() {
                match cmd {
                    MergeCmd::Resume(t) => trace = Some(t),
                    MergeCmd::Apply(mut ops) => {
                        let t = trace.as_mut().expect("merge worker holds the trace");
                        ops.apply(t, &slot_syms);
                        ops.clear();
                        let _ = recycle_tx.send(ops);
                    }
                    MergeCmd::Handback => {
                        let t = trace.take().expect("handback without a resident trace");
                        if trace_tx.send(t).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        WindowPool {
            job_txs,
            result_rx,
            merge_tx,
            recycle_rx,
            trace_rx,
            batches: (0..plan.len()).map(|_| DomainBatch::default()).collect(),
            logs: (0..plan.len()).map(|_| DomainLog::default()).collect(),
            replay: EventQueue::new(),
            deferred: Vec::new(),
            ops_free: Vec::new(),
            trace_out: false,
            ops_sent: 0,
            ops_recycled: 0,
            spawned: plan.len() as u64 + 1,
        }
    }

    fn reclaim_applied(&mut self) {
        while let Some(ops) = self.recycle_rx.try_recv() {
            self.ops_recycled += 1;
            self.ops_free.push(ops);
        }
    }

    fn take_ops(&mut self) -> TraceOps {
        self.reclaim_applied();
        self.ops_free.pop().unwrap_or_default()
    }

    fn in_flight(&self) -> u64 {
        self.ops_sent - self.ops_recycled
    }
}

/// The per-drain constants of a window: the (immutable) domain partition
/// and each slot's one-way return latency. Probed once, not per window —
/// both are pure functions of the registered endpoints, which cannot change
/// while a drive holds `&mut CloudService`.
pub(super) struct WindowCtx {
    pub plan: DomainPlan,
    pub latency: Vec<SimDuration>,
}

impl CloudService {
    pub(super) fn window_ctx(&self) -> WindowCtx {
        WindowCtx {
            plan: self
                .domain_plan
                .clone()
                .expect("domain plan ensured before a parallel window"),
            latency: self.endpoints.iter().map(|ep| ep.wan_latency()).collect(),
        }
    }

    /// Stranded outputs from before the window: the serial loop would
    /// collect these at its next step instant, whatever causes it.
    fn drain_stranded(&mut self, deferred: &mut Vec<Deferred>) {
        if self.touched.is_empty() {
            return;
        }
        {
            let rank = &self.slot_rank;
            self.touched.sort_unstable_by_key(|&s| rank[s]);
        }
        self.touched.dedup();
        for i in 0..self.touched.len() {
            let slot = self.touched[i];
            let mut items = Vec::new();
            self.endpoints[slot].drain_finished_into(&mut items);
            if !items.is_empty() {
                deferred.push(Deferred::Pre { slot, items });
            }
        }
        self.touched.clear();
    }

    /// Extract the window's committed wire events: `Deliver` payloads go to
    /// the owning domain, stubs and `Return`s into the replay queue (same
    /// structural FIFO order the serial drain would see). Pending `Submit`s
    /// are pre-routed: each is assigned its prospective dense id (submits
    /// fire in (time, FIFO) order — exactly this walk order — so acceptance
    /// order *is* walk order) and its induced delivery leg, which positive
    /// lookahead puts strictly after the submit instant.
    fn extract_window(&mut self, t: SimTime, ctx: &WindowCtx, pool: &mut WindowPool) {
        debug_assert!(self.injector.is_none(), "parallel windows are injector-free");
        let mut incoming = std::mem::take(&mut self.wire_scratch);
        incoming.clear();
        self.wire.drain_due_into(t, &mut incoming);
        let mut induced: Vec<WindowDeliver> = Vec::new();
        let mut next_id = self.next_task;
        for b in pool.batches.iter_mut() {
            b.delivers.clear();
        }
        for (at, event) in incoming.drain(..) {
            match event {
                InFlight::Submit {
                    identity,
                    slot,
                    command,
                } => {
                    next_id += 1;
                    let task = TaskId(next_id);
                    let del_at = at + ctx.latency[slot];
                    debug_assert!(del_at > at, "positive lookahead gates submit-aware windows");
                    if del_at <= t {
                        induced.push(WindowDeliver {
                            at: del_at,
                            slot,
                            task,
                            identity: identity.clone(),
                            command: command.clone(),
                        });
                    }
                    pool.replay.push(
                        at,
                        Replay::Submit {
                            task,
                            slot,
                            identity,
                            command,
                        },
                    );
                }
                InFlight::Deliver { task, identity, slot } => {
                    let command = self.tasks[task.0 as usize - 1].command.clone();
                    pool.replay.push(at, Replay::Deliver { task, slot });
                    pool.batches[ctx.plan.domain_of(slot)]
                        .delivers
                        .push(WindowDeliver {
                            at,
                            slot,
                            task,
                            identity,
                            command,
                        });
                }
                InFlight::Return { task, output } => {
                    pool.replay.push(at, Replay::Return { task, output });
                }
            }
        }
        // Submit-induced deliveries enter the wire *during* the window, so
        // at equal timestamps the serial drain pops them after every
        // pre-existing event: append them to the batches after the walk and
        // stable-sort by time, preserving FIFO within a timestamp. Their
        // replay stubs are NOT pushed here — the serial wire orders
        // same-timestamp events by *generation* instant (a collection-phase
        // `Return` at τ precedes a submit-induced `Deliver` generated in
        // τ's wire phase), so `commit_submit` pushes each stub at its
        // submit's firing point in the commit walk, mirroring generation
        // order exactly.
        for d in induced {
            pool.batches[ctx.plan.domain_of(d.slot)].delivers.push(d);
        }
        for b in pool.batches.iter_mut() {
            b.delivers.sort_by_key(|d| d.at);
        }
        self.wire_scratch = incoming;
    }

    /// The state-commit pass: walk the committed instants and re-emit the
    /// serial schedule from the domain logs, mutating every piece of
    /// coordinator state in serial order and describing each trace record
    /// into `ops`. Returns the last committed instant, or `None` when the
    /// window held no events at all.
    fn commit_window(
        &mut self,
        t: SimTime,
        ctx: &WindowCtx,
        pool: &mut WindowPool,
        ops: &mut TraceOps,
    ) -> Option<SimTime> {
        let WindowPool {
            replay,
            logs,
            deferred,
            ..
        } = pool;
        let mut cursors = vec![0usize; logs.len()];
        let mut results_cursor = vec![0usize; logs.len()];
        let mut collect_list: Vec<Deferred> = Vec::new();
        let mut out_scratch: Vec<(TaskId, TaskOutput)> = Vec::new();
        let mut last_instant = None;
        loop {
            let mut tau = replay.next_time();
            for (d, log) in logs.iter().enumerate() {
                if let Some(entry) = log.steps.get(cursors[d]) {
                    tau = Some(tau.map_or(entry.at, |x| x.min(entry.at)));
                }
            }
            let Some(tau) = tau else { break };
            last_instant = Some(tau);
            // Collection phase: deferred outputs first (they were already in
            // the endpoints' buffers when this instant's advances appended to
            // them), then this instant's advancement outputs — all ordered by
            // slot rank, i.e. endpoint-name order, exactly the serial
            // `collect_touched_returns` order.
            collect_list.append(deferred);
            for (d, log) in logs.iter().enumerate() {
                while let Some(e) = log.steps.get(cursors[d]) {
                    if e.at != tau || e.kind != StepKind::Advanced {
                        break;
                    }
                    collect_list.push(Deferred::Log {
                        slot: e.slot,
                        domain: d,
                        start: e.out_start,
                        len: e.out_len,
                    });
                    cursors[d] += 1;
                }
            }
            {
                let rank = &self.slot_rank;
                collect_list.sort_by_key(|c| rank[c.slot()]);
            }
            for entry in collect_list.drain(..) {
                let slot = entry.slot();
                out_scratch.clear();
                match entry {
                    Deferred::Pre { items, .. } => out_scratch.extend(items),
                    Deferred::Log {
                        domain, start, len, ..
                    } => {
                        for o in &mut logs[domain].outputs[start..start + len] {
                            out_scratch.push(o.take().expect("each output is consumed once"));
                        }
                    }
                }
                for (task, output) in out_scratch.drain(..) {
                    let start = ops.begin();
                    {
                        let buf = ops.buf();
                        task.write_label(buf);
                        buf.push_str(" from endpoint");
                    }
                    ops.commit_op(tau, OPS_CLOUD, "task.returning", start);
                    let ret_at = tau + ctx.latency[slot];
                    if ret_at <= t {
                        replay.push(ret_at, Replay::Return { task, output });
                    } else {
                        self.wire.push(ret_at, InFlight::Return { task, output });
                    }
                }
            }
            // Wire phase: structural FIFO within the instant, consuming each
            // domain's enqueue results in the order the worker produced them.
            while let Some((at, event)) = replay.pop_due(tau) {
                self.events_dispatched += 1;
                match event {
                    Replay::Submit {
                        task,
                        slot,
                        identity,
                        command,
                    } => self.commit_submit(t, ctx, ops, replay, at, task, slot, identity, command),
                    Replay::Return { task, output } => self.commit_return(ops, at, task, output),
                    Replay::Deliver { task, slot } => {
                        let domain = ctx.plan.domain_of(slot);
                        let result = std::mem::replace(
                            &mut logs[domain].deliver_results[results_cursor[domain]],
                            Ok(()),
                        );
                        results_cursor[domain] += 1;
                        self.commit_deliver(ops, at, task, slot, result);
                    }
                }
            }
            // Defer phase: outputs induced by this instant's deliveries are
            // observed by the serial loop at the next step instant.
            for (d, log) in logs.iter().enumerate() {
                while let Some(e) = log.steps.get(cursors[d]) {
                    if e.at != tau {
                        break;
                    }
                    debug_assert_eq!(e.kind, StepKind::DeliverInduced);
                    deferred.push(Deferred::Log {
                        slot: e.slot,
                        domain: d,
                        start: e.out_start,
                        len: e.out_len,
                    });
                    cursors[d] += 1;
                }
            }
        }
        // Outputs induced at the final instant never saw a later instant:
        // the serial loop leaves them in the endpoints' buffers with the
        // slots on the touched list. Restore exactly that state.
        for entry in deferred.drain(..) {
            let slot = entry.slot();
            out_scratch.clear();
            match entry {
                Deferred::Pre { items, .. } => out_scratch.extend(items),
                Deferred::Log {
                    domain, start, len, ..
                } => {
                    for o in &mut logs[domain].outputs[start..start + len] {
                        out_scratch.push(o.take().expect("each output is consumed once"));
                    }
                }
            }
            self.endpoints[slot].restore_finished(&mut out_scratch);
            self.touched.push(slot);
        }
        // Bookkeeping: the serial loop's due-advancement event counts, the
        // per-domain window stats, and a full cache invalidation (workers
        // advanced endpoints behind the cache's back).
        let mut per_domain: Vec<u64> = Vec::with_capacity(logs.len());
        for (d, log) in logs.iter().enumerate() {
            debug_assert_eq!(cursors[d], log.steps.len(), "merge consumed every step");
            debug_assert_eq!(
                results_cursor[d],
                log.deliver_results.len(),
                "merge consumed every enqueue result"
            );
            self.events_dispatched += log.advancements;
            per_domain.push(log.advancements + log.deliver_results.len() as u64);
        }
        self.domain_stats.record_window(&per_domain);
        self.cache.mark_all_dirty();
        last_instant
    }

    /// Acceptance of a scheduled submission, replayed on the coordinator in
    /// arrival order: dense id, task record, `task.submit` bytes, and the
    /// delivery leg. The delivery *payload* was routed to its domain at
    /// extraction when it lands inside the window; its replay stub is
    /// pushed here — at the submit's firing point in the commit walk — so
    /// the stub's FIFO position among same-timestamp wire events matches
    /// the serial generation order. Beyond-window legs go to the real wire.
    #[allow(clippy::too_many_arguments)]
    fn commit_submit(
        &mut self,
        t: SimTime,
        ctx: &WindowCtx,
        ops: &mut TraceOps,
        replay: &mut EventQueue<Replay>,
        at: SimTime,
        task: TaskId,
        slot: usize,
        identity: Arc<Identity>,
        command: Sym,
    ) {
        self.pending_submits -= 1;
        self.next_task += 1;
        self.tasks_submitted += 1;
        debug_assert_eq!(task.0, self.next_task, "prospective ids match acceptance order");
        debug_assert_eq!(task.0 as usize, self.tasks.len() + 1, "ids are dense");
        self.tasks.push(Task {
            id: task,
            submitter: identity.id,
            endpoint: self.slot_name_syms[slot].clone(),
            command: command.clone(),
            submitted_at: at,
            state: TaskState::Submitted { at },
        });
        let start = ops.begin();
        {
            let name = &self.slot_name_syms[slot];
            let buf = ops.buf();
            buf.reserve(27 + name.len() + command.len());
            task.write_label(buf);
            buf.push_str(" -> ");
            buf.push_str(name);
            buf.push_str(": ");
            buf.push_str(&command);
        }
        ops.commit_op(at, OPS_CLOUD, "task.submit", start);
        let del_at = at + ctx.latency[slot];
        if del_at > t {
            self.wire.push(del_at, InFlight::Deliver { task, identity, slot });
        } else {
            replay.push(del_at, Replay::Deliver { task, slot });
        }
    }

    /// The deliver leg of the merge: the enqueue already happened inside the
    /// domain; here its logged result drives the same record/transition
    /// sequence the serial `handle_wire_event` performs.
    fn commit_deliver(
        &mut self,
        ops: &mut TraceOps,
        at: SimTime,
        task: TaskId,
        slot: usize,
        result: Result<(), FaasError>,
    ) {
        let start = ops.begin();
        task.write_label(ops.buf());
        ops.commit_op(at, slot as u32, "task.deliver", start);
        let transition = match result {
            Ok(()) => {
                self.tasks[task.0 as usize - 1].transition(TaskState::QueuedAtEndpoint { at })
            }
            Err(e) => {
                let start = ops.begin();
                let _ = write!(ops.buf(), "{task}: {e}");
                ops.commit_op(at, slot as u32, "task.reject", start);
                self.tasks[task.0 as usize - 1].transition(TaskState::Rejected {
                    at,
                    reason: e.to_string(),
                })
            }
        };
        if let Err(e) = transition {
            let start = ops.begin();
            let _ = write!(ops.buf(), "{e}");
            ops.commit_op(at, OPS_CLOUD, "task.transition-blocked", start);
        }
    }

    /// The return leg of the merge: byte-identical to the serial
    /// `handle_wire_event`, with the record described into `ops` instead of
    /// written to the (possibly absent) trace. The latency reservoir sample
    /// stays on the coordinator in replay order — `Reservoir` is
    /// order-sensitive.
    fn commit_return(&mut self, ops: &mut TraceOps, at: SimTime, task: TaskId, output: TaskOutput) {
        let start = ops.begin();
        {
            let buf = ops.buf();
            buf.reserve(42 + output.ran_as.len() + output.node.len());
            task.write_label(buf);
            buf.push_str(" ran_as=");
            buf.push_str(&output.ran_as);
            buf.push_str(" node=");
            buf.push_str(&output.node);
            buf.push_str(if output.success() { " ok=true" } else { " ok=false" });
        }
        let record = &mut self.tasks[task.0 as usize - 1];
        let submitted_at = record.submitted_at;
        match record.transition(TaskState::Done(output)) {
            Ok(()) => {
                self.tasks_completed += 1;
                self.obs
                    .observe("faas.task_latency_us", at.since(submitted_at).as_micros());
                ops.commit_op(at, OPS_CLOUD, "task.done", start);
            }
            Err(e) => {
                ops.abandon(start);
                let start = ops.begin();
                let _ = write!(ops.buf(), "{e}");
                ops.commit_op(at, OPS_CLOUD, "task.transition-blocked", start);
            }
        }
    }

    /// Advance the whole federation to `t` using one worker thread per
    /// lookahead domain, then merge the domain logs back into the committed
    /// trace. Returns the last committed instant, or `None` when the window
    /// held no events at all. This is the bounded-window entry point used
    /// by `advance_to(t)`: threads are scoped to the window and the trace
    /// records apply synchronously. [`Self::drain_pooled`] is the pipelined
    /// pool variant.
    ///
    /// Caller guarantees: no fault injector anywhere, no shared batch
    /// scheduler (see [`CloudService::parallel_static_ok`]), and a plan with
    /// at least two domains.
    pub(super) fn advance_window_parallel(&mut self, t: SimTime) -> Option<SimTime> {
        let ctx = self.window_ctx();
        // A one-shot "pool" shell: same buffers, no threads, no merge
        // worker — `run_domains` scopes the domain threads per window.
        let mut shell = WindowPool {
            job_txs: Vec::new(),
            result_rx: crossbeam::channel::unbounded().1,
            merge_tx: crossbeam::channel::unbounded().0,
            recycle_rx: crossbeam::channel::unbounded().1,
            trace_rx: crossbeam::channel::unbounded().1,
            batches: (0..ctx.plan.len()).map(|_| DomainBatch::default()).collect(),
            logs: Vec::new(),
            replay: EventQueue::new(),
            deferred: Vec::new(),
            ops_free: Vec::new(),
            trace_out: false,
            ops_sent: 0,
            ops_recycled: 0,
            spawned: 0,
        };
        self.drain_stranded(&mut shell.deferred);
        self.extract_window(t, &ctx, &mut shell);
        let mut logs = std::mem::take(&mut shell.logs);
        run_domains(&mut self.endpoints, &ctx.plan, &shell.batches, t, &mut logs);
        shell.logs = logs;
        let mut ops = TraceOps::default();
        let last = self.commit_window(t, &ctx, &mut shell, &mut ops);
        ops.apply(&mut self.trace, &self.slot_syms);
        last
    }

    /// Run the event loop to quiescence with a persistent worker pool:
    /// bounded, span-adapted parallel windows whenever the remaining work
    /// admits them, serial steps otherwise (with the trace flushed back
    /// from the merge worker first). The committed trace is byte-identical
    /// to the serial drain at any width; only wall time and the
    /// barrier/stall/overhead counters depend on the pool.
    pub(super) fn drain_pooled(&mut self) -> SimTime {
        let ctx = self.window_ctx();
        crossbeam::thread::scope(|scope| {
            let mut pool: Option<WindowPool> = None;
            while let Some(first) = self.next_event() {
                let deadline = first + SimDuration::from_micros(self.window_span_us);
                if self.parallel_window_ok(deadline) {
                    if pool.is_none() {
                        let p = WindowPool::spawn(
                            scope,
                            &ctx.plan,
                            self.endpoints.len(),
                            self.slot_syms.clone(),
                        );
                        self.pool_spawns += p.spawned;
                        pool = Some(p);
                    }
                    let pool = pool.as_mut().expect("pool just ensured");
                    let events_before = self.events_dispatched;
                    let overhead_start = Instant::now();
                    self.drain_stranded(&mut pool.deferred);
                    self.extract_window(deadline, &ctx, pool);
                    // Dispatch: move each domain's batch + recycled log to
                    // its worker; barrier on all results before the merge
                    // touches any endpoint.
                    let base = EndpointsBase::of(&mut self.endpoints);
                    for d in 0..ctx.plan.len() {
                        let job = DomainJob {
                            domain: d,
                            base,
                            horizon: deadline,
                            batch: std::mem::take(&mut pool.batches[d]),
                            log: std::mem::take(&mut pool.logs[d]),
                        };
                        assert!(pool.job_txs[d].send(job).is_ok(), "domain worker alive");
                    }
                    let dispatched = overhead_start.elapsed();
                    for _ in 0..ctx.plan.len() {
                        let job = pool.result_rx.recv().expect("domain worker alive");
                        pool.batches[job.domain] = job.batch;
                        pool.logs[job.domain] = job.log;
                    }
                    // The merge worker owns the trace while the pool runs;
                    // nothing below records to `self.trace` directly.
                    if !pool.trace_out {
                        let trace = Box::new(std::mem::take(&mut self.trace));
                        assert!(
                            pool.merge_tx.send(MergeCmd::Resume(trace)).is_ok(),
                            "merge worker alive"
                        );
                        pool.trace_out = true;
                    }
                    let commit_start = Instant::now();
                    let mut ops = pool.take_ops();
                    let last = self.commit_window(deadline, &ctx, pool, &mut ops);
                    assert!(
                        pool.merge_tx.send(MergeCmd::Apply(ops)).is_ok(),
                        "merge worker alive"
                    );
                    pool.ops_sent += 1;
                    self.pipeline_depth_max = self.pipeline_depth_max.max(pool.in_flight());
                    let overhead = dispatched + commit_start.elapsed();
                    self.adapt_window(
                        &ctx,
                        overhead.as_nanos() as u64,
                        self.events_dispatched - events_before,
                    );
                    if let Some(last) = last {
                        self.now = last;
                        continue;
                    }
                    // Defensive: a window that committed nothing cannot
                    // advance the clock — fall through to one serial step so
                    // the drain always progresses.
                }
                // Serial fallback for this step: the coordinator records to
                // the trace itself, so reclaim it from the merge worker
                // first.
                if let Some(p) = &mut pool {
                    self.flush_merge(p);
                }
                self.domain_stats.serial_fallbacks += 1;
                if self.step_next(SimTime::FAR_FUTURE).is_none() {
                    break;
                }
            }
            if let Some(mut p) = pool.take() {
                self.flush_merge(&mut p);
            }
            // Dropping the pool closes every job/merge channel; the scope
            // then joins the (now exiting) workers.
        })
        .expect("window pool scope");
        self.now
    }

    /// Block until the merge worker has applied every outstanding window
    /// and hand the trace back to the coordinator.
    fn flush_merge(&mut self, pool: &mut WindowPool) {
        if !pool.trace_out {
            return;
        }
        pool.reclaim_applied();
        if pool.in_flight() > 0 {
            self.merge_stalls += 1;
        }
        assert!(
            pool.merge_tx.send(MergeCmd::Handback).is_ok(),
            "merge worker alive"
        );
        let trace = pool.trace_rx.recv().expect("merge worker returns the trace");
        self.trace = *trace;
        pool.trace_out = false;
        pool.reclaim_applied();
    }

    /// Re-derive the window span and the min-work gate from this window's
    /// committed event count and measured coordinator overhead. Both knobs
    /// only steer *which* windows run parallel and how wide they are — the
    /// committed bytes are invariant under any choice, so wall-clock inputs
    /// are safe here (the counters they feed are documented as
    /// run-dependent).
    fn adapt_window(&mut self, ctx: &WindowCtx, overhead_ns: u64, committed: u64) {
        self.window_overhead_ns = if self.window_overhead_ns == 0 {
            overhead_ns
        } else {
            (self.window_overhead_ns * 3 + overhead_ns) / 4
        };
        // Break-even pending-wire size: parallel pays `overhead` per window
        // and saves the off-coordinator share of the serial per-event cost.
        let workers = ctx.plan.len().max(2) as u64;
        let saved_per_event = (SERIAL_NS_PER_EVENT * (workers - 1) / workers).max(1);
        self.min_wire = ((self.window_overhead_ns / saved_per_event) as usize)
            .clamp(PARALLEL_WIRE_FLOOR, PARALLEL_WIRE_CEIL);
        // Steer the span toward the target events-per-window, within 4x per
        // window and hard bounds.
        if let Some(ideal) = self
            .window_span_us
            .saturating_mul(TARGET_WINDOW_EVENTS)
            .checked_div(committed)
        {
            let next = ideal
                .max(self.window_span_us / 4)
                .min(self.window_span_us.saturating_mul(4));
            self.window_span_us = next.clamp(WINDOW_SPAN_MIN_US, WINDOW_SPAN_MAX_US);
        }
    }
}
