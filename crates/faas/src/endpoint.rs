//! Single-user endpoints: the basic unit of remote execution.
//!
//! An endpoint runs in user space under one local account, provisions
//! workers through an execution provider (login-node local or SLURM pilot),
//! pulls queued tasks onto free workers, and reports results. "Endpoints use
//! Parsl to dynamically provision resources, deploy a pilot job model, and
//! manage the execution of tasks on those resources, optionally in a
//! container" (§5.1).

use crate::error::FaasError;
use crate::exec::SharedSite;
use crate::function::FunctionId;
use crate::task::{TaskId, TaskOutput};
use hpcci_auth::{HighAssurancePolicy, IdentityId};
use hpcci_cluster::{Cred, NodeRole, UserAccount};
use hpcci_obs::Obs;
use hpcci_scheduler::{BlockId, BlockState, ExecutionProvider, LocalProvider, SlurmProvider};
use hpcci_sim::{Advance, DetRng, EventQueue, FaultInjector, SimDuration, SimTime, Sym};
use std::collections::{BTreeSet, VecDeque};

/// The provider variants an endpoint can provision workers through.
pub enum WorkerProvider {
    Local(LocalProvider),
    Slurm(SlurmProvider),
}

impl WorkerProvider {
    fn request_block(&mut self, now: SimTime) -> Result<BlockId, hpcci_scheduler::SchedulerError> {
        match self {
            WorkerProvider::Local(p) => p.request_block(now),
            WorkerProvider::Slurm(p) => p.request_block(now),
        }
    }

    fn block_state(
        &mut self,
        id: BlockId,
        now: SimTime,
    ) -> Result<BlockState, hpcci_scheduler::SchedulerError> {
        match self {
            WorkerProvider::Local(p) => p.block_state(id, now),
            WorkerProvider::Slurm(p) => p.block_state(id, now),
        }
    }

    fn release_block(&mut self, id: BlockId, now: SimTime) {
        let _ = match self {
            WorkerProvider::Local(p) => p.release_block(id, now),
            WorkerProvider::Slurm(p) => p.release_block(id, now),
        };
    }

    pub fn node_role(&self) -> NodeRole {
        match self {
            WorkerProvider::Local(p) => p.node_role(),
            WorkerProvider::Slurm(p) => p.node_role(),
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        match self {
            WorkerProvider::Local(p) => p.next_event(),
            WorkerProvider::Slurm(p) => p.next_event(),
        }
    }
}

/// Static configuration of an endpoint.
pub struct EndpointConfig {
    /// Endpoint name ("endpoint UUID" in the action's inputs).
    pub name: String,
    /// Identity allowed to submit to this (single-user) endpoint.
    pub owner: IdentityId,
    /// Local account the endpoint process runs as.
    pub local_user: String,
    /// Concurrent tasks per active worker block.
    pub workers: u32,
    /// If set, only these registered functions may execute (§5.2's
    /// "restricting the functions that can be executed").
    pub restrict_functions: Option<BTreeSet<FunctionId>>,
    /// Identity requirements enforced at submission.
    pub ha_policy: HighAssurancePolicy,
    /// Container image reference workers run inside, if any (§6.3).
    pub container: Option<String>,
}

impl EndpointConfig {
    pub fn new(name: &str, owner: IdentityId, local_user: &str) -> Self {
        EndpointConfig {
            name: name.to_string(),
            owner,
            local_user: local_user.to_string(),
            workers: 4,
            restrict_functions: None,
            ha_policy: HighAssurancePolicy::permissive(),
            container: None,
        }
    }

    pub fn with_workers(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.workers = n;
        self
    }

    pub fn with_allowlist(mut self, functions: &[FunctionId]) -> Self {
        self.restrict_functions = Some(functions.iter().copied().collect());
        self
    }

    pub fn with_ha_policy(mut self, policy: HighAssurancePolicy) -> Self {
        self.ha_policy = policy;
        self
    }

    pub fn in_container(mut self, image: &str) -> Self {
        self.container = Some(image.to_string());
        self
    }
}

struct QueuedTask {
    id: TaskId,
    /// Interned: the cloud hands us the already-shared `Sym`, so queueing a
    /// task is allocation-free even at million-task rates.
    command: Sym,
}

struct Completion {
    id: TaskId,
    output: TaskOutput,
}

/// A single-user Globus-Compute-style endpoint.
pub struct Endpoint {
    pub config: EndpointConfig,
    site: SharedSite,
    provider: WorkerProvider,
    block: Option<BlockId>,
    queue: VecDeque<QueuedTask>,
    completions: EventQueue<Completion>,
    finished: Vec<(TaskId, TaskOutput)>,
    busy_workers: u32,
    stopped: bool,
    now: SimTime,
    rng: DetRng,
    injector: Option<FaultInjector>,
    /// Observability handle (disabled by default; see [`Self::set_obs`]).
    obs: Obs,
    /// When the currently outstanding pilot block was requested; taken when
    /// the block first turns active to observe provisioning latency.
    provision_pending: Option<SimTime>,
    /// Cached resolution of `config.local_user` at the site, paired with its
    /// credentials and the interned username every task output shares.
    /// Revalidated (by comparison, not by cloning) on every task start, so
    /// account changes at the site are still observed.
    exec_identity: Option<(UserAccount, Cred, Sym)>,
    /// Cached node identity for the current block: `(block, role, hostname,
    /// speed)`. Node identity is fixed for a block's lifetime, so the pump
    /// resolves it once per block instead of once per pump — and tasks share
    /// the interned hostname instead of cloning a `String` each.
    node_cache: Option<(BlockId, NodeRole, Sym, f64)>,
}

impl Endpoint {
    pub fn new(config: EndpointConfig, site: SharedSite, provider: WorkerProvider, seed: u64) -> Self {
        Endpoint {
            config,
            site,
            provider,
            block: None,
            queue: VecDeque::new(),
            completions: EventQueue::new(),
            finished: Vec::new(),
            busy_workers: 0,
            stopped: false,
            now: SimTime::ZERO,
            rng: DetRng::seed_from_u64(seed),
            injector: None,
            obs: Obs::disabled(),
            provision_pending: None,
            exec_identity: None,
            node_cache: None,
        }
    }

    /// Attach an observability handle. The endpoint records pilot
    /// provisioning latency, task execution time, and pilot re-provisions;
    /// recording is sim-time only and never perturbs behaviour.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Attach a fault injector. The endpoint consults it at its event
    /// boundaries; with an empty plan the consults are guaranteed no-ops.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Does this endpoint consult a fault injector? Containers fall back to
    /// the exhaustive advance path for fault-aware children so fault consult
    /// boundaries never move.
    pub fn has_injector(&self) -> bool {
        self.injector.is_some()
    }

    /// Can this endpoint's next event move without the endpoint itself being
    /// touched? True for pilot-job providers: the batch scheduler is shared
    /// with every other tenant at the site, so another endpoint's job end can
    /// re-time this one. Containers must treat such children as volatile in
    /// their [`hpcci_sim::NextEventCache`].
    pub fn shares_scheduler(&self) -> bool {
        matches!(self.provider, WorkerProvider::Slurm(_))
    }

    /// Is a scheduled crash due for this endpoint at `now`? Consumes the
    /// fault if so (it is one-shot).
    fn crash_due(&self, now: SimTime) -> bool {
        self.injector
            .as_ref()
            .is_some_and(|inj| inj.crash_due(&self.config.name, now))
    }

    /// Simulate the endpoint worker process crashing: every queued task and
    /// every in-flight completion fails with an infrastructure-marked error,
    /// the worker block is torn down, and the endpoint stays stopped until a
    /// resubmission path routes work elsewhere.
    pub fn force_crash(&mut self, now: SimTime) {
        let component = format!("faas.ep.{}", self.config.name);
        let mut lost = 0usize;
        let ran_as = Sym::from(self.config.local_user.as_str());
        let crashed = |started: SimTime| TaskOutput {
            stdout: String::new(),
            stderr: "infrastructure: endpoint worker crashed".to_string(),
            result: Err("infrastructure: endpoint worker crashed".to_string()),
            ran_as: ran_as.clone(),
            node: Sym::Static("-"),
            started,
            ended: now,
        };
        while let Some((_, c)) = self.completions.pop_due(SimTime::FAR_FUTURE) {
            self.finished.push((c.id, crashed(c.output.started)));
            lost += 1;
        }
        while let Some(task) = self.queue.pop_front() {
            self.finished.push((task.id, crashed(now)));
            lost += 1;
        }
        self.busy_workers = 0;
        if let Some(b) = self.block.take() {
            self.provider.release_block(b, now);
        }
        self.stopped = true;
        if let Some(inj) = &self.injector {
            inj.record(
                now,
                &component,
                "fault.effect",
                format!("endpoint crashed; {lost} task(s) failed as infrastructure"),
            );
        }
    }

    pub fn site(&self) -> &SharedSite {
        &self.site
    }

    /// One-way latency between this endpoint's site and the cloud service.
    pub fn wan_latency(&self) -> SimDuration {
        let rtt = self.site.lock().site.perf.wan_rtt();
        rtt / 2
    }

    /// Check the allowlist for a registered function.
    pub fn function_allowed(&self, f: FunctionId) -> bool {
        match &self.config.restrict_functions {
            None => true,
            Some(set) => set.contains(&f),
        }
    }

    /// Are ad-hoc shell commands allowed? (Only when no restriction is set.)
    pub fn shell_allowed(&self) -> bool {
        self.config.restrict_functions.is_none()
    }

    /// Accept a task for execution.
    pub fn enqueue(
        &mut self,
        id: TaskId,
        command: impl Into<Sym>,
        now: SimTime,
    ) -> Result<(), FaasError> {
        if self.crash_due(now) {
            self.force_crash(now);
            return Err(FaasError::Infrastructure(format!(
                "endpoint {} worker crashed",
                self.config.name
            )));
        }
        if self.stopped {
            return Err(FaasError::EndpointStopped(self.config.name.clone()));
        }
        self.catch_up(now);
        self.queue.push_back(QueuedTask {
            id,
            command: command.into(),
        });
        if self.block.is_none() {
            // Lazy provisioning: the first task requests the worker block.
            if let Ok(b) = self.provider.request_block(now) {
                self.block = Some(b);
                if self.shares_scheduler() {
                    self.provision_pending = Some(now);
                }
            }
        }
        self.pump();
        Ok(())
    }

    /// Drain finished task outputs (cloud service collects these).
    pub fn take_finished(&mut self) -> Vec<(TaskId, TaskOutput)> {
        std::mem::take(&mut self.finished)
    }

    /// Move finished outputs into `out`, keeping this endpoint's `finished`
    /// buffer allocated. The cloud's per-step collection drains every touched
    /// endpoint through a reused scratch vector; unlike [`Self::take_finished`]
    /// neither side reallocates on the next round.
    pub fn drain_finished_into(&mut self, out: &mut Vec<(TaskId, TaskOutput)>) {
        out.append(&mut self.finished);
    }

    /// Put back outputs a parallel window drained past their collection
    /// instant. The buffer is empty when this is called (the window drained
    /// everything), so appending restores the exact serial buffer state:
    /// restored outputs first, later completions appended after them.
    pub fn restore_finished(&mut self, items: &mut Vec<(TaskId, TaskOutput)>) {
        self.finished.append(items);
    }

    /// Gracefully stop: release the worker block; queued tasks are rejected
    /// by the cloud when it notices the endpoint stopped.
    pub fn stop(&mut self, now: SimTime) {
        self.catch_up(now);
        if let Some(b) = self.block.take() {
            self.provider.release_block(b, now);
        }
        self.stopped = true;
    }

    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    fn catch_up(&mut self, now: SimTime) {
        if now > self.now {
            self.advance_to(now);
        }
    }

    /// Start queued tasks on free workers if the block is active.
    fn pump(&mut self) {
        if self.stopped || self.queue.is_empty() {
            return;
        }
        let Some(mut block) = self.block else {
            return;
        };
        let mut reprovisioned = false;
        let (nodes, role) = loop {
            let state = match self.provider.block_state(block, self.now) {
                Ok(s) => s,
                Err(_) => return,
            };
            match state {
                BlockState::Active { nodes, role, .. } => {
                    if let Some(requested) = self.provision_pending.take() {
                        self.obs.observe_duration(
                            "faas.pilot_provision_us",
                            self.now.since(requested),
                        );
                    }
                    break (nodes, role);
                }
                BlockState::Requested { .. } => return,
                BlockState::Terminated { .. } => {
                    // Pilot died (walltime or preemption); provision a fresh
                    // block for the remaining queue and re-read it — an idle
                    // machine starts the replacement immediately, and waiting
                    // for the next event would deadlock into the new pilot's
                    // own expiry.
                    if reprovisioned {
                        return;
                    }
                    reprovisioned = true;
                    match self.provider.request_block(self.now) {
                        Ok(b) => {
                            self.obs.inc("faas.pilot_reprovisions");
                            if self.shares_scheduler() {
                                self.provision_pending = Some(self.now);
                            }
                            self.block = Some(b);
                            block = b;
                        }
                        Err(_) => {
                            self.block = None;
                            return;
                        }
                    }
                }
            }
        };
        if self.busy_workers >= self.config.workers {
            return;
        }
        // Node identity and speed are fixed for the lifetime of the block;
        // resolve them once per block (interned) rather than once per pump.
        let (node_hostname, node_speed) = match &self.node_cache {
            Some((b, r, sym, speed)) if *b == block && *r == role => (sym.clone(), *speed),
            _ => {
                let runtime = self.site.lock();
                let (hostname, speed) = match role {
                    NodeRole::Login => (
                        runtime
                            .site
                            .login_node()
                            .map(|n| n.hostname.clone())
                            .unwrap_or_else(|| "login".to_string()),
                        runtime.site.login_node().map(|n| n.cpu_speed).unwrap_or(1.0),
                    ),
                    NodeRole::Compute => (
                        nodes
                            .first()
                            .and_then(|id| runtime.site.node(*id).ok().map(|n| n.hostname.clone()))
                            .unwrap_or_else(|| format!("{}-compute", runtime.site.id)),
                        1.0,
                    ),
                };
                let sym = Sym::from(hostname.as_str());
                self.node_cache = Some((block, role, sym.clone(), speed));
                (sym, speed)
            }
        };
        while self.busy_workers < self.config.workers {
            let Some(task) = self.queue.pop_front() else {
                break;
            };
            let started = self.now;
            let mut runtime = self.site.lock();
            match runtime.site.account(&self.config.local_user) {
                Ok(a) => {
                    // Revalidate the cached identity against the live site
                    // account; only a changed account pays the clone.
                    if self.exec_identity.as_ref().map(|(acc, _, _)| acc) != Some(a) {
                        let ran_as = Sym::from(a.username.as_str());
                        self.exec_identity = Some((a.clone(), Cred::of(a), ran_as));
                    }
                }
                Err(e) => {
                    // Misconfigured endpoint: every task fails.
                    drop(runtime);
                    let output = TaskOutput {
                        stdout: String::new(),
                        stderr: e.to_string(),
                        result: Err(e.to_string()),
                        ran_as: Sym::from(self.config.local_user.as_str()),
                        node: Sym::Static("unknown"),
                        started,
                        ended: started,
                    };
                    self.finished.push((task.id, output));
                    continue;
                }
            }
            let (account, cred, ran_as) = self.exec_identity.as_ref().expect("validated above");
            let outcome = runtime.execute(
                &task.command,
                account,
                cred,
                role,
                &node_hostname,
                started,
                &mut self.rng,
                self.config.container.as_deref(),
            );
            let duration = runtime
                .site
                .perf
                .compute_time(outcome.work, node_speed, &mut self.rng);
            drop(runtime);
            let ended = started + duration;
            let output = TaskOutput {
                stdout: outcome.stdout,
                stderr: outcome.stderr,
                result: outcome.result,
                ran_as: ran_as.clone(),
                node: node_hostname.clone(),
                started,
                ended,
            };
            self.busy_workers += 1;
            self.completions.push(ended, Completion { id: task.id, output });
        }
    }
}

impl Advance for Endpoint {
    fn next_event(&self) -> Option<SimTime> {
        let mut next = self.completions.next_time();
        if !self.queue.is_empty() {
            if let Some(p) = self.provider.next_event() {
                next = Some(next.map_or(p, |n| n.min(p)));
            }
        }
        next
    }

    fn advance_to(&mut self, t: SimTime) {
        if self.crash_due(t) {
            self.force_crash(t);
        }
        while let Some((at, completion)) = self.completions.pop_due(t) {
            self.now = at;
            self.busy_workers = self.busy_workers.saturating_sub(1);
            self.obs
                .observe_duration("faas.task_exec_us", completion.output.runtime());
            self.finished.push((completion.id, completion.output));
            self.pump();
        }
        self.now = t;
        self.pump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{shared, ExecOutcome, SiteRuntime};
    use hpcci_cluster::Site;
    use hpcci_sim::drive;

    fn login_endpoint(workers: u32) -> Endpoint {
        let mut rt = SiteRuntime::new(Site::chameleon_tacc());
        rt.site.add_account("cc", "chameleon");
        rt.commands.register("sleepy", |env| {
            // 10 reference-seconds of simulated work.
            ExecOutcome::ok(format!("done on {}", env.node), 10.0)
        });
        rt.commands.register("boom", |_| ExecOutcome::fail("kaboom", 0.5));
        let site = shared(rt);
        let login = site.lock().site.login_node().unwrap().id;
        let provider = WorkerProvider::Local(
            LocalProvider::new(login, 16).with_startup(SimDuration::from_millis(100)),
        );
        Endpoint::new(
            EndpointConfig::new("ep-cham", IdentityId(1), "cc").with_workers(workers),
            site,
            provider,
            42,
        )
    }

    #[test]
    fn task_executes_and_finishes() {
        let mut ep = login_endpoint(4);
        ep.enqueue(TaskId(1), "sleepy", SimTime::ZERO).unwrap();
        drive(&mut [&mut ep]);
        let finished = ep.take_finished();
        assert_eq!(finished.len(), 1);
        let (id, out) = &finished[0];
        assert_eq!(*id, TaskId(1));
        assert!(out.success());
        assert!(out.stdout.contains("chi-tacc-icelake"));
        assert_eq!(out.ran_as, "cc");
        // ~10s of work at chameleon speed (1.3 * 1.3 node) plus overhead.
        assert!(out.runtime() > SimDuration::from_secs(4));
        assert!(out.runtime() < SimDuration::from_secs(11));
    }

    #[test]
    fn failure_propagates_stderr() {
        let mut ep = login_endpoint(1);
        ep.enqueue(TaskId(7), "boom now", SimTime::ZERO).unwrap();
        drive(&mut [&mut ep]);
        let finished = ep.take_finished();
        assert_eq!(finished.len(), 1);
        assert!(!finished[0].1.success());
        assert_eq!(finished[0].1.stderr, "kaboom");
    }

    #[test]
    fn worker_limit_serializes_tasks() {
        let mut ep = login_endpoint(1);
        ep.enqueue(TaskId(1), "sleepy", SimTime::ZERO).unwrap();
        ep.enqueue(TaskId(2), "sleepy", SimTime::ZERO).unwrap();
        drive(&mut [&mut ep]);
        let finished = ep.take_finished();
        assert_eq!(finished.len(), 2);
        let (a, b) = (&finished[0].1, &finished[1].1);
        assert!(b.started >= a.ended, "1 worker: second task waits");

        // With 2 workers the same pair overlaps.
        let mut ep2 = login_endpoint(2);
        ep2.enqueue(TaskId(1), "sleepy", SimTime::ZERO).unwrap();
        ep2.enqueue(TaskId(2), "sleepy", SimTime::ZERO).unwrap();
        drive(&mut [&mut ep2]);
        let f2 = ep2.take_finished();
        assert!(f2[1].1.started < f2[0].1.ended, "2 workers: tasks overlap");
    }

    #[test]
    fn stopped_endpoint_rejects() {
        let mut ep = login_endpoint(1);
        ep.stop(SimTime::ZERO);
        assert!(matches!(
            ep.enqueue(TaskId(1), "sleepy", SimTime::ZERO),
            Err(FaasError::EndpointStopped(_))
        ));
    }

    #[test]
    fn allowlist_checks() {
        let site = {
            let mut rt = SiteRuntime::new(Site::workstation("lab"));
            rt.site.add_account("u", "p");
            shared(rt)
        };
        let login = site.lock().site.login_node().unwrap().id;
        let ep = Endpoint::new(
            EndpointConfig::new("ep", IdentityId(1), "u").with_allowlist(&[FunctionId(5)]),
            site,
            WorkerProvider::Local(LocalProvider::new(login, 4)),
            1,
        );
        assert!(ep.function_allowed(FunctionId(5)));
        assert!(!ep.function_allowed(FunctionId(6)));
        assert!(!ep.shell_allowed());
    }

    #[test]
    fn slurm_provider_endpoint_runs_on_compute() {
        let mut rt = SiteRuntime::new(Site::tamu_faster()).with_scheduler(64);
        rt.site.add_account("x-u", "CIS230030");
        rt.commands.register("job", |env| {
            ExecOutcome::ok(format!("role={:?}", env.role), 5.0)
        });
        let sched = rt.scheduler.as_ref().unwrap().clone();
        let account = rt.site.account("x-u").unwrap().clone();
        let site = shared(rt);
        let provider = WorkerProvider::Slurm(SlurmProvider::new(
            sched,
            account.uid,
            &account.allocation,
            64,
            SimDuration::from_hours(1),
        ));
        let mut ep = Endpoint::new(
            EndpointConfig::new("ep-faster", IdentityId(1), "x-u").with_workers(8),
            site,
            provider,
            3,
        );
        ep.enqueue(TaskId(1), "job", SimTime::ZERO).unwrap();
        drive(&mut [&mut ep]);
        let finished = ep.take_finished();
        assert_eq!(finished.len(), 1);
        assert!(finished[0].1.stdout.contains("Compute"));
        assert!(finished[0].1.node.contains("tamu-faster"));
    }
}
