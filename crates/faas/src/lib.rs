//! # hpcci-faas — a federated Function-as-a-Service platform
//!
//! The Globus Compute analogue (§5.1): a cloud service that "decouples
//! function registration and management from function execution on a
//! federated ecosystem of endpoints".
//!
//! * [`function::Function`] — registered functions, either `Shell` commands
//!   or `Native` handlers resolved against a per-site command registry;
//! * [`task::Task`] — the unit of execution: submitted through the cloud,
//!   delivered to an endpoint, executed as the mapped local user, and
//!   returned (result or exception) to the cloud;
//! * [`exec::SiteRuntime`] / [`exec::TaskEnv`] — what a running function
//!   sees: the site filesystem opened with the local user's credentials, the
//!   software environments, the network policy of the node it runs on;
//! * [`endpoint::Endpoint`] — a single-user endpoint: provider-provisioned
//!   workers (login-node local or SLURM pilot), task queue, function
//!   allowlist, owner-only submission;
//! * [`mep::MultiUserEndpoint`] — the privileged MEP that identity-maps each
//!   submitting user and forks a per-user endpoint from a template —
//!   including the paper's two-provider template (clone on the login node,
//!   test on compute nodes) for network-isolated sites;
//! * [`cloud::CloudService`] — the single contact point: authenticated
//!   submission, task status, results, and the federation-wide trace.

pub mod cloud;
pub mod endpoint;
pub mod error;
pub mod exec;
pub mod function;
pub mod mep;
pub mod task;

pub use cloud::{CloudService, EndpointId, EndpointRegistration};
pub use endpoint::{Endpoint, EndpointConfig, WorkerProvider};
pub use error::FaasError;
pub use exec::{CommandRegistry, ExecOutcome, SiteRuntime, TaskEnv};
pub use function::{Function, FunctionBody, FunctionId};
pub use mep::{MepTemplate, MultiUserEndpoint};
pub use task::{Task, TaskId, TaskOutput, TaskState};
