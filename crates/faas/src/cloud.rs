//! The cloud service: the single contact point of the federation.
//!
//! "The cloud service provides a single contact point via which functions
//! can be registered and submitted for execution. … When a task completes,
//! the endpoint returns the result, or exception, to the cloud service for
//! users to later retrieve" (§5.1).

use crate::endpoint::Endpoint;
use crate::error::FaasError;
use crate::function::{Function, FunctionBody, FunctionId};
use crate::mep::MultiUserEndpoint;
use crate::task::{Task, TaskId, TaskOutput, TaskState};
use hpcci_auth::{AuthService, Identity, Scope};
use hpcci_obs::Obs;
use hpcci_sim::{
    Advance, DomainPlan, DomainStats, EventQueue, FaultInjector, Lookahead, NextEventCache,
    SimDuration, SimTime, Sym, Trace, Window,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

mod parallel;

/// Endpoint identifier (the "endpoint UUID" of the action inputs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub String);

impl std::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::borrow::Borrow<str> for EndpointId {
    /// Lets `BTreeMap<EndpointId, _>` be queried by `&str` — the wire-event
    /// hot path resolves a task's endpoint name without cloning it into a
    /// fresh `EndpointId` first.
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A registered endpoint: single-user or multi-user.
pub enum EndpointRegistration {
    Single(Box<Endpoint>),
    Multi(Box<MultiUserEndpoint>),
}

impl EndpointRegistration {
    fn wan_latency(&self) -> hpcci_sim::SimDuration {
        match self {
            EndpointRegistration::Single(e) => e.wan_latency(),
            EndpointRegistration::Multi(m) => m.wan_latency(),
        }
    }

    fn function_allowed(&self, f: FunctionId) -> bool {
        match self {
            EndpointRegistration::Single(e) => e.function_allowed(f),
            EndpointRegistration::Multi(m) => m.function_allowed(f),
        }
    }

    fn shell_allowed(&self) -> bool {
        match self {
            EndpointRegistration::Single(e) => e.shell_allowed(),
            EndpointRegistration::Multi(m) => m.shell_allowed(),
        }
    }

    fn has_injector(&self) -> bool {
        match self {
            EndpointRegistration::Single(e) => e.has_injector(),
            EndpointRegistration::Multi(m) => m.has_injector(),
        }
    }

    fn shares_scheduler(&self) -> bool {
        match self {
            EndpointRegistration::Single(e) => e.shares_scheduler(),
            EndpointRegistration::Multi(m) => m.shares_scheduler(),
        }
    }

    fn next_event(&self) -> Option<SimTime> {
        match self {
            EndpointRegistration::Single(e) => e.next_event(),
            EndpointRegistration::Multi(m) => m.next_event(),
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        match self {
            EndpointRegistration::Single(e) => e.advance_to(t),
            EndpointRegistration::Multi(m) => m.advance_to(t),
        }
    }

    fn take_finished(&mut self) -> Vec<(TaskId, TaskOutput)> {
        match self {
            EndpointRegistration::Single(e) => e.take_finished(),
            EndpointRegistration::Multi(m) => m.take_finished(),
        }
    }

    fn drain_finished_into(&mut self, out: &mut Vec<(TaskId, TaskOutput)>) {
        match self {
            EndpointRegistration::Single(e) => e.drain_finished_into(out),
            EndpointRegistration::Multi(m) => m.drain_finished_into(out),
        }
    }

    /// Put back outputs that a parallel window drained but whose collection
    /// instant lies beyond the window — the serial loop would have left them
    /// sitting in the endpoint's buffer.
    fn restore_finished(&mut self, items: &mut Vec<(TaskId, TaskOutput)>) {
        match self {
            EndpointRegistration::Single(e) => e.restore_finished(items),
            EndpointRegistration::Multi(m) => m.restore_finished(items),
        }
    }

    /// Affinity key for domain partitioning: endpoints sharing a site (one
    /// filesystem, one command registry, one scheduler) must co-locate. The
    /// key value is the shared site's address — only *equality* of keys is
    /// ever used, so the layout stays deterministic (groups are numbered by
    /// first appearance in slot order, see [`DomainPlan::partition`]).
    fn site_key(&self) -> u64 {
        let site = match self {
            EndpointRegistration::Single(e) => e.site(),
            EndpointRegistration::Multi(m) => m.site(),
        };
        Arc::as_ptr(site) as usize as u64
    }
}

enum InFlight {
    /// A scheduled future submission (see [`CloudService::submit_shell_at`]):
    /// validated up front, accepted — task id, `task.submit` trace record,
    /// delivery leg — when its arrival instant is reached, so ids stay dense
    /// in arrival order no matter how far ahead callers schedule.
    ///
    /// Validation resolved the endpoint to its slot and interned the command,
    /// so a wave of scheduled arrivals shares one `Arc<Identity>` and one
    /// command allocation instead of cloning strings per arrival.
    Submit {
        identity: Arc<Identity>,
        slot: usize,
        command: Sym,
    },
    Deliver {
        task: TaskId,
        identity: Arc<Identity>,
        slot: usize,
    },
    Return {
        task: TaskId,
        output: TaskOutput,
    },
}

/// Maximum bytes of a task's args or result payload. The paper notes Globus
/// Compute payload limits (§7.4); 10 MB matches its order of magnitude.
pub const PAYLOAD_LIMIT: usize = 10 * 1024 * 1024;

/// The FaaS cloud service.
pub struct CloudService {
    auth: Arc<Mutex<AuthService>>,
    functions: BTreeMap<FunctionId, Function>,
    /// Registered endpoints, indexed by cache slot. Name lookups go through
    /// `slots`; ordered walks go through `ordered_slots`. Slot-indexed so
    /// the hot loop reaches an endpoint with one bounds check instead of a
    /// string-keyed tree descent.
    endpoints: Vec<EndpointRegistration>,
    /// All tasks ever accepted, indexed by `TaskId` (ids are assigned
    /// sequentially from 1 and never removed, so `tasks[id - 1]` replaces a
    /// per-wire-event string of tree descents).
    tasks: Vec<Task>,
    wire: EventQueue<InFlight>,
    pub trace: Trace,
    now: SimTime,
    next_task: u64,
    next_function: u64,
    injector: Option<FaultInjector>,
    /// Indexed event dispatch over registered endpoints: each step only
    /// re-probes endpoints the cloud touched (plus volatile pilot-job ones)
    /// and only advances endpoints with a due event.
    cache: NextEventCache,
    /// Endpoint id → cache slot.
    slots: BTreeMap<EndpointId, usize>,
    /// Cache slot → endpoint id.
    slot_ids: Vec<EndpointId>,
    /// Cache slot → interned `faas.ep.{id}` trace component.
    slot_syms: Vec<Sym>,
    /// Cache slot → interned plain endpoint name (shared by every task
    /// record targeting the endpoint).
    slot_name_syms: Vec<Sym>,
    /// Slots in endpoint-name order — the order the pre-index exhaustive
    /// scan advanced and collected endpoints in. Rebuilt on registration.
    ordered_slots: Vec<usize>,
    /// Slot → position in `ordered_slots`: lets the hot loop order due/
    /// touched slot lists by comparing integers instead of endpoint names.
    slot_rank: Vec<usize>,
    /// Scratch: due slots of the current step, reused across steps.
    due_scratch: Vec<usize>,
    /// Slots touched (advanced or enqueued-into) since their finished
    /// outputs were last collected.
    touched: Vec<usize>,
    /// Scratch: due wire events of the current step, reused across steps.
    wire_scratch: Vec<(SimTime, InFlight)>,
    /// Scratch: finished outputs drained from one endpoint, reused across
    /// steps so collection allocates nothing in steady state.
    finished_scratch: Vec<(TaskId, TaskOutput)>,
    /// Any fault injector present (cloud's own or an endpoint's)? If so the
    /// exhaustive advance path is used so fault consult boundaries — which
    /// fire at the first consult at/after their scheduled time — never move.
    fault_aware: bool,
    /// An `endpoint_mut` borrow escaped; re-evaluate `fault_aware` before
    /// the next advance.
    recheck_faults: bool,
    /// Observability handle, propagated to endpoints at registration.
    obs: Obs,
    /// Hot-loop counters kept as plain fields (no lock, no branch beyond the
    /// add) and harvested into `obs` by [`Self::harvest_metrics`].
    tasks_submitted: u64,
    tasks_completed: u64,
    events_dispatched: u64,
    /// Scheduled-but-not-yet-accepted [`InFlight::Submit`] events. A pending
    /// submission mutates global state (task table, id counter) when it
    /// fires, so parallel windows are deferred until the backlog drains.
    pending_submits: u64,
    /// Worker-thread budget for conservative parallel windows; 1 = serial.
    workers: usize,
    /// Cached lookahead-domain partition (invalidated on registration and on
    /// `endpoint_mut` escapes, rebuilt lazily by [`Self::ensure_domain_plan`]).
    domain_plan: Option<DomainPlan>,
    /// Folded lookahead across every endpoint, cached beside the plan.
    domain_lookahead: Lookahead,
    /// Barrier/stall/fallback counters for the parallel drive.
    domain_stats: DomainStats,
    /// Adaptive min-work gate for parallel windows, re-derived per pooled
    /// window from the measured coordinator overhead (starts at
    /// [`PARALLEL_MIN_WIRE`]). Steers only the serial/parallel *choice*,
    /// never the committed bytes.
    min_wire: usize,
    /// Adaptive pooled-window span (virtual µs), steered toward a target
    /// committed-events-per-window batch size.
    window_span_us: u64,
    /// EWMA of per-window coordinator overhead (extraction + dispatch +
    /// state-commit, excluding the barrier wait), wall nanoseconds.
    window_overhead_ns: u64,
    /// Threads spawned by pooled drains (domain workers + merge workers).
    /// One pool per drain: this stays at `domains + 1` per drain no matter
    /// how many windows run.
    pool_spawns: u64,
    /// High-water mark of trace-replay batches in flight on the merge
    /// worker while the coordinator kept running.
    pipeline_depth_max: u64,
    /// Trace handbacks that had to wait on an unfinished replay batch.
    merge_stalls: u64,
}

/// Initial value of the adaptive min-work gate: below this many pending
/// wire events a window is advanced serially, until a measured per-window
/// overhead refines the break-even point (clamped to [8, 256]). The
/// persistent pool cut per-window cost enough to start at 16 where the
/// spawn-per-window engine needed 64.
const PARALLEL_MIN_WIRE: usize = 16;

impl CloudService {
    pub fn new(auth: Arc<Mutex<AuthService>>) -> Self {
        CloudService {
            auth,
            functions: BTreeMap::new(),
            endpoints: Vec::new(),
            tasks: Vec::new(),
            wire: EventQueue::new(),
            trace: Trace::new(),
            now: SimTime::ZERO,
            next_task: 0,
            next_function: 0,
            injector: None,
            cache: NextEventCache::new(),
            slots: BTreeMap::new(),
            slot_ids: Vec::new(),
            slot_syms: Vec::new(),
            slot_name_syms: Vec::new(),
            ordered_slots: Vec::new(),
            slot_rank: Vec::new(),
            due_scratch: Vec::new(),
            touched: Vec::new(),
            wire_scratch: Vec::new(),
            finished_scratch: Vec::new(),
            fault_aware: false,
            recheck_faults: false,
            obs: Obs::disabled(),
            pending_submits: 0,
            tasks_submitted: 0,
            tasks_completed: 0,
            events_dispatched: 0,
            workers: 1,
            domain_plan: None,
            domain_lookahead: Lookahead::zero(),
            domain_stats: DomainStats::default(),
            min_wire: PARALLEL_MIN_WIRE,
            window_span_us: parallel::WINDOW_SPAN_INIT_US,
            window_overhead_ns: 0,
            pool_spawns: 0,
            pipeline_depth_max: 0,
            merge_stalls: 0,
        }
    }

    /// Set the worker-thread budget for conservative parallel windows.
    /// `1` (the default) keeps the fully serial loop. Any width produces a
    /// committed trace byte-identical to the serial one; federations with
    /// fault injectors or shared batch schedulers fall back to serial
    /// automatically.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
        self.domain_plan = None;
    }

    /// The configured parallel worker budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Counters describing the parallel drive so far.
    pub fn domain_stats(&self) -> &DomainStats {
        &self.domain_stats
    }

    /// Threads spawned by pooled drains so far: `domains + 1` (the merge
    /// worker) per drain that ran at least one pooled window — never per
    /// window. Run-dependent only in *when* pools were warranted, not in
    /// any committed byte.
    pub fn pool_spawns(&self) -> u64 {
        self.pool_spawns
    }

    /// High-water mark of deferred trace-replay batches in flight on the
    /// merge worker while the coordinator kept extracting/committing.
    /// `>= 1` means the pipeline actually overlapped. Wall-dependent.
    pub fn pipeline_depth_max(&self) -> u64 {
        self.pipeline_depth_max
    }

    /// Trace handbacks that found the merge worker still applying a batch
    /// (the coordinator had to stall). Wall-dependent.
    pub fn merge_stalls(&self) -> u64 {
        self.merge_stalls
    }

    /// EWMA of measured per-window coordinator overhead in wall
    /// nanoseconds (extraction + dispatch + state-commit, excluding the
    /// barrier wait). Zero until a pooled window has run. Wall-dependent.
    pub fn window_overhead_ns(&self) -> u64 {
        self.window_overhead_ns
    }

    /// Current value of the adaptive min-work gate: windows with fewer
    /// pending wire events than this advance serially. Starts at 16 and is
    /// re-derived from [`Self::window_overhead_ns`] after every pooled
    /// window. Wall-dependent, but digest-neutral: it only picks *which*
    /// engine advances a window, and both commit identical bytes.
    pub fn parallel_min_wire(&self) -> usize {
        self.min_wire
    }

    /// Number of lookahead domains the current federation partitions into
    /// under the configured worker budget. A zero-lookahead federation (any
    /// endpoint coupled through a shared batch scheduler) degrades to one
    /// domain regardless of the budget.
    pub fn domain_count(&mut self) -> usize {
        self.ensure_domain_plan();
        self.domain_plan.as_ref().map_or(1, |p| p.len().max(1))
    }

    /// Build (or reuse) the lookahead-domain partition: group endpoint slots
    /// by shared site, fold the per-endpoint lookahead, and collapse to one
    /// domain when any link has no delay floor.
    fn ensure_domain_plan(&mut self) {
        if self.domain_plan.is_some() {
            return;
        }
        let mut lookahead: Option<Lookahead> = None;
        for ep in &self.endpoints {
            let la = if ep.shares_scheduler() {
                Lookahead::zero()
            } else {
                Lookahead::wire(ep.wan_latency())
            };
            lookahead = Some(lookahead.map_or(la, |acc| acc.fold(la)));
        }
        let lookahead = lookahead.unwrap_or_else(Lookahead::zero);
        let plan = if lookahead.zero_coupled {
            DomainPlan::partition(&self.ordered_slots, 1, |_| 0)
        } else {
            let endpoints = &self.endpoints;
            DomainPlan::partition(&self.ordered_slots, self.workers, |slot| {
                endpoints[slot].site_key()
            })
        };
        self.domain_lookahead = lookahead;
        self.domain_plan = Some(plan);
    }

    /// Static eligibility for parallel windows: a worker budget, no fault
    /// injector anywhere (consult boundaries move under partitioning), and
    /// at least two domains under positive lookahead.
    fn parallel_static_ok(&mut self) -> bool {
        if self.workers <= 1 || self.fault_aware {
            return false;
        }
        self.ensure_domain_plan();
        !self.domain_lookahead.zero_coupled
            && self.domain_plan.as_ref().is_some_and(|p| p.len() >= 2)
    }

    /// Dynamic eligibility for one window `[now, t]`: enough committed wire
    /// events to amortize the per-window overhead (an adaptive gate, see
    /// `adapt_window`), and a horizon that actually admits parallel
    /// progress. Pending scheduled submissions are fine *when the folded
    /// lookahead is positive*: each submit's induced delivery then lands
    /// strictly after its arrival instant, so the coordinator pre-routes the
    /// wave at extraction and replays acceptance — ids dense in arrival
    /// order — at the barrier. Under zero `min_inbound` the induced leg
    /// could land at the submit's own instant, which the one-generation
    /// instant walk cannot order, so those windows stay serial.
    fn parallel_window_ok(&self, t: SimTime) -> bool {
        (self.pending_submits == 0 || self.domain_lookahead.min_inbound > SimDuration::ZERO)
            && self.wire.len() >= self.min_wire
            && Window::new(self.now, t).admits_parallelism(self.domain_lookahead)
    }

    /// Run the event loop to quiescence — until neither the wire nor any
    /// endpoint holds a pending event — using pooled, pipelined parallel
    /// windows whenever the federation and remaining work admit them.
    /// Leaves `now` at the last committed instant (like the serial step
    /// loop it replaces), and produces a committed trace byte-identical to
    /// that loop's at any worker width.
    pub fn drain_to_quiescence(&mut self) -> SimTime {
        // Fault posture cannot change mid-drain (`endpoint_mut` escapes need
        // `&mut self` back), so resolve it once up front.
        if self.recheck_faults {
            self.recheck_faults = false;
            self.fault_aware =
                self.injector.is_some() || self.endpoints.iter().any(|ep| ep.has_injector());
        }
        if self.parallel_static_ok() {
            return self.drain_pooled();
        }
        while self.step_next(SimTime::FAR_FUTURE).is_some() {}
        self.now
    }

    /// Attach a fault injector. The cloud consults it for WAN partitions on
    /// both wire legs; an empty plan leaves every delivery time untouched.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
        self.fault_aware = true;
    }

    /// Attach an observability handle. Propagates to every endpoint already
    /// registered and to every endpoint registered afterwards. Recording is
    /// sim-time only and never feeds back into timing, so traces are
    /// unchanged whether the handle is enabled or disabled.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        for registration in self.endpoints.iter_mut() {
            match registration {
                EndpointRegistration::Single(e) => e.set_obs(self.obs.clone()),
                EndpointRegistration::Multi(m) => m.set_obs(self.obs.clone()),
            }
        }
    }

    /// The cloud's observability handle (disabled unless [`Self::set_obs`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Harvest hot-loop counters (kept as plain fields while the event loop
    /// runs) plus dispatch-cache effectiveness into the obs registry.
    pub fn harvest_metrics(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.set_counter("faas.tasks_submitted", self.tasks_submitted);
        self.obs.set_counter("faas.tasks_completed", self.tasks_completed);
        self.obs.set_counter("sim.events_dispatched", self.events_dispatched);
        let stats = self.cache.stats();
        self.obs.set_counter("sim.cache_refreshes", stats.refreshes);
        self.obs.set_counter("sim.cache_refresh_hot_hits", stats.hot_hits);
        self.obs.set_counter("sim.cache_probes", stats.probes);
        self.obs.set_counter("sim.cache_volatile_probes", stats.volatile_probes);
        if self.workers > 1 {
            self.obs.set_counter("sim.domain_barriers", self.domain_stats.barriers);
            self.obs.set_counter("sim.domain_stalls", self.domain_stats.stalls);
            self.obs
                .set_counter("sim.domain_serial_fallbacks", self.domain_stats.serial_fallbacks);
        }
    }

    /// Earliest instant a message can cross the WAN towards/from `endpoint`:
    /// `now` normally, or the partition's heal time while one is active.
    fn wire_clear_at(&self, endpoint: &str, now: SimTime) -> SimTime {
        match &self.injector {
            Some(inj) => inj.partition_until(endpoint, now).unwrap_or(now).max(now),
            None => now,
        }
    }

    pub fn auth(&self) -> &Arc<Mutex<AuthService>> {
        &self.auth
    }

    /// Register an endpoint under a name.
    pub fn register_endpoint(&mut self, id: &str, mut registration: EndpointRegistration) -> EndpointId {
        let eid = EndpointId(id.to_string());
        if self.obs.is_enabled() {
            match &mut registration {
                EndpointRegistration::Single(e) => e.set_obs(self.obs.clone()),
                EndpointRegistration::Multi(m) => m.set_obs(self.obs.clone()),
            }
        }
        self.fault_aware |= registration.has_injector();
        let volatile = registration.shares_scheduler();
        let slot = match self.slots.get(&eid) {
            Some(&slot) => slot,
            None => {
                let slot = self.cache.register();
                self.slot_ids.push(eid.clone());
                self.slot_syms.push(self.trace.intern(&format!("faas.ep.{id}")));
                self.slot_name_syms.push(self.trace.intern(id));
                self.slots.insert(eid.clone(), slot);
                // A new name shifts ranks: rebuild the name-order walk list
                // (registration is rare; the hot loop only reads these).
                self.ordered_slots = self.slots.values().copied().collect();
                self.slot_rank = vec![0; self.slot_ids.len()];
                for (rank, &s) in self.ordered_slots.iter().enumerate() {
                    self.slot_rank[s] = rank;
                }
                slot
            }
        };
        self.cache.set_volatile(slot, volatile);
        self.cache.mark_dirty(slot);
        if slot == self.endpoints.len() {
            self.endpoints.push(registration);
        } else {
            self.endpoints[slot] = registration;
        }
        // A new/replaced endpoint changes the affinity layout.
        self.domain_plan = None;
        eid
    }

    pub fn endpoint_mut(&mut self, id: &EndpointId) -> Result<&mut EndpointRegistration, FaasError> {
        let Some(&slot) = self.slots.get(id) else {
            return Err(FaasError::UnknownEndpoint(id.0.clone()));
        };
        // The borrow may change anything about the endpoint — including
        // attaching a fault injector — so invalidate its cached time,
        // queue it for output collection, and recheck fault-awareness
        // before the next advance.
        self.cache.mark_dirty(slot);
        self.touched.push(slot);
        self.recheck_faults = true;
        self.domain_plan = None;
        Ok(&mut self.endpoints[slot])
    }

    /// Register a function owned by the token's identity.
    pub fn register_function(
        &mut self,
        token: &hpcci_auth::AccessToken,
        name: &str,
        body: FunctionBody,
        now: SimTime,
    ) -> Result<FunctionId, FaasError> {
        let info = self
            .auth
            .lock()
            .require_scope(token, &Scope::compute_api(), now)?;
        self.next_function += 1;
        let id = FunctionId(self.next_function);
        self.functions.insert(
            id,
            Function {
                id,
                name: name.to_string(),
                owner: info.identity,
                body,
            },
        );
        self.trace
            .record(now, "faas.cloud", "function.register", format!("{id} {name}"));
        Ok(id)
    }

    pub fn function(&self, id: FunctionId) -> Result<&Function, FaasError> {
        self.functions.get(&id).ok_or(FaasError::UnknownFunction(id))
    }

    /// Submit an ad-hoc shell command (the action's `shell_cmd` input).
    pub fn submit_shell(
        &mut self,
        token: &hpcci_auth::AccessToken,
        endpoint: &EndpointId,
        shell_cmd: &str,
        now: SimTime,
    ) -> Result<TaskId, FaasError> {
        let (identity, slot) = self.validate_shell(token, endpoint, shell_cmd, now)?;
        let command = self.trace.intern(shell_cmd);
        Ok(self.accept(&Arc::new(identity), slot, command, now))
    }

    /// Schedule a shell submission for a future arrival instant. Validation
    /// (auth, endpoint, payload, ownership) happens now, at `now`; acceptance
    /// — task id, `task.submit` record, delivery leg — happens when the event
    /// loop reaches `submit_at`, so ids and the trace stay in arrival order.
    /// The workhorse behind [`Self::submit_shell_batch`]; prefer the batch
    /// form when injecting many arrivals for one identity.
    pub fn submit_shell_at(
        &mut self,
        token: &hpcci_auth::AccessToken,
        endpoint: &EndpointId,
        shell_cmd: &str,
        now: SimTime,
        submit_at: SimTime,
    ) -> Result<(), FaasError> {
        let (identity, slot) = self.validate_shell(token, endpoint, shell_cmd, now)?;
        let command = self.trace.intern(shell_cmd);
        self.push_submit(Arc::new(identity), slot, command, now, submit_at);
        Ok(())
    }

    /// Batched arrival injection: validate once, then schedule one submission
    /// of `shell_cmd` per instant in `arrivals`. This is the workload
    /// engine's path into the cloud — a wave of tens of thousands of arrivals
    /// costs one auth check and one wheel push per arrival, not a full
    /// validation stack each. Returns the number of submissions scheduled.
    pub fn submit_shell_batch(
        &mut self,
        token: &hpcci_auth::AccessToken,
        endpoint: &EndpointId,
        shell_cmd: &str,
        now: SimTime,
        arrivals: &[SimTime],
    ) -> Result<u64, FaasError> {
        let (identity, slot) = self.validate_shell(token, endpoint, shell_cmd, now)?;
        let identity = Arc::new(identity);
        let command = self.trace.intern(shell_cmd);
        for &at in arrivals {
            self.push_submit(identity.clone(), slot, command.clone(), now, at);
        }
        Ok(arrivals.len() as u64)
    }

    /// The validation stack of [`Self::submit_shell`], factored out so the
    /// scheduled-submission paths run exactly the same checks.
    fn validate_shell(
        &mut self,
        token: &hpcci_auth::AccessToken,
        endpoint: &EndpointId,
        shell_cmd: &str,
        now: SimTime,
    ) -> Result<(Identity, usize), FaasError> {
        let identity = self.authenticate(token, now)?;
        let slot = *self
            .slots
            .get(endpoint)
            .ok_or_else(|| FaasError::UnknownEndpoint(endpoint.0.clone()))?;
        let ep = &self.endpoints[slot];
        if !ep.shell_allowed() {
            return Err(FaasError::ShellNotAllowed);
        }
        self.check_payload(shell_cmd.len())?;
        self.check_owner(ep, &identity)?;
        Ok((identity, slot))
    }

    fn push_submit(
        &mut self,
        identity: Arc<Identity>,
        slot: usize,
        command: Sym,
        now: SimTime,
        submit_at: SimTime,
    ) {
        self.pending_submits += 1;
        self.wire.push(
            submit_at.max(now),
            InFlight::Submit {
                identity,
                slot,
                command,
            },
        );
    }

    /// Scheduled submissions not yet accepted by the event loop.
    pub fn pending_submits(&self) -> u64 {
        self.pending_submits
    }

    /// Submit a pre-registered function (the action's `function_uuid` input).
    pub fn submit_function(
        &mut self,
        token: &hpcci_auth::AccessToken,
        endpoint: &EndpointId,
        function: FunctionId,
        args: &str,
        now: SimTime,
    ) -> Result<TaskId, FaasError> {
        let identity = self.authenticate(token, now)?;
        let f = self.function(function)?.clone();
        let slot = *self
            .slots
            .get(endpoint)
            .ok_or_else(|| FaasError::UnknownEndpoint(endpoint.0.clone()))?;
        let ep = &self.endpoints[slot];
        if !ep.function_allowed(function) {
            return Err(FaasError::FunctionNotAllowed(function));
        }
        self.check_payload(args.len())?;
        self.check_owner(ep, &identity)?;
        let command = self.trace.intern(&f.command_line(args));
        Ok(self.accept(&Arc::new(identity), slot, command, now))
    }

    fn authenticate(
        &mut self,
        token: &hpcci_auth::AccessToken,
        now: SimTime,
    ) -> Result<Identity, FaasError> {
        let auth = self.auth.lock();
        let info = auth.require_scope(token, &Scope::compute_api(), now)?;
        Ok(auth.identity(info.identity)?.clone())
    }

    fn check_payload(&self, bytes: usize) -> Result<(), FaasError> {
        if bytes > PAYLOAD_LIMIT {
            return Err(FaasError::PayloadTooLarge {
                bytes,
                limit: PAYLOAD_LIMIT,
            });
        }
        Ok(())
    }

    fn check_owner(&self, ep: &EndpointRegistration, identity: &Identity) -> Result<(), FaasError> {
        if let EndpointRegistration::Single(e) = ep {
            if e.config.owner != identity.id {
                return Err(FaasError::NotEndpointOwner);
            }
            e.config.ha_policy.check(identity, self.now)?;
        }
        Ok(())
    }

    fn accept(
        &mut self,
        identity: &Arc<Identity>,
        slot: usize,
        command: Sym,
        now: SimTime,
    ) -> TaskId {
        self.next_task += 1;
        self.tasks_submitted += 1;
        let id = TaskId(self.next_task);
        debug_assert_eq!(id.0 as usize, self.tasks.len() + 1, "ids are dense");
        let endpoint_name = self.slot_name_syms[slot].clone();
        self.tasks.push(Task {
            id,
            submitter: identity.id,
            endpoint: endpoint_name,
            command: command.clone(),
            submitted_at: now,
            state: TaskState::Submitted { at: now },
        });
        let latency = self.endpoints[slot].wan_latency();
        let endpoint_name = &self.slot_name_syms[slot];
        // `{id} -> {endpoint}: {command}`, hand-built: byte-identical to the
        // `format!` it replaces, without per-field formatter dispatch. The
        // buffer is recycled from a folded-out event when one is available.
        let mut detail = self.trace.detail_buf();
        detail.reserve(27 + endpoint_name.len() + command.len());
        id.write_label(&mut detail);
        detail.push_str(" -> ");
        detail.push_str(endpoint_name);
        detail.push_str(": ");
        detail.push_str(&command);
        self.trace.record(now, "faas.cloud", "task.submit", detail);
        let clear = self.wire_clear_at(self.slot_name_syms[slot].as_str(), now);
        self.wire.push(
            clear + latency,
            InFlight::Deliver {
                task: id,
                identity: identity.clone(),
                slot,
            },
        );
        id
    }

    /// The task record for `id`, if it was ever accepted.
    fn task(&self, id: TaskId) -> Option<&Task> {
        // Ids are dense from 1; `TaskId(0)` wraps to an out-of-range index.
        self.tasks.get((id.0 as usize).wrapping_sub(1))
    }

    /// Current state of a task.
    pub fn task_state(&self, id: TaskId) -> Result<&TaskState, FaasError> {
        Ok(&self.task(id).ok_or(FaasError::UnknownTask(id))?.state)
    }

    /// The result of a finished task.
    pub fn task_result(&self, id: TaskId) -> Result<&TaskOutput, FaasError> {
        match self.task_state(id)? {
            TaskState::Done(out) => Ok(out),
            TaskState::Rejected { reason, .. } => Err(FaasError::Auth(
                hpcci_auth::AuthError::PolicyViolation(reason.clone()),
            )),
            _ => Err(FaasError::NotFinished(id)),
        }
    }

    /// Is the task terminal?
    pub fn task_finished(&self, id: TaskId) -> Result<bool, FaasError> {
        Ok(self.task_state(id)?.is_terminal())
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Events dispatched by this cloud's event loop so far (also exported as
    /// the `sim.events_dispatched` counter when observability is on).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Collect finished outputs from every endpoint onto the return wire
    /// (exhaustive path, used when fault injection is active).
    fn collect_returns(&mut self, now: SimTime) {
        let mut returns: Vec<(TaskId, TaskOutput, String, hpcci_sim::SimDuration)> = Vec::new();
        for &slot in &self.ordered_slots {
            let ep = &mut self.endpoints[slot];
            let latency = ep.wan_latency();
            for (task, output) in ep.take_finished() {
                returns.push((task, output, self.slot_ids[slot].0.clone(), latency));
            }
        }
        for (task, output, endpoint, latency) in returns {
            self.trace.record(
                now,
                "faas.cloud",
                "task.returning",
                {
                    let mut d = String::with_capacity(35);
                    task.write_label(&mut d);
                    d.push_str(" from endpoint");
                    d
                },
            );
            let clear = self.wire_clear_at(&endpoint, now);
            self.wire.push(clear + latency, InFlight::Return { task, output });
        }
    }

    /// Collect finished outputs from endpoints touched since the last
    /// collection. Injector-free, an endpoint's `finished` buffer can only be
    /// non-empty if the cloud advanced it or enqueued into it, so skipping
    /// untouched endpoints observes exactly what the exhaustive scan would.
    fn collect_touched_returns(&mut self, now: SimTime) {
        if self.touched.is_empty() {
            return;
        }
        // Endpoint-name order: the order the exhaustive scan collected in.
        {
            let rank = &self.slot_rank;
            self.touched.sort_unstable_by_key(|&s| rank[s]);
        }
        self.touched.dedup();
        // Per-endpoint drain through a reused scratch vector: same record and
        // wire-push order as the exhaustive scan (endpoint-name order, FIFO
        // within an endpoint), but no per-step vector allocations.
        let mut finished = std::mem::take(&mut self.finished_scratch);
        for i in 0..self.touched.len() {
            let ep = &mut self.endpoints[self.touched[i]];
            ep.drain_finished_into(&mut finished);
            if finished.is_empty() {
                continue;
            }
            let latency = ep.wan_latency();
            for (task, output) in finished.drain(..) {
                let mut d = self.trace.detail_buf();
                task.write_label(&mut d);
                d.push_str(" from endpoint");
                self.trace.record(now, "faas.cloud", "task.returning", d);
                // No injector on this path: the wire is never partitioned.
                self.wire.push(now + latency, InFlight::Return { task, output });
            }
        }
        self.touched.clear();
        self.finished_scratch = finished;
    }

    /// Handle one due wire event (shared by both advance paths).
    fn handle_wire_event(&mut self, at: SimTime, event: InFlight) {
        match event {
            InFlight::Submit { identity, slot, command } => {
                // Acceptance pushes the delivery leg at `at + wan_latency`;
                // with a zero-latency endpoint that lands at this same
                // instant and the drive loop picks it up on its next pass
                // through the same step, before any later-time event.
                self.pending_submits -= 1;
                self.accept(&identity, slot, command, at);
            }
            InFlight::Deliver { task, identity, slot } => {
                // The slot rode along from acceptance (registrations are
                // never removed), so delivery needs no name lookup; the
                // command is shared with the task record.
                let component = self.slot_syms[slot].clone();
                let command = self.tasks[task.0 as usize - 1].command.clone();
                let mut detail = self.trace.detail_buf();
                task.write_label(&mut detail);
                self.trace
                    .record(at, component.clone(), "task.deliver", detail);
                let result = match &mut self.endpoints[slot] {
                    EndpointRegistration::Single(e) => e.enqueue(task, &command, at),
                    EndpointRegistration::Multi(m) => m.enqueue(task, &identity, &command, at),
                };
                self.cache.mark_dirty(slot);
                if !self.fault_aware {
                    self.touched.push(slot);
                }
                let record = &mut self.tasks[task.0 as usize - 1];
                let transition = match result {
                    Ok(()) => record.transition(TaskState::QueuedAtEndpoint { at }),
                    Err(e) => {
                        self.trace
                            .record(at, component, "task.reject", format!("{task}: {e}"));
                        record.transition(TaskState::Rejected {
                            at,
                            reason: e.to_string(),
                        })
                    }
                };
                if let Err(e) = transition {
                    self.trace
                        .record(at, "faas.cloud", "task.transition-blocked", e.to_string());
                }
            }
            InFlight::Return { task, output } => {
                // `{task} ran_as={} node={} ok={}`, hand-built (see
                // `TaskId::write_label`); byte-identical to the `format!`.
                let mut detail = self.trace.detail_buf();
                detail.reserve(42 + output.ran_as.len() + output.node.len());
                task.write_label(&mut detail);
                detail.push_str(" ran_as=");
                detail.push_str(&output.ran_as);
                detail.push_str(" node=");
                detail.push_str(&output.node);
                detail.push_str(if output.success() { " ok=true" } else { " ok=false" });
                let record = &mut self.tasks[task.0 as usize - 1];
                let submitted_at = record.submitted_at;
                match record.transition(TaskState::Done(output)) {
                    Ok(()) => {
                        self.tasks_completed += 1;
                        self.obs
                            .observe("faas.task_latency_us", at.since(submitted_at).as_micros());
                        self.trace.record(at, "faas.cloud", "task.done", detail)
                    }
                    Err(e) => self.trace.record(
                        at,
                        "faas.cloud",
                        "task.transition-blocked",
                        e.to_string(),
                    ),
                }
            }
        }
    }

    /// Exhaustive advance: probe and advance every endpoint at every step.
    /// Used whenever a fault injector is in play, because injected faults
    /// fire at the first consult at/after their scheduled time — skipping a
    /// "quiescent" endpoint would move its consult boundary and change which
    /// instant a fault lands on.
    fn advance_all_to(&mut self, t: SimTime) {
        loop {
            let wire_next = self.wire.next_time();
            let ep_next = self.endpoints.iter().filter_map(|ep| ep.next_event()).min();
            let step = match (wire_next, ep_next) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if step > t {
                break;
            }
            self.now = step;
            self.events_dispatched += self.endpoints.len() as u64;
            for &slot in &self.ordered_slots {
                self.endpoints[slot].advance_to(step);
            }
            self.collect_returns(step);
            while let Some((at, event)) = self.wire.pop_due(step) {
                self.events_dispatched += 1;
                self.handle_wire_event(at, event);
            }
        }
        self.now = t;
    }

    /// Re-probe dirty (and volatile) endpoint slots.
    fn refresh_cache(&mut self) {
        let endpoints = &self.endpoints;
        self.cache.refresh(|slot| endpoints[slot].next_event());
    }
}

impl Advance for CloudService {
    fn next_event(&self) -> Option<SimTime> {
        if self.fault_aware || self.recheck_faults || self.cache.any_dirty() {
            // Exhaustive probe: fault injection active, or the cache has
            // pending invalidations only an `&mut` advance may flush.
            let mut next = self.wire.next_time();
            for ep in self.endpoints.iter() {
                if let Some(t) = ep.next_event() {
                    next = Some(next.map_or(t, |x| x.min(t)));
                }
            }
            return next;
        }
        // Indexed probe: O(endpoints) scan of cached times plus fresh probes
        // of the (few) volatile pilot-job endpoints — no deep walks into
        // quiescent endpoints' queues, sites, or providers.
        let mut next = self.wire.next_time();
        if let Some(t) = self.cache.min_stable() {
            next = Some(next.map_or(t, |x| x.min(t)));
        }
        for &slot in self.cache.volatile_slots() {
            if let Some(t) = self.endpoints[slot].next_event() {
                next = Some(next.map_or(t, |x| x.min(t)));
            }
        }
        next
    }

    /// One step of the drive loop through a `&mut` entry point: refresh the
    /// dispatch cache once and reuse it for both the probe and the advance.
    ///
    /// The read-only [`Advance::next_event`] cannot flush pending dirty bits,
    /// so after any advance it must fall back to the exhaustive deep scan of
    /// every endpoint. Driving via `step_next` instead makes the steady-state
    /// cost per step `O(due endpoints)` probes, not `O(all endpoints)` walks.
    fn step_next(&mut self, deadline: SimTime) -> Option<SimTime> {
        if self.fault_aware || self.recheck_faults {
            // Fault injection in play (or undecided): keep the exhaustive
            // probe — faults fire at consult boundaries, so every endpoint
            // must be consulted at every step.
            let next = self.next_event()?;
            if next > deadline {
                return None;
            }
            self.advance_to(next);
            return Some(next);
        }
        self.refresh_cache();
        let step = match (self.wire.next_time(), self.cache.min()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        if step > deadline {
            return None;
        }
        self.advance_to(step);
        Some(step)
    }

    fn advance_to(&mut self, t: SimTime) {
        if self.recheck_faults {
            self.recheck_faults = false;
            self.fault_aware =
                self.injector.is_some() || self.endpoints.iter().any(|ep| ep.has_injector());
        }
        if self.fault_aware {
            self.advance_all_to(t);
            return;
        }
        if self.parallel_static_ok() {
            if self.parallel_window_ok(t) {
                self.advance_window_parallel(t);
                self.now = t;
                return;
            }
            // A worker budget is configured but this window is too small (or
            // zero-width): count the serial fallback so the stats tell the
            // whole story.
            self.domain_stats.serial_fallbacks += 1;
        }
        loop {
            self.refresh_cache();
            // Earliest wire event or endpoint event within the window.
            let step = match (self.wire.next_time(), self.cache.min()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if step > t {
                break;
            }
            self.now = step;
            // Advance only endpoints with a due event, in endpoint-name
            // order — the same order the exhaustive scan advanced them in.
            self.due_scratch.clear();
            self.due_scratch.extend(self.cache.due(step));
            {
                let rank = &self.slot_rank;
                self.due_scratch.sort_unstable_by_key(|&s| rank[s]);
            }
            self.events_dispatched += self.due_scratch.len() as u64;
            for i in 0..self.due_scratch.len() {
                let slot = self.due_scratch[i];
                self.endpoints[slot].advance_to(step);
                self.cache.mark_dirty(slot);
                self.touched.push(slot);
            }
            self.collect_touched_returns(step);
            // Handle due wire events. Handlers never push at-or-before
            // `step`, so a bulk drain sees the same events the incremental
            // pop loop would.
            let mut wire_scratch = std::mem::take(&mut self.wire_scratch);
            wire_scratch.clear();
            self.wire.drain_due_into(step, &mut wire_scratch);
            self.events_dispatched += wire_scratch.len() as u64;
            for (at, event) in wire_scratch.drain(..) {
                self.handle_wire_event(at, event);
            }
            self.wire_scratch = wire_scratch;
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{EndpointConfig, WorkerProvider};
    use crate::exec::{shared, ExecOutcome, SiteRuntime};
    use hpcci_auth::{ClientSecret, IdentityId};
    use hpcci_cluster::Site;
    use hpcci_scheduler::LocalProvider;
    use hpcci_sim::drive;

    struct Setup {
        cloud: CloudService,
        token: hpcci_auth::AccessToken,
        owner: IdentityId,
        endpoint: EndpointId,
    }

    fn setup(restrict: Option<Vec<FunctionId>>) -> Setup {
        let auth = Arc::new(Mutex::new(AuthService::new()));
        let (owner, token) = {
            let mut a = auth.lock();
            let identity = a.register_identity("vhayot@uchicago.edu", "uchicago.edu", SimTime::ZERO);
            let (cid, secret) = a.create_client(identity.id, "correct").unwrap();
            let token = a
                .authenticate(&cid, &secret, vec![Scope::compute_api()], SimTime::ZERO)
                .unwrap();
            (identity.id, token)
        };
        let mut rt = SiteRuntime::new(Site::workstation("lab"));
        rt.site.add_account("vhayot", "proj");
        rt.commands.register("tox", |_| ExecOutcome::ok("py312: commands succeeded", 8.0));
        rt.commands.register("fail", |_| ExecOutcome::fail("tests failed", 1.0));
        let site = shared(rt);
        let login = site.lock().site.login_node().unwrap().id;
        let mut config = EndpointConfig::new("ep-lab", owner, "vhayot");
        if let Some(fns) = restrict {
            config = config.with_allowlist(&fns);
        }
        let ep = Endpoint::new(
            config,
            site,
            WorkerProvider::Local(LocalProvider::new(login, 8)),
            9,
        );
        let mut cloud = CloudService::new(auth);
        let endpoint = cloud.register_endpoint("ep-lab", EndpointRegistration::Single(Box::new(ep)));
        Setup {
            cloud,
            token,
            owner,
            endpoint,
        }
    }

    #[test]
    fn end_to_end_shell_task() {
        let mut s = setup(None);
        let task = s
            .cloud
            .submit_shell(&s.token, &s.endpoint, "tox", SimTime::ZERO)
            .unwrap();
        assert!(!s.cloud.task_finished(task).unwrap());
        drive(&mut [&mut s.cloud]);
        assert!(s.cloud.task_finished(task).unwrap());
        let out = s.cloud.task_result(task).unwrap();
        assert!(out.success());
        assert!(out.stdout.contains("commands succeeded"));
        assert_eq!(out.ran_as, "vhayot");
        // Trace captured the full lifecycle.
        assert_eq!(s.cloud.trace.of_kind("task.submit").count(), 1);
        assert_eq!(s.cloud.trace.of_kind("task.done").count(), 1);
    }

    #[test]
    fn scheduled_batch_matches_interactive_submission() {
        use hpcci_sim::Advance as _;
        let arrivals: Vec<SimTime> =
            [3u64, 3, 7, 20, 41].iter().map(|&s| SimTime::from_secs(s)).collect();
        // Interactive reference: advance to each instant and submit there.
        let mut a = setup(None);
        for &at in &arrivals {
            a.cloud.advance_to(at);
            a.cloud.submit_shell(&a.token, &a.endpoint, "tox", at).unwrap();
        }
        a.cloud.drain_to_quiescence();
        // Scheduled: validate once, push every arrival up front.
        let mut b = setup(None);
        let n = b
            .cloud
            .submit_shell_batch(&b.token, &b.endpoint, "tox", SimTime::ZERO, &arrivals)
            .unwrap();
        assert_eq!(n, arrivals.len() as u64);
        assert_eq!(b.cloud.pending_submits(), n);
        assert_eq!(b.cloud.task_count(), 0, "acceptance is deferred to arrival");
        b.cloud.drain_to_quiescence();
        assert_eq!(b.cloud.pending_submits(), 0);
        assert_eq!(b.cloud.task_count(), arrivals.len());
        for id in 1..=arrivals.len() as u64 {
            assert!(b.cloud.task_finished(TaskId(id)).unwrap());
        }
        assert_eq!(
            a.cloud.trace.rolling_digest(),
            b.cloud.trace.rolling_digest(),
            "scheduled arrivals replay the interactive trace byte-for-byte"
        );
    }

    #[test]
    fn scheduled_submission_validates_up_front() {
        let mut s = setup(Some(vec![FunctionId(1)]));
        // Shell is disallowed on this endpoint: the error surfaces at
        // scheduling time, not when the arrival instant is reached.
        assert!(matches!(
            s.cloud.submit_shell_at(
                &s.token,
                &s.endpoint,
                "tox",
                SimTime::ZERO,
                SimTime::from_secs(5)
            ),
            Err(FaasError::ShellNotAllowed)
        ));
        assert_eq!(s.cloud.pending_submits(), 0);
    }

    #[test]
    fn failing_task_returns_exception() {
        let mut s = setup(None);
        let task = s
            .cloud
            .submit_shell(&s.token, &s.endpoint, "fail", SimTime::ZERO)
            .unwrap();
        drive(&mut [&mut s.cloud]);
        let out = s.cloud.task_result(task).unwrap();
        assert!(!out.success());
        assert_eq!(out.stderr, "tests failed");
    }

    #[test]
    fn bad_token_rejected() {
        let mut s = setup(None);
        // A token from an unknown client is invalid.
        let bogus = {
            let mut a = s.cloud.auth().lock();
            let other = a.register_identity("other@x.y", "x.y", SimTime::ZERO);
            let (cid, sec) = a.create_client(other.id, "c").unwrap();
            // Authenticate then revoke, producing an invalid token.
            let t = a.authenticate(&cid, &sec, vec![Scope::compute_api()], SimTime::ZERO).unwrap();
            a.revoke(&t).unwrap();
            t
        };
        assert!(matches!(
            s.cloud.submit_shell(&bogus, &s.endpoint, "tox", SimTime::ZERO),
            Err(FaasError::Auth(_))
        ));
        let _ = ClientSecret::new("x");
    }

    #[test]
    fn non_owner_cannot_use_single_user_endpoint() {
        let mut s = setup(None);
        let foreign_token = {
            let mut a = s.cloud.auth().lock();
            let mallory = a.register_identity("mallory@uchicago.edu", "uchicago.edu", SimTime::ZERO);
            let (cid, sec) = a.create_client(mallory.id, "m").unwrap();
            a.authenticate(&cid, &sec, vec![Scope::compute_api()], SimTime::ZERO).unwrap()
        };
        assert!(matches!(
            s.cloud.submit_shell(&foreign_token, &s.endpoint, "tox", SimTime::ZERO),
            Err(FaasError::NotEndpointOwner)
        ));
    }

    #[test]
    fn function_registration_and_submission() {
        let mut s = setup(None);
        let f = s
            .cloud
            .register_function(
                &s.token,
                "run-tox",
                FunctionBody::Shell { command: "tox {args}".into() },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(s.cloud.function(f).unwrap().owner, s.owner);
        let task = s
            .cloud
            .submit_function(&s.token, &s.endpoint, f, "-e py312", SimTime::ZERO)
            .unwrap();
        drive(&mut [&mut s.cloud]);
        assert!(s.cloud.task_result(task).unwrap().success());
        assert!(s.cloud.task(task).unwrap().command.contains("-e py312"));
    }

    #[test]
    fn allowlist_blocks_shell_and_foreign_functions() {
        // Endpoint restricted to function id 1 (registered below).
        let mut s = setup(Some(vec![FunctionId(1)]));
        assert!(matches!(
            s.cloud.submit_shell(&s.token, &s.endpoint, "tox", SimTime::ZERO),
            Err(FaasError::ShellNotAllowed)
        ));
        let allowed = s
            .cloud
            .register_function(&s.token, "ok", FunctionBody::Shell { command: "tox".into() }, SimTime::ZERO)
            .unwrap();
        assert_eq!(allowed, FunctionId(1));
        let denied = s
            .cloud
            .register_function(&s.token, "no", FunctionBody::Shell { command: "tox".into() }, SimTime::ZERO)
            .unwrap();
        assert!(s
            .cloud
            .submit_function(&s.token, &s.endpoint, allowed, "", SimTime::ZERO)
            .is_ok());
        assert!(matches!(
            s.cloud.submit_function(&s.token, &s.endpoint, denied, "", SimTime::ZERO),
            Err(FaasError::FunctionNotAllowed(_))
        ));
    }

    #[test]
    fn payload_limit_enforced() {
        let mut s = setup(None);
        let huge = "x".repeat(PAYLOAD_LIMIT + 1);
        assert!(matches!(
            s.cloud.submit_shell(&s.token, &s.endpoint, &huge, SimTime::ZERO),
            Err(FaasError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_endpoint_and_task() {
        let mut s = setup(None);
        assert!(matches!(
            s.cloud
                .submit_shell(&s.token, &EndpointId("ghost".into()), "tox", SimTime::ZERO),
            Err(FaasError::UnknownEndpoint(_))
        ));
        assert!(matches!(
            s.cloud.task_state(TaskId(999)),
            Err(FaasError::UnknownTask(_))
        ));
    }

    #[test]
    fn wan_latency_delays_delivery_and_return() {
        let mut s = setup(None);
        let task = s
            .cloud
            .submit_shell(&s.token, &s.endpoint, "tox", SimTime::ZERO)
            .unwrap();
        let end = drive(&mut [&mut s.cloud]);
        let out = s.cloud.task_result(task).unwrap();
        // Task observed start >= one-way latency; completion at cloud is
        // after the endpoint-side end.
        assert!(out.started.as_micros() > 0);
        assert!(end > out.ended, "return leg adds latency");
    }
}
