//! FaaS error types.

use crate::function::FunctionId;
use crate::task::TaskId;
use hpcci_auth::AuthError;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaasError {
    /// Authentication or authorization failed at the cloud service.
    Auth(AuthError),
    UnknownEndpoint(String),
    UnknownFunction(FunctionId),
    UnknownTask(TaskId),
    /// The endpoint restricts functions and this one is not pre-approved.
    FunctionNotAllowed(FunctionId),
    /// Endpoint restricts functions, so ad-hoc shell commands are rejected.
    ShellNotAllowed,
    /// Single-user endpoints accept tasks only from their owner identity.
    NotEndpointOwner,
    /// Task args or result exceed the service payload limit.
    PayloadTooLarge { bytes: usize, limit: usize },
    /// No identity-mapping rule matched at the MEP's site.
    IdentityMappingFailed(String),
    /// The mapped local account does not exist at the site.
    NoLocalAccount(String),
    /// Result not ready yet.
    NotFinished(TaskId),
    /// The endpoint is stopped/drained.
    EndpointStopped(String),
    /// A transient infrastructure fault (injected or organic): crashed
    /// worker, failed UEP fork, etc. Retryable by the CORRECT layer.
    Infrastructure(String),
    /// A state machine violation: attempted transition out of a terminal
    /// task state. Terminal tasks may only be revived by explicit
    /// resubmission (which mints a fresh task id).
    InvalidTransition { task: TaskId, from: String, to: String },
}

impl fmt::Display for FaasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaasError::Auth(e) => write!(f, "auth: {e}"),
            FaasError::UnknownEndpoint(e) => write!(f, "unknown endpoint: {e}"),
            FaasError::UnknownFunction(id) => write!(f, "unknown function: {id}"),
            FaasError::UnknownTask(id) => write!(f, "unknown task: {id}"),
            FaasError::FunctionNotAllowed(id) => {
                write!(f, "function {id} is not approved for this endpoint")
            }
            FaasError::ShellNotAllowed => {
                write!(f, "endpoint restricts functions; ad-hoc shell commands rejected")
            }
            FaasError::NotEndpointOwner => {
                write!(f, "single-user endpoints accept tasks only from their owner")
            }
            FaasError::PayloadTooLarge { bytes, limit } => {
                write!(f, "payload of {bytes} bytes exceeds limit of {limit}")
            }
            FaasError::IdentityMappingFailed(who) => {
                write!(f, "identity mapping failed for {who}")
            }
            FaasError::NoLocalAccount(who) => write!(f, "no local account {who} at site"),
            FaasError::NotFinished(id) => write!(f, "task {id} has not finished"),
            FaasError::EndpointStopped(e) => write!(f, "endpoint {e} is stopped"),
            FaasError::Infrastructure(msg) => write!(f, "infrastructure: {msg}"),
            FaasError::InvalidTransition { task, from, to } => {
                write!(f, "task {task}: illegal transition from terminal state {from} to {to}")
            }
        }
    }
}

impl std::error::Error for FaasError {}

impl From<AuthError> for FaasError {
    fn from(e: AuthError) -> Self {
        FaasError::Auth(e)
    }
}
