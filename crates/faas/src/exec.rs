//! Site-side execution: runtimes, command registries, task environments.
//!
//! A [`SiteRuntime`] wraps a [`hpcci_cluster::Site`] with the pieces needed
//! to execute tasks: an optional batch scheduler and a registry of command
//! handlers. Application crates install their commands (`pytest`, `git`,
//! `tox`, artifact scripts) into the registry — the analogue of installing
//! software into the site's Conda environment.
//!
//! Handlers receive a [`TaskEnv`]: the site opened with the credentials of
//! the *mapped local user*, on a *specific node role* — so filesystem
//! permission checks and network policy apply exactly as they would on the
//! real system.

use bytes::Bytes;
use hpcci_cluster::{Cred, NetworkZone, NodeRole, Site, UserAccount, WorkUnits};
use hpcci_scheduler::BatchScheduler;
use hpcci_sim::{DetRng, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What executing a command produced, plus its simulated cost.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    pub stdout: String,
    pub stderr: String,
    /// Ok(payload) or Err(message). Shell-style commands return empty
    /// payloads; native functions may return real data.
    pub result: Result<Bytes, String>,
    /// Cost in reference-seconds, converted to virtual time by the site's
    /// performance model.
    pub work: WorkUnits,
}

impl ExecOutcome {
    pub fn ok(stdout: impl Into<String>, work: f64) -> ExecOutcome {
        ExecOutcome {
            stdout: stdout.into(),
            stderr: String::new(),
            result: Ok(Bytes::new()),
            work: WorkUnits::secs(work),
        }
    }

    pub fn fail(stderr: impl Into<String>, work: f64) -> ExecOutcome {
        let stderr = stderr.into();
        ExecOutcome {
            stdout: String::new(),
            result: Err(stderr.clone()),
            stderr,
            work: WorkUnits::secs(work),
        }
    }

    pub fn with_payload(mut self, payload: impl Into<Bytes>) -> ExecOutcome {
        if self.result.is_ok() {
            self.result = Ok(payload.into());
        }
        self
    }

    pub fn with_stdout(mut self, stdout: impl Into<String>) -> ExecOutcome {
        self.stdout = stdout.into();
        self
    }
}

/// The environment a command handler executes in.
pub struct TaskEnv<'a> {
    /// The site, for filesystem / env / image access.
    pub site: &'a mut Site,
    /// Credentials of the mapped local user — every fs call must use these.
    pub cred: &'a Cred,
    /// The local account (home/scratch paths, allocation).
    pub account: &'a UserAccount,
    /// Role of the node the worker runs on.
    pub role: NodeRole,
    /// Hostname of the executing node.
    pub node: &'a str,
    /// Full command line (first token selected the handler).
    pub command: &'a str,
    /// Virtual time at execution start.
    pub now: SimTime,
    /// Deterministic randomness for the handler.
    pub rng: &'a mut DetRng,
    /// Container image reference the worker runs in, if any.
    pub container: Option<&'a str>,
}

impl TaskEnv<'_> {
    /// Can this worker reach the public internet? (Compute nodes on
    /// FASTER/Expanse cannot — §6.1.)
    pub fn internet_allowed(&self) -> bool {
        self.site.network.allows(self.role, NetworkZone::Internet)
    }

    /// Arguments after the handler token.
    pub fn args(&self) -> &str {
        match self.command.split_once(char::is_whitespace) {
            Some((_, rest)) => rest.trim(),
            None => "",
        }
    }

    /// The working directory convention for CI clones: a temp dir in the
    /// user's scratch space (the paper's logs show
    /// `/anvil/scratch/x-vhayot/gc-action-temp/...`).
    pub fn clone_root(&self) -> String {
        format!("{}/gc-action-temp", self.account.scratch())
    }
}

/// A command handler. `Arc` so the registry can be cloned out before the
/// handler borrows the site mutably.
pub type CommandHandler = Arc<dyn Fn(&mut TaskEnv<'_>) -> ExecOutcome + Send + Sync>;

/// Named command handlers installed at a site.
#[derive(Default, Clone)]
pub struct CommandRegistry {
    handlers: BTreeMap<String, CommandHandler>,
}

impl CommandRegistry {
    pub fn new() -> Self {
        CommandRegistry::default()
    }

    pub fn register<F>(&mut self, name: &str, handler: F)
    where
        F: Fn(&mut TaskEnv<'_>) -> ExecOutcome + Send + Sync + 'static,
    {
        self.handlers.insert(name.to_string(), Arc::new(handler));
    }

    /// Resolve the handler for a command line (first whitespace token).
    pub fn resolve(&self, command: &str) -> Option<CommandHandler> {
        let first = command.split_whitespace().next()?;
        self.handlers.get(first).cloned()
    }

    pub fn names(&self) -> Vec<&str> {
        self.handlers.keys().map(String::as_str).collect()
    }
}

/// A site plus its execution machinery; the shared handle every endpoint at
/// the site holds.
pub struct SiteRuntime {
    pub site: Site,
    /// Present on HPC sites.
    pub scheduler: Option<Arc<Mutex<BatchScheduler>>>,
    pub commands: CommandRegistry,
}

impl SiteRuntime {
    pub fn new(site: Site) -> Self {
        SiteRuntime {
            site,
            scheduler: None,
            commands: CommandRegistry::new(),
        }
    }

    /// Attach a batch scheduler covering the site's compute nodes.
    pub fn with_scheduler(mut self, cores_per_node: u32) -> Self {
        let nodes: Vec<_> = self.site.compute_nodes().map(|n| n.id).collect();
        if !nodes.is_empty() {
            self.scheduler = Some(Arc::new(Mutex::new(BatchScheduler::with_compute_partition(
                nodes,
                cores_per_node,
            ))));
        }
        self
    }

    /// Execute `command` as `account` on a node with `role`. This is the
    /// single gate through which all task execution flows.
    ///
    /// The environment borrows the caller's account and credentials: the
    /// hot path (endpoint task start) caches both per endpoint, so a task
    /// execution performs no name allocations of its own.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &mut self,
        command: &str,
        account: &UserAccount,
        cred: &Cred,
        role: NodeRole,
        node: &str,
        now: SimTime,
        rng: &mut DetRng,
        container: Option<&str>,
    ) -> ExecOutcome {
        let Some(handler) = self.commands.resolve(command) else {
            let first = command.split_whitespace().next().unwrap_or("");
            return ExecOutcome::fail(format!("bash: {first}: command not found"), 0.01);
        };
        let mut env = TaskEnv {
            site: &mut self.site,
            cred,
            account,
            role,
            node,
            command,
            now,
            rng,
            container,
        };
        handler(&mut env)
    }
}

/// Convenient shared handle.
pub type SharedSite = Arc<Mutex<SiteRuntime>>;

/// Wrap a site runtime for sharing.
pub fn shared(runtime: SiteRuntime) -> SharedSite {
    Arc::new(Mutex::new(runtime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::FileMode;

    fn runtime() -> SiteRuntime {
        let mut rt = SiteRuntime::new(Site::tamu_faster()).with_scheduler(64);
        rt.commands.register("echo", |env| {
            ExecOutcome::ok(env.args().to_string(), 0.01)
        });
        rt.commands.register("whoami", |env| {
            ExecOutcome::ok(env.account.username.clone(), 0.001)
        });
        rt.commands.register("netcheck", |env| {
            if env.internet_allowed() {
                ExecOutcome::ok("online", 0.01)
            } else {
                ExecOutcome::fail("no route to host", 0.01)
            }
        });
        rt.commands.register("touchfile", |env| {
            let path = format!("{}/marker", env.account.scratch());
            match env.site.fs.write(&path, env.cred, "x", FileMode::PRIVATE) {
                Ok(()) => ExecOutcome::ok(path, 0.01),
                Err(e) => ExecOutcome::fail(e.to_string(), 0.01),
            }
        });
        rt
    }

    fn run(rt: &mut SiteRuntime, cmd: &str, user: &str, role: NodeRole) -> ExecOutcome {
        let account = rt.site.account(user).unwrap().clone();
        let cred = Cred::of(&account);
        let mut rng = DetRng::seed_from_u64(1);
        rt.execute(cmd, &account, &cred, role, "test-node", SimTime::ZERO, &mut rng, None)
    }

    #[test]
    fn command_dispatch_and_args() {
        let mut rt = runtime();
        rt.site.add_account("alice", "proj");
        let out = run(&mut rt, "echo hello world", "alice", NodeRole::Login);
        assert!(out.result.is_ok());
        assert_eq!(out.stdout, "hello world");
    }

    #[test]
    fn unknown_command_fails_like_a_shell() {
        let mut rt = runtime();
        rt.site.add_account("alice", "proj");
        let out = run(&mut rt, "frobnicate --all", "alice", NodeRole::Login);
        assert!(out.result.is_err());
        assert!(out.stderr.contains("frobnicate: command not found"));
    }

    #[test]
    fn network_policy_visible_to_handlers() {
        let mut rt = runtime();
        rt.site.add_account("alice", "proj");
        // FASTER: login nodes online, compute nodes offline.
        assert!(run(&mut rt, "netcheck", "alice", NodeRole::Login).result.is_ok());
        assert!(run(&mut rt, "netcheck", "alice", NodeRole::Compute).result.is_err());
    }

    #[test]
    fn handlers_write_as_the_mapped_user() {
        let mut rt = runtime();
        rt.site.add_account("alice", "proj");
        let out = run(&mut rt, "touchfile", "alice", NodeRole::Compute);
        assert!(out.result.is_ok());
        assert_eq!(rt.site.fs.owner_of("/scratch/alice/marker").unwrap(), rt.site.account("alice").unwrap().uid);
    }

    #[test]
    fn whoami_reflects_account() {
        let mut rt = runtime();
        rt.site.add_account("x-vhayot", "CIS230030");
        let out = run(&mut rt, "whoami", "x-vhayot", NodeRole::Login);
        assert_eq!(out.stdout, "x-vhayot");
    }

    #[test]
    fn scheduler_attached_for_hpc_sites() {
        let rt = runtime();
        assert!(rt.scheduler.is_some());
        let cloud = SiteRuntime::new(Site::chameleon_tacc()).with_scheduler(64);
        assert!(cloud.scheduler.is_none(), "cloud site has no compute partition");
    }

    #[test]
    fn clone_root_convention() {
        let mut rt = runtime();
        rt.site.add_account("x-vhayot", "CIS230030");
        let account = rt.site.account("x-vhayot").unwrap().clone();
        let cred = Cred::of(&account);
        let mut rng = DetRng::seed_from_u64(1);
        let mut env = TaskEnv {
            site: &mut rt.site,
            cred: &cred,
            account: &account,
            role: NodeRole::Login,
            node: "n",
            command: "x",
            now: SimTime::ZERO,
            rng: &mut rng,
            container: None,
        };
        assert_eq!(env.clone_root(), "/scratch/x-vhayot/gc-action-temp");
        let _ = &mut env;
    }
}
