//! Tasks: the unit of remote execution.

use bytes::Bytes;
use hpcci_auth::IdentityId;
use hpcci_sim::{SimDuration, SimTime, Sym};
use std::fmt;

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task-{:08x}", self.0)
    }
}

impl TaskId {
    /// Append this id's `Display` form (`task-{:08x}`) to `out` without going
    /// through the `fmt` machinery. Per-task trace details are built several
    /// times per task on the hot path; skipping the formatter is measurable
    /// at federation-bench event rates. Output is byte-identical to
    /// `Display` — the golden trace hashes pin it.
    pub fn write_label(&self, out: &mut String) {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        out.push_str("task-");
        let mut buf = [b'0'; 16];
        let mut i = buf.len();
        let mut v = self.0;
        loop {
            i -= 1;
            buf[i] = HEX[(v & 0xf) as usize];
            v >>= 4;
            if v == 0 {
                break;
            }
        }
        i = i.min(buf.len() - 8); // zero-pad to at least eight hex digits
        out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii hex"));
    }
}

/// The completed result of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskOutput {
    pub stdout: String,
    pub stderr: String,
    /// The function's return payload (empty for shell functions, which can
    /// only return stdout/stderr — a limitation §7.4 discusses).
    pub result: Result<Bytes, String>,
    /// Local account the task actually ran as — the auditable identity link.
    /// Interned: a run's tasks share a handful of account names, so each
    /// output holds a shared `Sym` instead of its own `String`.
    pub ran_as: Sym,
    /// Hostname of the executing node (interned, like `ran_as`).
    pub node: Sym,
    pub started: SimTime,
    pub ended: SimTime,
}

impl TaskOutput {
    pub fn success(&self) -> bool {
        self.result.is_ok()
    }

    pub fn runtime(&self) -> SimDuration {
        self.ended.since(self.started)
    }
}

/// Task lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    /// Accepted by the cloud, in flight to the endpoint.
    Submitted { at: SimTime },
    /// Queued at the endpoint waiting for a worker.
    QueuedAtEndpoint { at: SimTime },
    /// Executing on a worker.
    Running { started: SimTime },
    /// Finished; output available.
    Done(TaskOutput),
    /// Failed before execution (delivery, mapping, policy).
    Rejected { at: SimTime, reason: String },
}

impl TaskState {
    pub fn is_terminal(&self) -> bool {
        matches!(self, TaskState::Done(_) | TaskState::Rejected { .. })
    }

    /// Short state name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            TaskState::Submitted { .. } => "Submitted",
            TaskState::QueuedAtEndpoint { .. } => "QueuedAtEndpoint",
            TaskState::Running { .. } => "Running",
            TaskState::Done(_) => "Done",
            TaskState::Rejected { .. } => "Rejected",
        }
    }
}

/// A task record held by the cloud service.
#[derive(Debug, Clone)]
pub struct Task {
    pub id: TaskId,
    /// The identity that submitted the task.
    pub submitter: IdentityId,
    /// Target endpoint name. Interned — a million-task arena shares one
    /// allocation per endpoint instead of holding a million `String`s.
    pub endpoint: Sym,
    /// The resolved command line the endpoint will execute (interned; CI
    /// workloads repeat a small set of command lines).
    pub command: Sym,
    /// When the cloud accepted the task (start of the latency clock; the
    /// `Submitted` state is transient but this timestamp survives the
    /// lifecycle for end-to-end latency accounting).
    pub submitted_at: SimTime,
    pub state: TaskState,
}

impl Task {
    /// Move the task to `next`, rejecting any transition out of a terminal
    /// state. Done/Rejected tasks never come back to life: re-running a task
    /// requires explicit resubmission, which mints a fresh [`TaskId`].
    pub fn transition(&mut self, next: TaskState) -> Result<(), crate::error::FaasError> {
        if self.state.is_terminal() {
            return Err(crate::error::FaasError::InvalidTransition {
                task: self.id,
                from: self.state.name().to_string(),
                to: next.name().to_string(),
            });
        }
        self.state = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_label_matches_display() {
        for v in [
            0,
            1,
            0xf,
            0x10,
            0xdead_beef,
            0xffff_ffff,
            0x1_0000_0000,
            0x0123_4567_89ab_cdef,
            u64::MAX,
        ] {
            let id = TaskId(v);
            let mut label = String::new();
            id.write_label(&mut label);
            assert_eq!(label, id.to_string(), "value {v:#x}");
        }
    }

    #[test]
    fn output_helpers() {
        let out = TaskOutput {
            stdout: "ok".into(),
            stderr: String::new(),
            result: Ok(Bytes::from_static(b"42")),
            ran_as: "x-vhayot".into(),
            node: "anvil-login-1".into(),
            started: SimTime::from_secs(10),
            ended: SimTime::from_secs(25),
        };
        assert!(out.success());
        assert_eq!(out.runtime(), SimDuration::from_secs(15));
    }

    #[test]
    fn failure_output() {
        let out = TaskOutput {
            stdout: String::new(),
            stderr: "Traceback".into(),
            result: Err("pytest failed".into()),
            ran_as: "u".into(),
            node: "n".into(),
            started: SimTime::ZERO,
            ended: SimTime::from_secs(1),
        };
        assert!(!out.success());
    }

    #[test]
    fn terminal_states() {
        assert!(TaskState::Rejected { at: SimTime::ZERO, reason: "x".into() }.is_terminal());
        assert!(!TaskState::Submitted { at: SimTime::ZERO }.is_terminal());
        assert!(!TaskState::Running { started: SimTime::ZERO }.is_terminal());
    }

    fn sample_task(state: TaskState) -> Task {
        Task {
            id: TaskId(9),
            submitter: IdentityId(1),
            endpoint: "ep".into(),
            command: "true".into(),
            submitted_at: SimTime::ZERO,
            state,
        }
    }

    fn done_output() -> TaskOutput {
        TaskOutput {
            stdout: String::new(),
            stderr: String::new(),
            result: Ok(Bytes::new()),
            ran_as: "u".into(),
            node: "n".into(),
            started: SimTime::ZERO,
            ended: SimTime::from_secs(1),
        }
    }

    #[test]
    fn live_transitions_are_allowed() {
        let mut t = sample_task(TaskState::Submitted { at: SimTime::ZERO });
        t.transition(TaskState::QueuedAtEndpoint { at: SimTime::from_secs(1) })
            .unwrap();
        t.transition(TaskState::Running { started: SimTime::from_secs(2) })
            .unwrap();
        t.transition(TaskState::Done(done_output())).unwrap();
        assert!(t.state.is_terminal());
    }

    #[test]
    fn done_task_cannot_be_revived() {
        let mut t = sample_task(TaskState::Done(done_output()));
        let err = t
            .transition(TaskState::Running { started: SimTime::from_secs(5) })
            .unwrap_err();
        assert!(err.to_string().contains("illegal transition"));
        // The terminal state is untouched.
        assert!(matches!(t.state, TaskState::Done(_)));
    }

    #[test]
    fn rejected_task_cannot_be_resubmitted_in_place() {
        let mut t = sample_task(TaskState::Rejected {
            at: SimTime::ZERO,
            reason: "mapping failed".into(),
        });
        assert!(t
            .transition(TaskState::Submitted { at: SimTime::from_secs(1) })
            .is_err());
        assert!(t.transition(TaskState::Done(done_output())).is_err());
        assert!(matches!(t.state, TaskState::Rejected { .. }));
    }
}
