//! Tasks: the unit of remote execution.

use bytes::Bytes;
use hpcci_auth::IdentityId;
use hpcci_sim::{SimDuration, SimTime};
use std::fmt;

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task-{:08x}", self.0)
    }
}

/// The completed result of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskOutput {
    pub stdout: String,
    pub stderr: String,
    /// The function's return payload (empty for shell functions, which can
    /// only return stdout/stderr — a limitation §7.4 discusses).
    pub result: Result<Bytes, String>,
    /// Local account the task actually ran as — the auditable identity link.
    pub ran_as: String,
    /// Hostname of the executing node.
    pub node: String,
    pub started: SimTime,
    pub ended: SimTime,
}

impl TaskOutput {
    pub fn success(&self) -> bool {
        self.result.is_ok()
    }

    pub fn runtime(&self) -> SimDuration {
        self.ended.since(self.started)
    }
}

/// Task lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    /// Accepted by the cloud, in flight to the endpoint.
    Submitted { at: SimTime },
    /// Queued at the endpoint waiting for a worker.
    QueuedAtEndpoint { at: SimTime },
    /// Executing on a worker.
    Running { started: SimTime },
    /// Finished; output available.
    Done(TaskOutput),
    /// Failed before execution (delivery, mapping, policy).
    Rejected { at: SimTime, reason: String },
}

impl TaskState {
    pub fn is_terminal(&self) -> bool {
        matches!(self, TaskState::Done(_) | TaskState::Rejected { .. })
    }
}

/// A task record held by the cloud service.
#[derive(Debug, Clone)]
pub struct Task {
    pub id: TaskId,
    /// The identity that submitted the task.
    pub submitter: IdentityId,
    /// Target endpoint name.
    pub endpoint: String,
    /// The resolved command line the endpoint will execute.
    pub command: String,
    pub state: TaskState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_helpers() {
        let out = TaskOutput {
            stdout: "ok".into(),
            stderr: String::new(),
            result: Ok(Bytes::from_static(b"42")),
            ran_as: "x-vhayot".into(),
            node: "anvil-login-1".into(),
            started: SimTime::from_secs(10),
            ended: SimTime::from_secs(25),
        };
        assert!(out.success());
        assert_eq!(out.runtime(), SimDuration::from_secs(15));
    }

    #[test]
    fn failure_output() {
        let out = TaskOutput {
            stdout: String::new(),
            stderr: "Traceback".into(),
            result: Err("pytest failed".into()),
            ran_as: "u".into(),
            node: "n".into(),
            started: SimTime::ZERO,
            ended: SimTime::from_secs(1),
        };
        assert!(!out.success());
    }

    #[test]
    fn terminal_states() {
        assert!(TaskState::Rejected { at: SimTime::ZERO, reason: "x".into() }.is_terminal());
        assert!(!TaskState::Submitted { at: SimTime::ZERO }.is_terminal());
        assert!(!TaskState::Running { started: SimTime::ZERO }.is_terminal());
    }
}
