//! Multi-user endpoints (MEPs).
//!
//! A MEP is deployed as a privileged service that, per submitting user,
//! "forks a user endpoint (UEP) process in user space for the requesting
//! user", applying Globus-Connect-Server-style identity mapping (§5.1).
//! Templates define what resources UEPs may use; administrators audit every
//! executed task.
//!
//! The paper's §6.1 detail is reproduced faithfully: on sites whose compute
//! nodes have no outbound internet, the template defines **two providers** —
//! a `LocalProvider` on the login node used for repository cloning, and a
//! `SlurmProvider` for test execution — with commands routed between them by
//! name.

use crate::endpoint::{Endpoint, EndpointConfig, WorkerProvider};
use crate::error::FaasError;
use crate::exec::SharedSite;
use crate::function::FunctionId;
use crate::task::{TaskId, TaskOutput};
use hpcci_auth::{HighAssurancePolicy, Identity, IdentityMapping};
use hpcci_obs::Obs;
use hpcci_scheduler::{LocalProvider, SlurmProvider};
use hpcci_sim::{Advance, FaultInjector, NextEventCache, SimDuration, SimTime, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// How the template provisions task workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskProvider {
    /// Run tasks on the login node (Anvil/PSI-J style, §6.2).
    Local,
    /// Run tasks in SLURM pilot jobs on compute nodes (§6.1).
    Slurm { cores: u32, walltime_secs: u64 },
}

/// The UEP template an administrator configures on the MEP.
#[derive(Debug, Clone)]
pub struct MepTemplate {
    /// Commands (by leading token) routed to a login-node LocalProvider —
    /// e.g. `git`, which needs outbound internet.
    pub login_commands: BTreeSet<String>,
    /// Provider for everything else.
    pub task_provider: TaskProvider,
    /// Worker concurrency per UEP.
    pub workers: u32,
    /// Container image UEP workers run inside, if any.
    pub container: Option<String>,
}

impl MepTemplate {
    /// §6.1 template: clone on login, test on compute.
    pub fn hpc_split(cores: u32, walltime_secs: u64) -> Self {
        MepTemplate {
            login_commands: ["git"].iter().map(|s| s.to_string()).collect(),
            task_provider: TaskProvider::Slurm { cores, walltime_secs },
            workers: 4,
            container: None,
        }
    }

    /// §6.2 template: everything on the login node.
    pub fn login_only() -> Self {
        MepTemplate {
            login_commands: BTreeSet::new(),
            task_provider: TaskProvider::Local,
            workers: 4,
            container: None,
        }
    }

    pub fn in_container(mut self, image: &str) -> Self {
        self.container = Some(image.to_string());
        self
    }

    fn routes_to_login(&self, command: &str) -> bool {
        match command.split_whitespace().next() {
            Some(first) => self.login_commands.contains(first),
            None => false,
        }
    }
}

/// The per-user pair of forked endpoints.
struct UepPair {
    login: Endpoint,
    task: Endpoint,
    /// This pair's slot in the MEP's [`NextEventCache`].
    slot: usize,
}

impl UepPair {
    fn next_event(&self) -> Option<SimTime> {
        match (self.login.next_event(), self.task.next_event()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A multi-user endpoint at one site.
pub struct MultiUserEndpoint {
    pub name: String,
    site: SharedSite,
    mapping: IdentityMapping,
    pub ha_policy: HighAssurancePolicy,
    pub restrict_functions: Option<BTreeSet<FunctionId>>,
    template: MepTemplate,
    ueps: BTreeMap<String, UepPair>,
    /// Administrator-auditable log: (task, identity username, local user).
    audit_log: Vec<(TaskId, String, String)>,
    seed: u64,
    injector: Option<FaultInjector>,
    /// Observability handle, propagated into every forked UEP.
    obs: Obs,
    /// Outputs of tasks that were in flight when the MEP crashed; drained by
    /// [`Self::take_finished`] alongside live UEP outputs.
    pending_crashed: Vec<(TaskId, TaskOutput)>,
    /// Indexed event dispatch over UEP pairs: only pairs with a due event
    /// are advanced (fault-free runs; with an injector the MEP falls back to
    /// the exhaustive path so fault consult boundaries never move).
    cache: NextEventCache,
    /// Slot → local user of the pair occupying it.
    slot_users: Vec<String>,
    /// Scratch buffer of due slots, reused across advances.
    due_scratch: Vec<usize>,
}

impl MultiUserEndpoint {
    pub fn new(name: &str, site: SharedSite, mapping: IdentityMapping, template: MepTemplate) -> Self {
        MultiUserEndpoint {
            name: name.to_string(),
            site,
            mapping,
            ha_policy: HighAssurancePolicy::permissive(),
            restrict_functions: None,
            template,
            ueps: BTreeMap::new(),
            audit_log: Vec::new(),
            seed: 0x6d65_7000,
            injector: None,
            obs: Obs::disabled(),
            pending_crashed: Vec::new(),
            cache: NextEventCache::new(),
            slot_users: Vec::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Attach a fault injector consulted at enqueue/advance boundaries.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Attach an observability handle, propagated into every UEP this MEP
    /// forks (already-forked UEPs are updated too).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        for pair in self.ueps.values_mut() {
            pair.login.set_obs(self.obs.clone());
            pair.task.set_obs(self.obs.clone());
        }
    }

    /// Does this MEP (and hence every UEP it forks) consult a fault injector?
    pub fn has_injector(&self) -> bool {
        self.injector.is_some()
    }

    /// Can a UEP's next event move without the MEP being touched? True when
    /// the template provisions task workers through the site's shared batch
    /// scheduler (see [`Endpoint::shares_scheduler`]).
    pub fn shares_scheduler(&self) -> bool {
        matches!(self.template.task_provider, TaskProvider::Slurm { .. })
    }

    /// Re-probe dirty (and volatile) pair slots.
    fn refresh_cache(&mut self) {
        let ueps = &self.ueps;
        let users = &self.slot_users;
        self.cache
            .refresh(|slot| ueps[&users[slot]].next_event());
    }

    /// A MEP-level crash tears down every forked UEP. In-flight tasks fail
    /// with infrastructure-marked outputs; the UEP map is cleared so the next
    /// submission re-forks fresh UEPs (the privileged MEP service restarts).
    fn crash_all(&mut self, now: SimTime) {
        let mut pairs = std::mem::take(&mut self.ueps);
        let n = pairs.len();
        self.cache = NextEventCache::new();
        self.slot_users.clear();
        for pair in pairs.values_mut() {
            pair.login.force_crash(now);
            pair.task.force_crash(now);
            self.pending_crashed.extend(pair.login.take_finished());
            self.pending_crashed.extend(pair.task.take_finished());
        }
        if let Some(inj) = &self.injector {
            inj.record(
                now,
                format!("faas.mep.{}", self.name),
                "fault.effect",
                format!("mep crashed; {n} uep pair(s) torn down, will re-fork on demand"),
            );
        }
    }

    pub fn with_ha_policy(mut self, policy: HighAssurancePolicy) -> Self {
        self.ha_policy = policy;
        self
    }

    pub fn with_allowlist(mut self, functions: &[FunctionId]) -> Self {
        self.restrict_functions = Some(functions.iter().copied().collect());
        self
    }

    pub fn function_allowed(&self, f: FunctionId) -> bool {
        match &self.restrict_functions {
            None => true,
            Some(set) => set.contains(&f),
        }
    }

    pub fn shell_allowed(&self) -> bool {
        self.restrict_functions.is_none()
    }

    pub fn wan_latency(&self) -> SimDuration {
        let rtt = self.site.lock().site.perf.wan_rtt();
        rtt / 2
    }

    /// The shared site this MEP (and all its UEPs) runs at.
    pub fn site(&self) -> &SharedSite {
        &self.site
    }

    /// The administrator's audit view (§5.1: "administrators can audit logs
    /// of all tasks that have been executed").
    pub fn audit_log(&self) -> &[(TaskId, String, String)] {
        &self.audit_log
    }

    /// Number of forked UEPs (pairs count once).
    pub fn uep_count(&self) -> usize {
        self.ueps.len()
    }

    fn fork_uep(&mut self, local_user: &str) -> Result<(), FaasError> {
        if self.ueps.contains_key(local_user) {
            return Ok(());
        }
        let runtime = self.site.lock();
        let account = runtime
            .site
            .account(local_user)
            .map_err(|_| FaasError::NoLocalAccount(local_user.to_string()))?
            .clone();
        let login_node = runtime
            .site
            .login_node()
            .map(|n| n.id)
            .ok_or_else(|| FaasError::UnknownEndpoint(self.name.clone()))?;
        let scheduler = runtime.scheduler.clone();
        drop(runtime);

        self.seed += 1;
        let login_seed = self.seed;
        self.seed += 1;
        let task_seed = self.seed;

        let mk_config = |suffix: &str| {
            let mut c = EndpointConfig::new(
                &format!("{}/{}/{}", self.name, local_user, suffix),
                hpcci_auth::IdentityId(0), // MEP-forked UEPs trust the MEP's mapping
                local_user,
            )
            .with_workers(self.template.workers);
            if let Some(img) = &self.template.container {
                c = c.in_container(img);
            }
            c
        };

        let mut login_ep = Endpoint::new(
            mk_config("login"),
            self.site.clone(),
            WorkerProvider::Local(LocalProvider::new(login_node, 8)),
            login_seed,
        );
        let mut task_ep = match &self.template.task_provider {
            TaskProvider::Local => Endpoint::new(
                mk_config("task"),
                self.site.clone(),
                WorkerProvider::Local(LocalProvider::new(login_node, 8)),
                task_seed,
            ),
            TaskProvider::Slurm { cores, walltime_secs } => {
                let scheduler = scheduler.ok_or_else(|| {
                    FaasError::UnknownEndpoint(format!("{}: no scheduler at site", self.name))
                })?;
                Endpoint::new(
                    mk_config("task"),
                    self.site.clone(),
                    WorkerProvider::Slurm(SlurmProvider::new(
                        scheduler,
                        account.uid,
                        &account.allocation,
                        *cores,
                        SimDuration::from_secs(*walltime_secs),
                    )),
                    task_seed,
                )
            }
        };
        if let Some(inj) = &self.injector {
            login_ep.set_fault_injector(inj.clone());
            task_ep.set_fault_injector(inj.clone());
        }
        if self.obs.is_enabled() {
            login_ep.set_obs(self.obs.clone());
            task_ep.set_obs(self.obs.clone());
        }
        let slot = self.cache.register();
        self.slot_users.push(local_user.to_string());
        if task_ep.shares_scheduler() {
            self.cache.set_volatile(slot, true);
        }
        self.ueps.insert(
            local_user.to_string(),
            UepPair {
                login: login_ep,
                task: task_ep,
                slot,
            },
        );
        Ok(())
    }

    /// Accept a task from `identity`: map to a local account, fork the UEP if
    /// needed, route by command, and enqueue.
    pub fn enqueue(
        &mut self,
        id: TaskId,
        identity: &Identity,
        command: impl Into<Sym>,
        now: SimTime,
    ) -> Result<(), FaasError> {
        let command: Sym = command.into();
        if let Some(inj) = &self.injector {
            if inj.crash_due(&self.name, now) {
                self.crash_all(now);
            }
        }
        self.ha_policy.check(identity, now)?;
        let local_user = self
            .mapping
            .resolve(identity)
            .map_err(|_| FaasError::IdentityMappingFailed(identity.username.clone()))?;
        if let Some(inj) = &self.injector {
            if inj.fork_failure_due(&self.name, &identity.username, now) {
                return Err(FaasError::Infrastructure(format!(
                    "mep {} failed to fork a user endpoint for {}",
                    self.name, identity.username
                )));
            }
        }
        self.fork_uep(&local_user)?;
        self.audit_log.push((id, identity.username.clone(), local_user.clone()));
        let pair = self.ueps.get_mut(&local_user).expect("forked above");
        self.cache.mark_dirty(pair.slot);
        if self.template.routes_to_login(&command) {
            pair.login.enqueue(id, command, now)
        } else {
            pair.task.enqueue(id, command, now)
        }
    }

    /// Drain finished outputs across all UEPs.
    pub fn take_finished(&mut self) -> Vec<(TaskId, TaskOutput)> {
        let mut out = std::mem::take(&mut self.pending_crashed);
        for pair in self.ueps.values_mut() {
            pair.login.drain_finished_into(&mut out);
            pair.task.drain_finished_into(&mut out);
        }
        out
    }

    /// Allocation-free variant of [`Self::take_finished`]: appends into `out`
    /// and leaves every internal buffer's capacity in place.
    pub fn drain_finished_into(&mut self, out: &mut Vec<(TaskId, TaskOutput)>) {
        out.append(&mut self.pending_crashed);
        for pair in self.ueps.values_mut() {
            pair.login.drain_finished_into(out);
            pair.task.drain_finished_into(out);
        }
    }

    /// Put back outputs a parallel window drained past their collection
    /// instant. They land at the head of the drain order (`pending_crashed`
    /// drains first), which matches the serial buffer state whenever the
    /// MEP's own buffers are otherwise empty — and they are: a window drains
    /// every UEP before the merge decides anything was stranded.
    pub fn restore_finished(&mut self, items: &mut Vec<(TaskId, TaskOutput)>) {
        self.pending_crashed.append(items);
    }

    /// Stop every UEP.
    pub fn stop(&mut self, now: SimTime) {
        self.cache.mark_all_dirty();
        for pair in self.ueps.values_mut() {
            pair.login.stop(now);
            pair.task.stop(now);
        }
    }
}

impl Advance for MultiUserEndpoint {
    fn next_event(&self) -> Option<SimTime> {
        if self.injector.is_some() || self.cache.any_dirty() {
            return self
                .ueps
                .values()
                .flat_map(|p| [p.login.next_event(), p.task.next_event()])
                .flatten()
                .min();
        }
        let mut next = self.cache.min_stable();
        for &slot in self.cache.volatile_slots() {
            if let Some(t) = self.ueps[&self.slot_users[slot]].next_event() {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        next
    }

    fn advance_to(&mut self, t: SimTime) {
        if self.injector.is_some() {
            // Fault-aware path: advance every pair so each UEP consults the
            // injector at exactly the boundaries the exhaustive scan used.
            if self
                .injector
                .as_ref()
                .is_some_and(|inj| inj.crash_due(&self.name, t))
            {
                self.crash_all(t);
            }
            for pair in self.ueps.values_mut() {
                pair.login.advance_to(t);
                pair.task.advance_to(t);
            }
            return;
        }
        self.refresh_cache();
        self.due_scratch.clear();
        self.due_scratch.extend(self.cache.due(t));
        // Process due pairs in local-user (map key) order — the same order
        // the exhaustive scan advanced them in.
        {
            let users = &self.slot_users;
            self.due_scratch
                .sort_unstable_by(|&a, &b| users[a].cmp(&users[b]));
        }
        for i in 0..self.due_scratch.len() {
            let slot = self.due_scratch[i];
            let pair = self
                .ueps
                .get_mut(&self.slot_users[slot])
                .expect("slot maps to a live uep");
            pair.login.advance_to(t);
            pair.task.advance_to(t);
            self.cache.mark_dirty(slot);
        }
        self.refresh_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{shared, ExecOutcome, SiteRuntime};
    use hpcci_auth::{IdentityId, IdentityProvider};
    use hpcci_cluster::Site;
    use hpcci_sim::drive;

    fn identity(username: &str, provider: &str) -> Identity {
        Identity {
            id: IdentityId(1),
            username: username.to_string(),
            provider: IdentityProvider::new(provider),
            last_authentication_us: 0,
        }
    }

    fn faster_mep() -> MultiUserEndpoint {
        let mut rt = SiteRuntime::new(Site::tamu_faster()).with_scheduler(64);
        rt.site.add_account("x-vhayot", "CIS230030");
        rt.commands.register("git", |env| {
            if env.internet_allowed() {
                ExecOutcome::ok(format!("cloned on {:?} node", env.role), 2.0)
            } else {
                ExecOutcome::fail("fatal: unable to access remote: no route to host", 0.5)
            }
        });
        rt.commands.register("pytest", |env| {
            ExecOutcome::ok(format!("tests ran on {:?} node", env.role), 20.0)
        });
        let site = shared(rt);
        let mut mapping = IdentityMapping::new("tamu-faster");
        mapping.add_explicit("vhayot@uchicago.edu", "x-vhayot");
        MultiUserEndpoint::new("mep-faster", site, mapping, MepTemplate::hpc_split(64, 3600))
    }

    #[test]
    fn identity_mapping_and_audit() {
        let mut mep = faster_mep();
        let id = identity("vhayot@uchicago.edu", "uchicago.edu");
        mep.enqueue(TaskId(1), &id, "pytest -v", SimTime::ZERO).unwrap();
        drive(&mut [&mut mep]);
        let finished = mep.take_finished();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].1.ran_as, "x-vhayot");
        assert_eq!(mep.audit_log().len(), 1);
        assert_eq!(mep.audit_log()[0].1, "vhayot@uchicago.edu");
        assert_eq!(mep.audit_log()[0].2, "x-vhayot");
    }

    #[test]
    fn unmapped_identity_rejected() {
        let mut mep = faster_mep();
        let id = identity("mallory@evil.net", "evil.net");
        assert!(matches!(
            mep.enqueue(TaskId(1), &id, "pytest", SimTime::ZERO),
            Err(FaasError::IdentityMappingFailed(_))
        ));
        assert_eq!(mep.uep_count(), 0, "no UEP forked for unmapped identity");
    }

    #[test]
    fn split_template_routes_clone_to_login_and_tests_to_compute() {
        // The paper's §6.1 core mechanism: on FASTER, compute nodes have no
        // internet. `git clone` must run on the login node to succeed; tests
        // run on compute nodes.
        let mut mep = faster_mep();
        let id = identity("vhayot@uchicago.edu", "uchicago.edu");
        mep.enqueue(TaskId(1), &id, "git clone https://github.com/Parsl/parsl-docking-tutorial", SimTime::ZERO)
            .unwrap();
        mep.enqueue(TaskId(2), &id, "pytest tests/", SimTime::ZERO).unwrap();
        drive(&mut [&mut mep]);
        let mut finished = mep.take_finished();
        finished.sort_by_key(|(id, _)| *id);
        let clone_out = &finished[0].1;
        let test_out = &finished[1].1;
        assert!(clone_out.success(), "clone on login node has internet: {clone_out:?}");
        assert!(clone_out.stdout.contains("Login"));
        assert!(test_out.success());
        assert!(test_out.stdout.contains("Compute"));
    }

    #[test]
    fn naive_single_provider_clone_fails_on_isolated_compute() {
        // Ablation: without the split template, the clone is routed to
        // compute nodes and fails — exactly the failure the MEP template
        // exists to avoid.
        let mut mep = faster_mep();
        mep.template.login_commands.clear();
        let id = identity("vhayot@uchicago.edu", "uchicago.edu");
        mep.enqueue(TaskId(1), &id, "git clone https://github.com/x/y", SimTime::ZERO)
            .unwrap();
        drive(&mut [&mut mep]);
        let finished = mep.take_finished();
        assert!(!finished[0].1.success());
        assert!(finished[0].1.stderr.contains("no route to host"));
    }

    #[test]
    fn ueps_fork_once_per_user() {
        let mut mep = faster_mep();
        let id = identity("vhayot@uchicago.edu", "uchicago.edu");
        mep.enqueue(TaskId(1), &id, "pytest a", SimTime::ZERO).unwrap();
        mep.enqueue(TaskId(2), &id, "pytest b", SimTime::ZERO).unwrap();
        assert_eq!(mep.uep_count(), 1);
    }

    #[test]
    fn ha_policy_enforced_at_mep() {
        let mut mep = faster_mep().with_ha_policy(
            HighAssurancePolicy::permissive().require_provider("access-ci.org"),
        );
        let id = identity("vhayot@uchicago.edu", "uchicago.edu");
        assert!(matches!(
            mep.enqueue(TaskId(1), &id, "pytest", SimTime::ZERO),
            Err(FaasError::Auth(_))
        ));
    }
}
