//! # hpcci-ci — a GitHub-Actions-like CI engine
//!
//! Implements the CI mechanics §4.1 describes and CORRECT builds on:
//!
//! * [`workflow::WorkflowDef`] — events → jobs → steps, with `needs`
//!   dependencies, marketplace action references, and `${{ secrets.* }}` /
//!   `${{ env.* }}` interpolation;
//! * [`secrets::SecretStore`] — organization / repository / environment
//!   scoping, with secret values masked out of every log line the engine
//!   stores;
//! * [`environment::Environment`] — deployment environments with **required
//!   reviewers** and wait timers: the approval gate CORRECT's security model
//!   leans on (§5.2), including the *sole reviewer* recommendation;
//! * [`runner::RunnerPool`] — GitHub-hosted VM runners and self-hosted
//!   runners pinned to a site;
//! * [`artifacts::ArtifactStore`] — uploaded artifacts with the 90-day
//!   retention window §7.4 calls out, deduplicated into a shared
//!   content-addressed store when one is attached;
//! * [`cache::StepCache`] — content-addressed step-result memoization:
//!   reproducible CI means *same inputs → same outputs*, so a step whose
//!   canonical input digest was already executed replays its recorded
//!   verdict instead of re-running (infrastructure failures excluded);
//! * [`engine::CiEngine`] — consumes repository webhooks, instantiates
//!   workflow runs, gates them on approvals, and executes them step by step
//!   through a pluggable [`action::Action`] registry (CORRECT registers
//!   itself as `globus-labs/correct@v1`).
//!
//! Blocking on remote work (a FaaS task finishing) is expressed through
//! [`action::WorldDriver`]: an action advances the shared virtual world until
//! its condition holds, keeping the whole federation deterministic.

pub mod action;
pub mod artifacts;
pub mod cache;
pub mod engine;
pub mod environment;
pub mod error;
pub mod requirements;
pub mod run;
pub mod runner;
pub mod secrets;
pub mod workflow;

pub use action::{Action, StepContext, StepResult, WorldDriver};
pub use artifacts::{Artifact, ArtifactStore};
pub use cache::{CacheMode, CacheStats, CachedStep, StepCache, StepKey};
pub use engine::CiEngine;
pub use environment::Environment;
pub use error::CiError;
pub use run::{RunId, RunStatus, StepRun, WorkflowRun};
pub use runner::{Runner, RunnerKind, RunnerPool};
pub use secrets::{Secret, SecretScope, SecretStore};
pub use workflow::{JobDef, StepAction, StepDef, TriggerEvent, WorkflowDef};
