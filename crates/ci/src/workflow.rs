//! Workflow definitions: the in-memory equivalent of the YAML files of §4.1.

use std::collections::BTreeMap;

/// Events that can trigger a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerEvent {
    /// `on: push` — optionally restricted to specific branches.
    Push { branches: Vec<String> },
    /// `on: pull_request`.
    PullRequest,
    /// `on: schedule` — fire every `period_secs` of virtual time.
    Schedule { period_secs: u64 },
    /// `on: workflow_dispatch` — manual trigger.
    WorkflowDispatch,
}

impl TriggerEvent {
    pub fn push_any() -> TriggerEvent {
        TriggerEvent::Push { branches: Vec::new() }
    }

    pub fn push_to(branch: &str) -> TriggerEvent {
        TriggerEvent::Push {
            branches: vec![branch.to_string()],
        }
    }

    /// Does this trigger match a push to `branch`?
    pub fn matches_push(&self, branch: &str) -> bool {
        match self {
            TriggerEvent::Push { branches } => {
                branches.is_empty() || branches.iter().any(|b| b == branch)
            }
            _ => false,
        }
    }
}

/// What one step does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepAction {
    /// `run:` — a shell command executed on the runner itself.
    Run { command: String },
    /// `uses:` — a marketplace or custom action with `with:` inputs.
    /// Input values may interpolate `${{ secrets.NAME }}` and `${{ env.NAME }}`.
    Uses {
        action: String,
        with: BTreeMap<String, String>,
    },
    /// `actions/upload-artifact` modelled first-class: store a prior step's
    /// stdout (or a named output) as a persistent artifact.
    UploadArtifact { name: String, from_step: String },
}

/// One step in a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepDef {
    /// Step id, referenced by `UploadArtifact::from_step` and outputs.
    pub id: String,
    pub name: String,
    pub action: StepAction,
    /// If true the job continues even when this step fails
    /// (`continue-on-error`). CORRECT's §6.2 setup uploads stdout/stderr
    /// artifacts "regardless of whether the tests pass or fail".
    pub continue_on_error: bool,
}

impl StepDef {
    pub fn run(id: &str, command: &str) -> StepDef {
        StepDef {
            id: id.to_string(),
            name: id.to_string(),
            action: StepAction::Run {
                command: command.to_string(),
            },
            continue_on_error: false,
        }
    }

    pub fn uses(id: &str, action: &str, with: &[(&str, &str)]) -> StepDef {
        StepDef {
            id: id.to_string(),
            name: id.to_string(),
            action: StepAction::Uses {
                action: action.to_string(),
                with: with
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            },
            continue_on_error: false,
        }
    }

    pub fn upload_artifact(id: &str, name: &str, from_step: &str) -> StepDef {
        StepDef {
            id: id.to_string(),
            name: format!("upload {name}"),
            action: StepAction::UploadArtifact {
                name: name.to_string(),
                from_step: from_step.to_string(),
            },
            continue_on_error: false,
        }
    }

    pub fn allow_failure(mut self) -> StepDef {
        self.continue_on_error = true;
        self
    }
}

/// Runner selection for a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunsOn {
    /// A GitHub-hosted VM label, e.g. `"ubuntu-latest"`.
    Hosted(String),
    /// A self-hosted runner registered for the named site.
    SelfHosted { site: String },
}

/// One job in a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDef {
    pub id: String,
    pub runs_on: RunsOn,
    /// Deployment environment gating this job (approval + scoped secrets).
    pub environment: Option<String>,
    /// Jobs that must succeed first.
    pub needs: Vec<String>,
    pub steps: Vec<StepDef>,
}

impl JobDef {
    pub fn new(id: &str) -> JobDef {
        JobDef {
            id: id.to_string(),
            runs_on: RunsOn::Hosted("ubuntu-latest".to_string()),
            environment: None,
            needs: Vec::new(),
            steps: Vec::new(),
        }
    }

    pub fn with_environment(mut self, env: &str) -> JobDef {
        self.environment = Some(env.to_string());
        self
    }

    pub fn with_needs(mut self, needs: &[&str]) -> JobDef {
        self.needs = needs.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_step(mut self, step: StepDef) -> JobDef {
        self.steps.push(step);
        self
    }

    pub fn on_self_hosted(mut self, site: &str) -> JobDef {
        self.runs_on = RunsOn::SelfHosted {
            site: site.to_string(),
        };
        self
    }
}

/// A complete workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowDef {
    pub name: String,
    pub on: Vec<TriggerEvent>,
    pub jobs: Vec<JobDef>,
}

impl WorkflowDef {
    pub fn new(name: &str) -> WorkflowDef {
        WorkflowDef {
            name: name.to_string(),
            on: Vec::new(),
            jobs: Vec::new(),
        }
    }

    pub fn on_event(mut self, t: TriggerEvent) -> WorkflowDef {
        self.on.push(t);
        self
    }

    pub fn with_job(mut self, job: JobDef) -> WorkflowDef {
        self.jobs.push(job);
        self
    }

    /// Validate `needs` references and produce a topological job order.
    /// Deterministic: ready jobs run in definition order.
    pub fn job_order(&self) -> Result<Vec<&JobDef>, (String, String)> {
        let ids: Vec<&str> = self.jobs.iter().map(|j| j.id.as_str()).collect();
        for j in &self.jobs {
            for n in &j.needs {
                if !ids.contains(&n.as_str()) {
                    return Err((j.id.clone(), n.clone()));
                }
            }
        }
        let mut done: Vec<&str> = Vec::new();
        let mut order: Vec<&JobDef> = Vec::new();
        while order.len() < self.jobs.len() {
            let before = order.len();
            for j in &self.jobs {
                if done.contains(&j.id.as_str()) {
                    continue;
                }
                if j.needs.iter().all(|n| done.contains(&n.as_str())) {
                    done.push(&j.id);
                    order.push(j);
                }
            }
            if order.len() == before {
                // Dependency cycle: report the first unresolved job.
                let stuck = self
                    .jobs
                    .iter()
                    .find(|j| !done.contains(&j.id.as_str()))
                    .expect("at least one unresolved");
                return Err((stuck.id.clone(), stuck.needs.join(",")));
            }
        }
        Ok(order)
    }
}

/// Interpolate `${{ secrets.X }}` and `${{ env.X }}` placeholders.
/// Unknown references resolve to an empty string, matching GitHub behaviour.
pub fn interpolate(
    template: &str,
    secrets: &BTreeMap<String, String>,
    env: &BTreeMap<String, String>,
) -> String {
    interpolate_cow(template, secrets, env).into_owned()
}

/// [`interpolate`] without the unconditional allocation: templates with no
/// `${{` placeholder — the overwhelming majority of step commands on the
/// run-execution path — are returned as a borrow. Only templates that
/// actually substitute build a fresh `String`.
pub fn interpolate_cow<'a>(
    template: &'a str,
    secrets: &BTreeMap<String, String>,
    env: &BTreeMap<String, String>,
) -> std::borrow::Cow<'a, str> {
    if !template.contains("${{") {
        return std::borrow::Cow::Borrowed(template);
    }
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find("${{") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 3..];
        let Some(end) = after.find("}}") else {
            out.push_str(&rest[start..]);
            return std::borrow::Cow::Owned(out);
        };
        let expr = after[..end].trim();
        if let Some(name) = expr.strip_prefix("secrets.") {
            if let Some(v) = secrets.get(name) {
                out.push_str(v);
            }
        } else if let Some(name) = expr.strip_prefix("env.") {
            if let Some(v) = env.get(name) {
                out.push_str(v);
            }
        }
        rest = &after[end + 2..];
    }
    out.push_str(rest);
    std::borrow::Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_matching() {
        assert!(TriggerEvent::push_any().matches_push("anything"));
        assert!(TriggerEvent::push_to("main").matches_push("main"));
        assert!(!TriggerEvent::push_to("main").matches_push("dev"));
        assert!(!TriggerEvent::PullRequest.matches_push("main"));
    }

    #[test]
    fn job_order_respects_needs() {
        let wf = WorkflowDef::new("w")
            .with_job(JobDef::new("deploy").with_needs(&["test"]))
            .with_job(JobDef::new("test").with_needs(&["build"]))
            .with_job(JobDef::new("build"));
        let order: Vec<&str> = wf.job_order().unwrap().iter().map(|j| j.id.as_str()).collect();
        assert_eq!(order, vec!["build", "test", "deploy"]);
    }

    #[test]
    fn job_order_rejects_unknown_and_cycles() {
        let wf = WorkflowDef::new("w").with_job(JobDef::new("a").with_needs(&["ghost"]));
        assert_eq!(wf.job_order().unwrap_err(), ("a".to_string(), "ghost".to_string()));

        let cyc = WorkflowDef::new("w")
            .with_job(JobDef::new("a").with_needs(&["b"]))
            .with_job(JobDef::new("b").with_needs(&["a"]));
        assert!(cyc.job_order().is_err());
    }

    #[test]
    fn interpolation_resolves_secrets_and_env() {
        let secrets: BTreeMap<String, String> = [
            ("GLOBUS_ID".to_string(), "client-000001".to_string()),
            ("GLOBUS_SECRET".to_string(), "gcs-abc".to_string()),
        ]
        .into();
        let env: BTreeMap<String, String> =
            [("ENDPOINT_UUID".to_string(), "ep-42".to_string())].into();
        assert_eq!(
            interpolate("${{ secrets.GLOBUS_ID }}", &secrets, &env),
            "client-000001"
        );
        assert_eq!(
            interpolate("endpoint=${{ env.ENDPOINT_UUID }}!", &secrets, &env),
            "endpoint=ep-42!"
        );
        assert_eq!(interpolate("${{ secrets.NOPE }}", &secrets, &env), "");
        assert_eq!(interpolate("no placeholders", &secrets, &env), "no placeholders");
        // Unterminated placeholder passes through untouched.
        assert_eq!(interpolate("${{ secrets.X", &secrets, &env), "${{ secrets.X");
    }

    #[test]
    fn step_builders() {
        let s = StepDef::uses(
            "tox",
            "globus-labs/correct@v1",
            &[("client_id", "${{ secrets.GLOBUS_ID }}"), ("shell_cmd", "tox")],
        )
        .allow_failure();
        assert!(s.continue_on_error);
        match &s.action {
            StepAction::Uses { action, with } => {
                assert_eq!(action, "globus-labs/correct@v1");
                assert_eq!(with["shell_cmd"], "tox");
            }
            _ => panic!("wrong action kind"),
        }
    }
}
