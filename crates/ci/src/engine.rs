//! The CI engine: event intake, approval gating, and run execution.

use crate::action::{Action, StepContext, WorldDriver};
use crate::artifacts::ArtifactStore;
use crate::cache::{chain_digest, infra_tainted, CacheMode, CachedStep, StepCache, StepKey};
use crate::environment::Environment;
use crate::error::CiError;
use crate::run::{RunId, RunStatus, StepRun, WorkflowRun};
use crate::runner::RunnerPool;
use crate::secrets::{mask_secrets, SecretStore};
use crate::workflow::{interpolate_cow, StepAction, StepDef, TriggerEvent, WorkflowDef};
use hpcci_cas::Digest;
use hpcci_obs::Obs;
use hpcci_sim::{Interner, SimDuration, SimTime, Sym};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A recurring schedule derived from `on: schedule` triggers.
#[derive(Debug, Clone)]
struct Schedule {
    repo: Sym,
    workflow: Sym,
    period: SimDuration,
    next_fire: SimTime,
}

/// The CI service.
///
/// ## Allocation discipline
///
/// The engine sits on the full push→run→step→task path, so its per-run state
/// follows the same diet as the event loop: hot identifiers (repo, workflow,
/// job, step, reviewer, endpoint names) are interned [`Sym`]s deduplicated by
/// the engine's [`Interner`]; maps are keyed by `Sym` and probed with plain
/// `&str` (no per-lookup allocation); runs live in a dense arena `Vec`
/// indexed by [`RunId`] rather than a `BTreeMap`; and workflow definitions
/// are `Arc`-shared so instantiating a run never deep-clones a definition.
pub struct CiEngine {
    workflows: BTreeMap<Sym, Vec<Arc<WorkflowDef>>>,
    /// Environments nested by repo then name, so the per-job approval check
    /// probes two small maps with borrowed keys instead of allocating a
    /// `(String, String)` tuple per lookup.
    environments: BTreeMap<Sym, BTreeMap<Sym, Environment>>,
    /// Repo-level env blocks, `Arc`-shared with every run they configure.
    env_vars: BTreeMap<Sym, Arc<BTreeMap<String, String>>>,
    pub secrets: SecretStore,
    pub runners: RunnerPool,
    pub artifacts: ArtifactStore,
    actions: BTreeMap<String, Arc<dyn Action>>,
    /// Run arena: `RunId(n)` lives at index `n - 1`. Ids are handed out
    /// densely from 1, so the arena has no holes and lookup is an index.
    runs: Vec<WorkflowRun>,
    /// Runs ready to execute, with the earliest time execution may begin
    /// (wait timers).
    ready: VecDeque<(RunId, SimTime)>,
    schedules: Vec<Schedule>,
    next_run: u64,
    obs: Obs,
    step_cache: Option<StepCache>,
    cache_mode: CacheMode,
    /// Extra digest folded into every step key's prior-result chain; see
    /// [`CiEngine::set_cache_salt`].
    cache_salt: Digest,
    /// Software-stack fingerprints keyed by endpoint name (`"*"` is the
    /// fallback for steps that name no endpoint). Part of every step key:
    /// a package upgrade at a site must invalidate that site's entries.
    stack_fingerprints: BTreeMap<Sym, Digest>,
    /// Deduplicates every hot identifier the engine stores.
    interner: Interner,
    /// Engine-local metric counters, flushed in one batch by
    /// [`CiEngine::harvest_metrics`]. Bumping a `u64` per run/step replaces
    /// a registry lock + map probe on the trigger and execution paths.
    counters: CiCounters,
}

/// See [`CiEngine::harvest_metrics`].
#[derive(Debug, Default, Clone, Copy)]
struct CiCounters {
    runs_total: u64,
    step_cache_hits: u64,
    step_cache_misses: u64,
    step_cache_uncacheable: u64,
    artifact_logical_bytes: u64,
    artifact_stored_bytes: u64,
}

impl Default for CiEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CiEngine {
    pub fn new() -> Self {
        CiEngine {
            workflows: BTreeMap::new(),
            environments: BTreeMap::new(),
            env_vars: BTreeMap::new(),
            secrets: SecretStore::new(),
            runners: RunnerPool::with_hosted_defaults(),
            artifacts: ArtifactStore::new(),
            actions: BTreeMap::new(),
            runs: Vec::new(),
            ready: VecDeque::new(),
            schedules: Vec::new(),
            next_run: 0,
            obs: Obs::disabled(),
            step_cache: None,
            cache_mode: CacheMode::Off,
            cache_salt: Digest::NONE,
            stack_fingerprints: BTreeMap::new(),
            interner: Interner::new(),
            counters: CiCounters::default(),
        }
    }

    /// Attach an observability handle (run telemetry and artifact accounting).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Publish the engine-local counters to the attached [`Obs`] handle.
    /// Counter metrics batch through here (the federation calls it when it
    /// snapshots); only histogram/span series record inline.
    pub fn harvest_metrics(&self) {
        if !self.obs.is_enabled() {
            return;
        }
        let c = &self.counters;
        self.obs.set_counter("ci.runs_total", c.runs_total);
        self.obs.set_counter("ci.step_cache_hits", c.step_cache_hits);
        self.obs.set_counter("ci.step_cache_misses", c.step_cache_misses);
        self.obs
            .set_counter("ci.step_cache_uncacheable", c.step_cache_uncacheable);
        self.obs
            .set_counter("ci.artifact_logical_bytes", c.artifact_logical_bytes);
        self.obs
            .set_counter("ci.artifact_stored_bytes", c.artifact_stored_bytes);
    }

    /// Install a step-result cache. The artifact store is re-pointed at the
    /// cache's CAS so step results and artifacts dedup against each other.
    /// With [`CacheMode::Off`] the engine never consults the cache and
    /// execution is bit-identical to an engine without one.
    pub fn set_step_cache(&mut self, cache: StepCache, mode: CacheMode) {
        self.artifacts.attach_cas(cache.cas().clone());
        self.step_cache = Some(cache);
        self.cache_mode = mode;
    }

    pub fn step_cache(&self) -> Option<&StepCache> {
        self.step_cache.as_ref()
    }

    pub fn cache_mode(&self) -> CacheMode {
        self.cache_mode
    }

    /// Salt folded into every step key's prior-result chain. Callers set
    /// this to a digest of whatever world state influences execution but is
    /// not visible in the step inputs themselves (e.g. the simulation seed
    /// that jitters runtimes) so recordings from one world are never
    /// replayed into another.
    pub fn set_cache_salt(&mut self, salt: Digest) {
        self.cache_salt = salt;
    }

    pub fn cache_salt(&self) -> Digest {
        self.cache_salt
    }

    /// Register (or refresh) the software-stack fingerprint for an endpoint
    /// name, `"*"` for the global fallback.
    pub fn set_stack_fingerprint(&mut self, endpoint: &str, digest: Digest) {
        let key = self.interner.intern(endpoint);
        self.stack_fingerprints.insert(key, digest);
    }

    /// The currently registered stack fingerprint for an endpoint name.
    pub fn stack_fingerprint(&self, endpoint: &str) -> Option<Digest> {
        self.stack_fingerprints.get(endpoint).copied()
    }

    /// Register a marketplace/custom action under its `uses:` name.
    pub fn register_action(&mut self, name: &str, action: Arc<dyn Action>) {
        self.actions.insert(name.to_string(), action);
    }

    /// Install a workflow file for a repository.
    pub fn add_workflow(&mut self, repo: &str, workflow: WorkflowDef) {
        let repo = self.interner.intern(repo);
        for t in &workflow.on {
            if let TriggerEvent::Schedule { period_secs } = t {
                self.schedules.push(Schedule {
                    repo: repo.clone(),
                    workflow: self.interner.intern(&workflow.name),
                    period: SimDuration::from_secs(*period_secs),
                    next_fire: SimTime::ZERO + SimDuration::from_secs(*period_secs),
                });
            }
        }
        self.workflows.entry(repo).or_default().push(Arc::new(workflow));
    }

    /// Define a deployment environment for a repository.
    pub fn add_environment(&mut self, repo: &str, env: Environment) {
        let repo = self.interner.intern(repo);
        let name = self.interner.intern(&env.name);
        self.environments.entry(repo).or_default().insert(name, env);
    }

    pub fn environment(&self, repo: &str, name: &str) -> Result<&Environment, CiError> {
        self.environments
            .get(repo)
            .and_then(|envs| envs.get(name))
            .ok_or_else(|| CiError::UnknownEnvironment(name.to_string()))
    }

    /// Repository-level env var (`env:` block).
    pub fn set_env_var(&mut self, repo: &str, key: &str, value: &str) {
        let repo = self.interner.intern(repo);
        Arc::make_mut(self.env_vars.entry(repo).or_default())
            .insert(key.to_string(), value.to_string());
    }

    pub fn run(&self, id: RunId) -> Result<&WorkflowRun, CiError> {
        id.0
            .checked_sub(1)
            .and_then(|i| self.runs.get(i as usize))
            .ok_or(CiError::UnknownRun(id))
    }

    fn run_mut(&mut self, id: RunId) -> Option<&mut WorkflowRun> {
        id.0.checked_sub(1).and_then(|i| self.runs.get_mut(i as usize))
    }

    pub fn runs(&self) -> impl Iterator<Item = &WorkflowRun> {
        self.runs.iter()
    }

    /// Runs currently blocked on an approval.
    pub fn awaiting_approval(&self) -> Vec<RunId> {
        self.runs
            .iter()
            .filter(|r| r.status == RunStatus::AwaitingApproval)
            .map(|r| r.id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Triggering
    // ------------------------------------------------------------------

    /// Handle a push webhook: instantiate a run for every workflow in the
    /// repository with a matching push trigger.
    pub fn on_push(
        &mut self,
        repo: &str,
        branch: &str,
        commit: &str,
        now: SimTime,
    ) -> Result<Vec<RunId>, CiError> {
        // Matching defs are collected as Arc clones (not name re-lookups):
        // no per-push allocation, and instantiation skips a second search.
        let matching: Vec<Arc<WorkflowDef>> = self
            .workflows
            .get(repo)
            .map(|list| {
                list.iter()
                    .filter(|w| w.on.iter().any(|t| t.matches_push(branch)))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        matching
            .into_iter()
            .map(|w| self.instantiate_def(repo, &w, branch, commit, now))
            .collect()
    }

    /// Handle a pull-request webhook.
    pub fn on_pull_request(
        &mut self,
        repo: &str,
        head_branch: &str,
        commit: &str,
        now: SimTime,
    ) -> Result<Vec<RunId>, CiError> {
        let matching: Vec<Arc<WorkflowDef>> = self
            .workflows
            .get(repo)
            .map(|list| {
                list.iter()
                    .filter(|w| w.on.iter().any(|t| matches!(t, TriggerEvent::PullRequest)))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        matching
            .into_iter()
            .map(|w| self.instantiate_def(repo, &w, head_branch, commit, now))
            .collect()
    }

    /// Manual `workflow_dispatch`.
    pub fn dispatch(
        &mut self,
        repo: &str,
        workflow: &str,
        branch: &str,
        commit: &str,
        now: SimTime,
    ) -> Result<RunId, CiError> {
        let def = self
            .workflows
            .get(repo)
            .and_then(|list| list.iter().find(|w| w.name == workflow))
            .cloned()
            .ok_or_else(|| CiError::UnknownWorkflow {
                repo: repo.to_string(),
                workflow: workflow.to_string(),
            })?;
        self.instantiate_def(repo, &def, branch, commit, now)
    }

    /// Fire due schedules; returns `(repo, workflow)` pairs the caller should
    /// `dispatch` with the current head commit (the engine does not know the
    /// repository contents). The pairs are interned symbol clones — firing a
    /// schedule allocates nothing.
    pub fn due_schedules(&mut self, now: SimTime) -> Vec<(Sym, Sym)> {
        let mut fired = Vec::new();
        for s in &mut self.schedules {
            while s.next_fire <= now {
                fired.push((s.repo.clone(), s.workflow.clone()));
                s.next_fire += s.period;
            }
        }
        fired
    }

    fn workflow_def(&self, repo: &str, name: &str) -> Result<&Arc<WorkflowDef>, CiError> {
        self.workflows
            .get(repo)
            .and_then(|list| list.iter().find(|w| w.name == name))
            .ok_or_else(|| CiError::UnknownWorkflow {
                repo: repo.to_string(),
                workflow: name.to_string(),
            })
    }

    fn instantiate_def(
        &mut self,
        repo: &str,
        def: &Arc<WorkflowDef>,
        branch: &str,
        commit: &str,
        now: SimTime,
    ) -> Result<RunId, CiError> {
        // Validate job graph and environment references up front.
        def.job_order().map_err(|(job, needs)| CiError::BadJobDependency { job, needs })?;
        let mut needs_approval = false;
        let repo_envs = self.environments.get(repo);
        for job in &def.jobs {
            if let Some(env_name) = &job.environment {
                let env = repo_envs
                    .and_then(|envs| envs.get(env_name.as_str()))
                    .ok_or_else(|| CiError::UnknownEnvironment(env_name.clone()))?;
                if !env.branch_allowed(branch) {
                    return Err(CiError::BranchNotAllowed {
                        environment: env_name.clone(),
                        branch: branch.to_string(),
                    });
                }
                needs_approval |= env.requires_approval();
            }
        }
        self.next_run += 1;
        let id = RunId(self.next_run);
        let status = if needs_approval {
            RunStatus::AwaitingApproval
        } else {
            RunStatus::Queued
        };
        // Repo, workflow and branch names repeat across runs — intern them.
        // Commits are unique per push: a standalone `Sym` keeps them out of
        // the intern table so it stays bounded by the identifier population.
        let run = WorkflowRun {
            id,
            repo: self.interner.intern(repo),
            workflow: self.interner.intern(&def.name),
            branch: self.interner.intern(branch),
            commit: Sym::from(commit),
            status,
            triggered_at: now,
            started_at: None,
            ended_at: None,
            approved_by: None,
            steps: Vec::new(),
        };
        debug_assert_eq!(self.runs.len() as u64 + 1, id.0, "dense run arena");
        self.runs.push(run);
        if status == RunStatus::Queued {
            self.ready.push_back((id, now));
        }
        self.counters.runs_total += 1;
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Approval
    // ------------------------------------------------------------------

    /// Approve an awaiting run. `reviewer` must be a required reviewer of
    /// *every* approval-gated environment the run's jobs target.
    pub fn approve(&mut self, id: RunId, reviewer: &str, now: SimTime) -> Result<(), CiError> {
        let run = self.run(id)?;
        if run.status != RunStatus::AwaitingApproval {
            return Err(CiError::NotAwaitingApproval(id));
        }
        let repo = run.repo.clone();
        let def = self.workflow_def(&repo, &run.workflow)?;
        let repo_envs = self.environments.get(repo.as_str());
        let mut max_wait = SimDuration::ZERO;
        for job in &def.jobs {
            if let Some(env_name) = &job.environment {
                let env = repo_envs
                    .and_then(|envs| envs.get(env_name.as_str()))
                    .ok_or_else(|| CiError::UnknownEnvironment(env_name.clone()))?;
                if env.requires_approval() && !env.is_required_reviewer(reviewer) {
                    return Err(CiError::NotARequiredReviewer {
                        run: id,
                        user: reviewer.to_string(),
                    });
                }
                max_wait = max_wait.max(env.wait_timer);
            }
        }
        let approved_by = self.interner.intern(reviewer);
        let run = self.run_mut(id).expect("looked up above");
        run.status = RunStatus::Queued;
        run.approved_by = Some(approved_by);
        self.ready.push_back((id, now + max_wait));
        Ok(())
    }

    /// Reject an awaiting run.
    pub fn reject(&mut self, id: RunId, reviewer: &str) -> Result<(), CiError> {
        let run = self.run(id)?;
        if run.status != RunStatus::AwaitingApproval {
            return Err(CiError::NotAwaitingApproval(id));
        }
        let repo = run.repo.clone();
        let def = self.workflow_def(&repo, &run.workflow)?;
        let repo_envs = self.environments.get(repo.as_str());
        for job in &def.jobs {
            if let Some(env_name) = &job.environment {
                if let Some(env) = repo_envs.and_then(|envs| envs.get(env_name.as_str())) {
                    if env.requires_approval() && !env.is_required_reviewer(reviewer) {
                        return Err(CiError::NotARequiredReviewer {
                            run: id,
                            user: reviewer.to_string(),
                        });
                    }
                }
            }
        }
        let run = self.run_mut(id).expect("looked up above");
        run.status = RunStatus::Rejected;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Execute every run whose earliest-start has arrived. Returns the ids
    /// executed, in order.
    pub fn execute_ready(&mut self, driver: &mut dyn WorldDriver) -> Vec<RunId> {
        let mut executed = Vec::new();
        while let Some((id, earliest)) = self.ready.pop_front() {
            if driver.now() < earliest {
                // Wait timer not yet elapsed: let virtual time pass.
                driver.sleep(earliest.since(driver.now()));
            }
            self.execute_run(id, driver);
            executed.push(id);
        }
        executed
    }

    fn execute_run(&mut self, id: RunId, driver: &mut dyn WorldDriver) {
        let (repo, workflow, branch, commit) = {
            let run = self.run_mut(id).expect("queued run exists");
            run.status = RunStatus::Running;
            run.started_at = Some(driver.now());
            // Interned handles: four pointer bumps, not four string copies.
            (
                run.repo.clone(),
                run.workflow.clone(),
                run.branch.clone(),
                run.commit.clone(),
            )
        };
        // `Arc` clone — instantiating the run never deep-copies the def.
        let def = self
            .workflow_def(&repo, &workflow)
            .expect("validated at instantiation")
            .clone();
        let span = self.obs.span_start_with(
            "ci.run",
            || format!("{repo}/{workflow} {id}"),
            driver.now(),
        );
        let org = repo.split('/').next().unwrap_or(&repo);
        let repo_env_vars = self
            .env_vars
            .get(repo.as_str())
            .cloned()
            .unwrap_or_default();
        let mask_values = self.secrets.all_values();

        let order = def.job_order().expect("validated at instantiation");
        let mut failed_jobs: Vec<&str> = Vec::new();
        let mut run_failed = false;
        let mut steps_acc: Vec<StepRun> = Vec::new();
        let cache = match self.cache_mode {
            CacheMode::Off => None,
            _ => self.step_cache.clone(),
        };
        // Running digest over every prior step result in the run: later step
        // keys depend on it, so an upstream change invalidates downstream.
        let mut chain = self.cache_salt;

        for job in order {
            if job.needs.iter().any(|n| failed_jobs.contains(&n.as_str())) {
                failed_jobs.push(&job.id);
                continue;
            }
            let job_sym = self.interner.intern(&job.id);
            let runner = match self.runners.select(&job.runs_on) {
                Ok(r) => r.clone(),
                Err(e) => {
                    run_failed = true;
                    failed_jobs.push(&job.id);
                    let rec = StepRun {
                        job: job_sym,
                        step: Sym::Static("<runner>"),
                        success: false,
                        stdout: String::new(),
                        stderr: e.to_string(),
                        outputs: BTreeMap::new(),
                        started: driver.now(),
                        ended: driver.now(),
                    };
                    if cache.is_some() {
                        chain = chain_digest(chain, &rec);
                    }
                    steps_acc.push(rec);
                    continue;
                }
            };
            driver.sleep(runner.startup);
            let secrets = self.secrets.resolve(org, &repo, job.environment.as_deref());
            // Everything keying-related is gated on a live cache: with
            // `CacheMode::Off` no label, key, digest, or chain work runs.
            let runner_label = cache.as_ref().map(|_| runner.cache_label());
            let mut job_failed = false;
            for step in &job.steps {
                let step_sym = self.interner.intern(&step.id);
                let key = runner_label.as_ref().map(|label| {
                    StepKey::derive(
                        &commit,
                        &job.id,
                        step,
                        &secrets,
                        &repo_env_vars,
                        self.stack_digest_for(step, &secrets, &repo_env_vars),
                        label,
                        chain,
                    )
                });

                // Replay: a hit skips execution entirely — the recorded
                // verdict/outputs/artifacts are materialized and virtual
                // time advances by the recorded duration, so the replayed
                // timeline matches the recorded one exactly.
                if self.cache_mode == CacheMode::Replay {
                    if let (Some(cache), Some(key)) = (&cache, &key) {
                        if let Some(hit) = cache.lookup(key) {
                            cache.note_hit();
                            self.counters.step_cache_hits += 1;
                            self.obs.observe("ci.step_replay_us", hit.duration_us);
                            let started = driver.now();
                            driver.sleep(SimDuration::from_micros(hit.duration_us));
                            let ended = driver.now();
                            for (name, digest, _len) in &hit.artifacts {
                                let content =
                                    cache.cas().get(*digest).expect("cached artifact in CAS");
                                self.upload_accounted(id, name, content, ended);
                            }
                            let success = hit.success;
                            let rec = StepRun {
                                job: job_sym.clone(),
                                step: step_sym.clone(),
                                success,
                                stdout: hit.stdout,
                                stderr: hit.stderr,
                                outputs: hit.outputs,
                                started,
                                ended,
                            };
                            chain = chain_digest(chain, &rec);
                            steps_acc.push(rec);
                            if !success {
                                run_failed = true;
                                if !step.continue_on_error {
                                    job_failed = true;
                                    break;
                                }
                            }
                            continue;
                        }
                    }
                }

                let started = driver.now();
                let result = self.execute_step(
                    step, &repo, &branch, &commit, &secrets, &repo_env_vars, &steps_acc, driver,
                );
                let ended = driver.now();
                let success = result.success;
                // Only a live cache consumes the refs; `Vec::new` itself
                // never allocates, so cache-off pays nothing here.
                let mut artifact_refs: Vec<(String, Digest, u64)> = Vec::new();
                for (name, content) in result.artifacts {
                    let (digest, len) = self.upload_accounted(id, &name, content, ended);
                    if cache.is_some() {
                        artifact_refs.push((name, digest, len));
                    }
                }
                let rec = StepRun {
                    job: job_sym.clone(),
                    step: step_sym,
                    success,
                    stdout: mask_secrets(&result.stdout, &mask_values),
                    stderr: mask_secrets(&result.stderr, &mask_values),
                    outputs: result.outputs,
                    started,
                    ended,
                };
                if let (Some(cache), Some(key)) = (&cache, &key) {
                    if infra_tainted(&rec.stdout, &rec.stderr, &rec.outputs) {
                        // A verdict shaped by an endpoint outage, retry, or
                        // token refresh reflects that moment's infrastructure,
                        // not the code — never cache it.
                        cache.note_uncacheable();
                        self.counters.step_cache_uncacheable += 1;
                    } else {
                        cache.note_miss();
                        self.counters.step_cache_misses += 1;
                        cache.record(
                            key,
                            CachedStep {
                                success,
                                stdout: rec.stdout.clone(),
                                stderr: rec.stderr.clone(),
                                outputs: rec.outputs.clone(),
                                artifacts: artifact_refs,
                                duration_us: ended.since(started).as_micros(),
                            },
                        );
                    }
                }
                if cache.is_some() {
                    chain = chain_digest(chain, &rec);
                }
                steps_acc.push(rec);
                if !success {
                    // Soft failure (`continue-on-error`): later steps still
                    // run (so stdout/stderr artifacts upload regardless of
                    // outcome, §6.2), but the run is reported failed either
                    // way — the UI must show the red X of Fig. 5.
                    run_failed = true;
                    if !step.continue_on_error {
                        job_failed = true;
                        break;
                    }
                }
            }
            if job_failed {
                failed_jobs.push(&job.id);
                run_failed = true;
            }
        }

        self.obs.span_end(span, driver.now());
        let run = self.run_mut(id).expect("still exists");
        run.steps = steps_acc;
        run.ended_at = Some(driver.now());
        run.status = if run_failed { RunStatus::Failure } else { RunStatus::Success };
    }

    /// Software-stack fingerprint a step's key should carry: the named
    /// endpoint's stack when the step targets one (the `endpoint_uuid`
    /// input CORRECT steps pass), else the `"*"` fallback.
    fn stack_digest_for(
        &self,
        step: &StepDef,
        secrets: &BTreeMap<String, String>,
        env_vars: &BTreeMap<String, String>,
    ) -> Digest {
        if let StepAction::Uses { with, .. } = &step.action {
            if let Some(raw) = with.get("endpoint_uuid") {
                let endpoint = interpolate_cow(raw, secrets, env_vars);
                if let Some(d) = self.stack_fingerprints.get(endpoint.as_ref()) {
                    return *d;
                }
            }
        }
        self.stack_fingerprints.get("*").copied().unwrap_or(Digest::NONE)
    }

    /// Upload one artifact with logical-vs-stored byte accounting: logical
    /// is what the step produced, stored is what the CAS actually grew by
    /// (zero for a duplicate). Without a CAS the two are equal.
    fn upload_accounted(
        &mut self,
        id: RunId,
        name: &str,
        content: bytes::Bytes,
        now: SimTime,
    ) -> (Digest, u64) {
        let len = content.len() as u64;
        let before = self.artifacts.cas().map(|c| c.stats().stored_bytes);
        let digest = self.artifacts.upload(id, name, content, now);
        let stored = match (before, self.artifacts.cas()) {
            (Some(b), Some(c)) => c.stats().stored_bytes - b,
            _ => len,
        };
        self.counters.artifact_logical_bytes += len;
        self.counters.artifact_stored_bytes += stored;
        (digest, len)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_step(
        &mut self,
        step: &StepDef,
        repo: &Sym,
        branch: &Sym,
        commit: &Sym,
        secrets: &BTreeMap<String, String>,
        env_vars: &Arc<BTreeMap<String, String>>,
        prior_steps: &[StepRun],
        driver: &mut dyn WorldDriver,
    ) -> crate::action::StepResult {
        use crate::action::StepResult;
        match &step.action {
            StepAction::Run { command } => {
                let cmd = interpolate_cow(command, secrets, env_vars);
                // The runner-side shell: commands cost a base latency and
                // fail only when explicitly told to (tests exercise the
                // control flow, not a shell implementation).
                driver.sleep(SimDuration::from_millis(800));
                if cmd.contains("exit 1") {
                    StepResult::fail(format!("$ {cmd}\ncommand failed with exit code 1"))
                } else {
                    StepResult::ok(format!("$ {cmd}\nok"))
                }
            }
            StepAction::Uses { action, with } => {
                let Some(implementation) = self.actions.get(action).cloned() else {
                    return StepResult::fail(format!("unknown action: {action}"));
                };
                let inputs: BTreeMap<String, String> = with
                    .iter()
                    .map(|(k, v)| (k.clone(), interpolate_cow(v, secrets, env_vars).into_owned()))
                    .collect();
                let mut ctx = StepContext {
                    repo: repo.clone(),
                    branch: branch.clone(),
                    commit: commit.clone(),
                    inputs,
                    env: env_vars.clone(),
                    driver,
                };
                implementation.run(&mut ctx)
            }
            StepAction::UploadArtifact { name, from_step } => {
                let Some(source) = prior_steps.iter().find(|s| s.step == from_step.as_str()) else {
                    return StepResult::fail(format!("upload-artifact: no prior step `{from_step}`"));
                };
                let mut content = source.stdout.clone();
                if !source.stderr.is_empty() {
                    content.push_str("\n--- stderr ---\n");
                    content.push_str(&source.stderr);
                }
                StepResult::ok(format!("uploaded artifact {name}"))
                    .with_artifact(name, content)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::NullDriver;
    use crate::environment::Environment;
    use crate::secrets::{Secret, SecretScope};
    use crate::workflow::{JobDef, StepDef, WorkflowDef};

    fn engine_with_workflow(workflow: WorkflowDef) -> CiEngine {
        let mut e = CiEngine::new();
        e.add_workflow("globus-labs/app", workflow);
        e
    }

    fn simple_workflow() -> WorkflowDef {
        WorkflowDef::new("ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("test")
                    .with_step(StepDef::run("install", "pip install -r requirements.txt"))
                    .with_step(StepDef::run("pytest", "pytest -v")),
            )
    }

    #[test]
    fn push_triggers_and_run_succeeds() {
        let mut e = engine_with_workflow(simple_workflow());
        let runs = e
            .on_push("globus-labs/app", "main", "abc123", SimTime::ZERO)
            .unwrap();
        assert_eq!(runs.len(), 1);
        let mut driver = NullDriver::new();
        let executed = e.execute_ready(&mut driver);
        assert_eq!(executed, runs);
        let run = e.run(runs[0]).unwrap();
        assert_eq!(run.status, RunStatus::Success);
        assert_eq!(run.steps.len(), 2);
        assert!(run.badge().contains("passing"));
        assert!(run.started_at.unwrap() < run.ended_at.unwrap());
    }

    #[test]
    fn push_to_unmatched_branch_is_ignored() {
        let wf = WorkflowDef::new("ci")
            .on_event(TriggerEvent::push_to("main"))
            .with_job(JobDef::new("j").with_step(StepDef::run("s", "true")));
        let mut e = engine_with_workflow(wf);
        let runs = e.on_push("globus-labs/app", "dev", "abc", SimTime::ZERO).unwrap();
        assert!(runs.is_empty());
    }

    #[test]
    fn failing_step_fails_run_and_skips_rest() {
        let wf = WorkflowDef::new("ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("test")
                    .with_step(StepDef::run("boom", "bash -c 'exit 1'"))
                    .with_step(StepDef::run("after", "echo unreachable")),
            )
            .with_job(JobDef::new("deploy").with_needs(&["test"]).with_step(StepDef::run("d", "deploy")));
        let mut e = engine_with_workflow(wf);
        let runs = e.on_push("globus-labs/app", "main", "abc", SimTime::ZERO).unwrap();
        let mut driver = NullDriver::new();
        e.execute_ready(&mut driver);
        let run = e.run(runs[0]).unwrap();
        assert_eq!(run.status, RunStatus::Failure);
        // Only the failing step ran; `after` skipped; `deploy` job skipped.
        assert_eq!(run.steps.len(), 1);
        assert!(run.steps[0].stderr.contains("exit code 1") || run.steps[0].stdout.contains("exit"));
    }

    #[test]
    fn continue_on_error_lets_artifact_upload_happen() {
        // §6.2's pattern: store stdout/stderr artifacts regardless of outcome.
        let wf = WorkflowDef::new("psij-ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("test")
                    .with_step(StepDef::run("pytest", "bash -c 'exit 1'").allow_failure())
                    .with_step(StepDef::upload_artifact("save", "pytest-output", "pytest")),
            );
        let mut e = engine_with_workflow(wf);
        let runs = e.on_push("globus-labs/app", "main", "abc", SimTime::ZERO).unwrap();
        let mut driver = NullDriver::new();
        e.execute_ready(&mut driver);
        let run = e.run(runs[0]).unwrap();
        assert_eq!(run.steps.len(), 2, "upload ran despite failure");
        let artifact = e
            .artifacts
            .fetch(runs[0], "pytest-output", driver.now())
            .unwrap();
        assert!(artifact.text().contains("exit code 1"));
        // The run is still reported failed (Fig. 5's red X), even though the
        // soft failure let the artifact upload proceed.
        assert_eq!(run.status, RunStatus::Failure);
    }

    #[test]
    fn environment_approval_gates_execution() {
        let wf = WorkflowDef::new("hpc-ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("remote")
                    .with_environment("anvil-vhayot")
                    .with_step(StepDef::run("s", "run tests")),
            );
        let mut e = engine_with_workflow(wf);
        e.add_environment(
            "globus-labs/app",
            Environment::new("anvil-vhayot").with_reviewer("vhayot"),
        );
        let runs = e.on_push("globus-labs/app", "main", "abc", SimTime::ZERO).unwrap();
        let id = runs[0];
        assert_eq!(e.run(id).unwrap().status, RunStatus::AwaitingApproval);

        // Nothing executes before approval.
        let mut driver = NullDriver::new();
        assert!(e.execute_ready(&mut driver).is_empty());

        // A non-reviewer cannot approve.
        assert!(matches!(
            e.approve(id, "mallory", SimTime::from_secs(5)),
            Err(CiError::NotARequiredReviewer { .. })
        ));

        e.approve(id, "vhayot", SimTime::from_secs(10)).unwrap();
        let executed = e.execute_ready(&mut driver);
        assert_eq!(executed, vec![id]);
        let run = e.run(id).unwrap();
        assert_eq!(run.status, RunStatus::Success);
        assert_eq!(run.approved_by.as_deref(), Some("vhayot"));
    }

    #[test]
    fn rejection_terminates_run() {
        let wf = WorkflowDef::new("hpc-ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("remote")
                    .with_environment("e")
                    .with_step(StepDef::run("s", "x")),
            );
        let mut e = engine_with_workflow(wf);
        e.add_environment("globus-labs/app", Environment::new("e").with_reviewer("r"));
        let id = e.on_push("globus-labs/app", "main", "c", SimTime::ZERO).unwrap()[0];
        e.reject(id, "r").unwrap();
        assert_eq!(e.run(id).unwrap().status, RunStatus::Rejected);
        assert!(matches!(
            e.approve(id, "r", SimTime::ZERO),
            Err(CiError::NotAwaitingApproval(_))
        ));
    }

    #[test]
    fn branch_restriction_blocks_run_creation() {
        let wf = WorkflowDef::new("hpc-ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("remote")
                    .with_environment("prod")
                    .with_step(StepDef::run("s", "x")),
            );
        let mut e = engine_with_workflow(wf);
        e.add_environment(
            "globus-labs/app",
            Environment::new("prod").restrict_branch("main"),
        );
        assert!(matches!(
            e.on_push("globus-labs/app", "evil-branch", "c", SimTime::ZERO),
            Err(CiError::BranchNotAllowed { .. })
        ));
        assert!(e.on_push("globus-labs/app", "main", "c", SimTime::ZERO).is_ok());
    }

    #[test]
    fn secrets_are_masked_in_logs() {
        let mut e = CiEngine::new();
        e.secrets.put(
            SecretScope::Repository("globus-labs/app".into()),
            Secret::new("TOKEN", "hunter2-value"),
        );
        e.add_workflow(
            "globus-labs/app",
            WorkflowDef::new("ci")
                .on_event(TriggerEvent::push_any())
                .with_job(
                    JobDef::new("j")
                        .with_step(StepDef::run("leak", "curl -H 'auth: ${{ secrets.TOKEN }}'")),
                ),
        );
        let id = e.on_push("globus-labs/app", "main", "c", SimTime::ZERO).unwrap()[0];
        let mut driver = NullDriver::new();
        e.execute_ready(&mut driver);
        let log = e.run(id).unwrap().full_log();
        assert!(!log.contains("hunter2-value"), "secret leaked: {log}");
        assert!(log.contains("***"));
    }

    #[test]
    fn custom_action_via_registry() {
        struct Probe;
        impl Action for Probe {
            fn run(&self, ctx: &mut StepContext<'_>) -> crate::action::StepResult {
                crate::action::StepResult::ok(format!(
                    "repo={} branch={} input={}",
                    ctx.repo,
                    ctx.branch,
                    ctx.input("param").unwrap_or("-")
                ))
            }
        }
        let mut e = CiEngine::new();
        e.register_action("acme/probe@v1", Arc::new(Probe));
        e.set_env_var("o/r", "PARAM", "from-env");
        e.add_workflow(
            "o/r",
            WorkflowDef::new("ci")
                .on_event(TriggerEvent::push_any())
                .with_job(
                    JobDef::new("j").with_step(StepDef::uses(
                        "probe",
                        "acme/probe@v1",
                        &[("param", "${{ env.PARAM }}")],
                    )),
                ),
        );
        let id = e.on_push("o/r", "main", "deadbeef", SimTime::ZERO).unwrap()[0];
        let mut driver = NullDriver::new();
        e.execute_ready(&mut driver);
        let run = e.run(id).unwrap();
        assert!(run.steps[0].stdout.contains("repo=o/r"));
        assert!(run.steps[0].stdout.contains("input=from-env"));
    }

    #[test]
    fn unknown_action_fails_step() {
        let mut e = engine_with_workflow(
            WorkflowDef::new("ci")
                .on_event(TriggerEvent::push_any())
                .with_job(JobDef::new("j").with_step(StepDef::uses("x", "ghost/action@v9", &[]))),
        );
        let id = e.on_push("globus-labs/app", "main", "c", SimTime::ZERO).unwrap()[0];
        let mut driver = NullDriver::new();
        e.execute_ready(&mut driver);
        assert_eq!(e.run(id).unwrap().status, RunStatus::Failure);
    }

    #[test]
    fn schedules_fire_periodically() {
        let wf = WorkflowDef::new("nightly")
            .on_event(TriggerEvent::Schedule { period_secs: 3600 })
            .with_job(JobDef::new("j").with_step(StepDef::run("s", "x")));
        let mut e = engine_with_workflow(wf);
        assert!(e.due_schedules(SimTime::from_secs(3599)).is_empty());
        let due = e.due_schedules(SimTime::from_secs(7200));
        assert_eq!(due.len(), 2, "two periods elapsed");
        assert_eq!(due[0].0, "globus-labs/app");
        assert_eq!(due[0].1, "nightly");
        // Next poll fires nothing until the next period.
        assert!(e.due_schedules(SimTime::from_secs(7200)).is_empty());
    }

    #[test]
    fn dispatch_requires_known_workflow() {
        let mut e = engine_with_workflow(simple_workflow());
        assert!(e.dispatch("globus-labs/app", "ci", "main", "c", SimTime::ZERO).is_ok());
        assert!(matches!(
            e.dispatch("globus-labs/app", "ghost", "main", "c", SimTime::ZERO),
            Err(CiError::UnknownWorkflow { .. })
        ));
    }

    #[test]
    fn wait_timer_delays_execution() {
        let wf = WorkflowDef::new("hpc-ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("remote")
                    .with_environment("gated")
                    .with_step(StepDef::run("s", "x")),
            );
        let mut e = engine_with_workflow(wf);
        e.add_environment(
            "globus-labs/app",
            Environment::new("gated")
                .with_reviewer("r")
                .with_wait_timer(SimDuration::from_secs(300)),
        );
        let id = e.on_push("globus-labs/app", "main", "c", SimTime::ZERO).unwrap()[0];
        e.approve(id, "r", SimTime::from_secs(10)).unwrap();
        let mut driver = NullDriver::new();
        e.execute_ready(&mut driver);
        let run = e.run(id).unwrap();
        assert!(run.started_at.unwrap() >= SimTime::from_secs(310), "wait timer honored");
    }

    fn gated_workflow(env: &str) -> WorkflowDef {
        WorkflowDef::new("hpc-ci")
            .on_event(TriggerEvent::push_any())
            .with_job(
                JobDef::new("remote")
                    .with_environment(env)
                    .with_step(StepDef::run("s", "run tests")),
            )
    }

    #[test]
    fn awaiting_approval_tracks_gate_lifecycle() {
        let mut e = engine_with_workflow(gated_workflow("anvil"));
        e.add_environment(
            "globus-labs/app",
            Environment::new("anvil").with_reviewer("vhayot"),
        );
        let a = e.on_push("globus-labs/app", "main", "c1", SimTime::ZERO).unwrap()[0];
        let b = e.on_push("globus-labs/app", "main", "c2", SimTime::from_secs(1)).unwrap()[0];
        assert_eq!(e.awaiting_approval(), vec![a, b]);

        e.approve(a, "vhayot", SimTime::from_secs(2)).unwrap();
        assert_eq!(e.awaiting_approval(), vec![b], "approved run left the gate");

        e.reject(b, "vhayot").unwrap();
        assert!(e.awaiting_approval().is_empty(), "rejected run left the gate");
        assert_eq!(e.run(b).unwrap().status, RunStatus::Rejected);
    }

    /// Every identifier the approval path stores and every byte the run
    /// renders must be unchanged by interning: the strings below are the
    /// contract the golden traces (and scenario transcripts) pin.
    #[test]
    fn approval_identifiers_pinned_across_interning() {
        let mut e = engine_with_workflow(gated_workflow("anvil-vhayot"));
        e.add_environment(
            "globus-labs/app",
            Environment::new("anvil-vhayot").with_reviewer("vhayot"),
        );
        let id = e.on_push("globus-labs/app", "main", "abc123", SimTime::ZERO).unwrap()[0];
        e.approve(id, "vhayot", SimTime::from_secs(5)).unwrap();
        let mut driver = NullDriver::new();
        e.execute_ready(&mut driver);

        let run = e.run(id).unwrap();
        assert_eq!(run.repo.as_str(), "globus-labs/app");
        assert_eq!(run.workflow.as_str(), "hpc-ci");
        assert_eq!(run.branch.as_str(), "main");
        assert_eq!(run.commit.as_str(), "abc123");
        assert_eq!(run.approved_by.as_deref(), Some("vhayot"));
        assert_eq!(run.badge(), "[hpc-ci | passing]");
        assert_eq!(
            run.full_log(),
            "### remote/s [ok]\n$ run tests\nok\n",
            "rendered log bytes must not move under interning"
        );
    }

    /// Scheduled firing returns interned pairs that dispatch cleanly and
    /// re-arm: the dispatch → execute → full_log chain is pinned byte-wise.
    #[test]
    fn due_schedule_pairs_dispatch_and_render_identically() {
        let wf = WorkflowDef::new("nightly")
            .on_event(TriggerEvent::Schedule { period_secs: 3600 })
            .with_job(JobDef::new("j").with_step(StepDef::run("s", "pytest -q")));
        let mut e = engine_with_workflow(wf);
        let due = e.due_schedules(SimTime::from_secs(3600));
        assert_eq!(due.len(), 1);
        let (repo, workflow) = &due[0];
        let id = e
            .dispatch(repo, workflow, "main", "headsha", SimTime::from_secs(3600))
            .unwrap();
        let mut driver = NullDriver::new();
        driver.now = SimTime::from_secs(3600);
        e.execute_ready(&mut driver);
        let run = e.run(id).unwrap();
        assert_eq!(run.status, RunStatus::Success);
        assert_eq!(run.workflow.as_str(), "nightly");
        assert_eq!(run.full_log(), "### j/s [ok]\n$ pytest -q\nok\n");
        // Firing again inside the same period yields nothing.
        assert!(e.due_schedules(SimTime::from_secs(3600)).is_empty());
    }
}
