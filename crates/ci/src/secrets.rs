//! Secret storage with organization / repository / environment scoping.
//!
//! §4.1: "secrets can be stored in the organization, repository, or in an
//! environment for that repository. … environment secrets allow repository
//! administrators to specify access permissions … Secrets cannot be specified
//! per user" — the limitation CORRECT's environment-per-user recommendation
//! works around (§5.2).

use crate::error::CiError;
use std::collections::BTreeMap;
use std::fmt;

/// Where a secret is stored; narrower scopes shadow broader ones.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SecretScope {
    Organization(String),
    Repository(String),
    Environment { repo: String, environment: String },
}

/// A named secret. `Display`/`Debug` never reveal the value.
#[derive(Clone, PartialEq, Eq)]
pub struct Secret {
    pub name: String,
    value: String,
}

impl Secret {
    pub fn new(name: &str, value: &str) -> Secret {
        Secret {
            name: name.to_string(),
            value: value.to_string(),
        }
    }

    /// The engine (not user code) reads values during interpolation.
    pub(crate) fn expose(&self) -> &str {
        &self.value
    }
}

impl fmt::Debug for Secret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Secret({}=***)", self.name)
    }
}

/// The secret store for the whole CI service.
#[derive(Debug, Default)]
pub struct SecretStore {
    secrets: BTreeMap<SecretScope, Vec<Secret>>,
}

impl SecretStore {
    pub fn new() -> Self {
        SecretStore::default()
    }

    pub fn put(&mut self, scope: SecretScope, secret: Secret) {
        let list = self.secrets.entry(scope).or_default();
        list.retain(|s| s.name != secret.name);
        list.push(secret);
    }

    /// Resolve the visible secrets for a job in `repo` (owned by `org`),
    /// optionally inside `environment`. Environment secrets shadow repository
    /// secrets, which shadow organization secrets. Environment secrets are
    /// **only** visible when the job targets that environment.
    pub fn resolve(
        &self,
        org: &str,
        repo: &str,
        environment: Option<&str>,
    ) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        let mut layer = |scope: &SecretScope| {
            if let Some(list) = self.secrets.get(scope) {
                for s in list {
                    out.insert(s.name.clone(), s.expose().to_string());
                }
            }
        };
        layer(&SecretScope::Organization(org.to_string()));
        layer(&SecretScope::Repository(repo.to_string()));
        if let Some(env) = environment {
            layer(&SecretScope::Environment {
                repo: repo.to_string(),
                environment: env.to_string(),
            });
        }
        out
    }

    /// Every secret value currently stored — used by the engine to mask logs.
    pub fn all_values(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .secrets
            .values()
            .flatten()
            .map(|s| s.expose().to_string())
            .collect();
        // Mask longest first so partial overlaps don't leave residue.
        v.sort_by_key(|s| std::cmp::Reverse(s.len()));
        v
    }

    /// Fetch one secret by exact scope and name (admin/test use).
    pub fn get(&self, scope: &SecretScope, name: &str) -> Result<&Secret, CiError> {
        self.secrets
            .get(scope)
            .and_then(|list| list.iter().find(|s| s.name == name))
            .ok_or_else(|| CiError::UnknownSecret(name.to_string()))
    }
}

/// Replace every secret value in `text` with `***`.
pub fn mask_secrets(text: &str, values: &[String]) -> String {
    let mut out = text.to_string();
    for v in values {
        if !v.is_empty() && out.contains(v.as_str()) {
            out = out.replace(v.as_str(), "***");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SecretStore {
        let mut s = SecretStore::new();
        s.put(
            SecretScope::Organization("globus-labs".into()),
            Secret::new("ORG_TOKEN", "org-val"),
        );
        s.put(
            SecretScope::Repository("globus-labs/app".into()),
            Secret::new("GLOBUS_ID", "repo-client-id"),
        );
        s.put(
            SecretScope::Environment {
                repo: "globus-labs/app".into(),
                environment: "anvil-vhayot".into(),
            },
            Secret::new("GLOBUS_SECRET", "env-secret-val"),
        );
        s
    }

    #[test]
    fn scoping_and_shadowing() {
        let s = store();
        let no_env = s.resolve("globus-labs", "globus-labs/app", None);
        assert_eq!(no_env.get("ORG_TOKEN").unwrap(), "org-val");
        assert_eq!(no_env.get("GLOBUS_ID").unwrap(), "repo-client-id");
        assert!(
            !no_env.contains_key("GLOBUS_SECRET"),
            "environment secrets hidden outside the environment"
        );

        let with_env = s.resolve("globus-labs", "globus-labs/app", Some("anvil-vhayot"));
        assert_eq!(with_env.get("GLOBUS_SECRET").unwrap(), "env-secret-val");
    }

    #[test]
    fn narrower_scope_shadows_broader() {
        let mut s = store();
        s.put(
            SecretScope::Environment {
                repo: "globus-labs/app".into(),
                environment: "anvil-vhayot".into(),
            },
            Secret::new("GLOBUS_ID", "env-override"),
        );
        let resolved = s.resolve("globus-labs", "globus-labs/app", Some("anvil-vhayot"));
        assert_eq!(resolved.get("GLOBUS_ID").unwrap(), "env-override");
    }

    #[test]
    fn put_replaces_same_name() {
        let mut s = store();
        s.put(
            SecretScope::Repository("globus-labs/app".into()),
            Secret::new("GLOBUS_ID", "rotated"),
        );
        let resolved = s.resolve("globus-labs", "globus-labs/app", None);
        assert_eq!(resolved.get("GLOBUS_ID").unwrap(), "rotated");
    }

    #[test]
    fn masking_hides_all_values() {
        let s = store();
        let log = "auth with repo-client-id and env-secret-val done";
        let masked = mask_secrets(log, &s.all_values());
        assert_eq!(masked, "auth with *** and *** done");
    }

    #[test]
    fn debug_never_prints_value() {
        let secret = Secret::new("K", "visible-value");
        assert!(!format!("{secret:?}").contains("visible-value"));
    }

    #[test]
    fn get_by_scope() {
        let s = store();
        assert!(s
            .get(&SecretScope::Organization("globus-labs".into()), "ORG_TOKEN")
            .is_ok());
        assert!(matches!(
            s.get(&SecretScope::Organization("globus-labs".into()), "NOPE"),
            Err(CiError::UnknownSecret(_))
        ));
    }
}
