//! The paper's requirement taxonomies (Tables 1 and 3), encoded as data so
//! the bench harness regenerates the tables and the baselines crate can
//! evaluate frameworks against them.

/// A named characteristic with its description — one row of Table 1 or 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Characteristic {
    pub name: &'static str,
    pub description: &'static str,
}

/// Table 1: science-application features important for CI.
pub fn science_app_characteristics() -> Vec<Characteristic> {
    vec![
        Characteristic {
            name: "Collaboration",
            description: "Scientific software consists of multilayered code",
        },
        Characteristic {
            name: "Computational requirements",
            description: "Applications may process large volumes of data, require substantial \
                          amounts of memory, and take a long time to test",
        },
        Characteristic {
            name: "Visualization, Monitoring, Logging",
            description: "It is important to be able to monitor execution, visualize changes, \
                          and access historical information",
        },
        Characteristic {
            name: "Reproducibility",
            description: "Performance and accurate downstream results is important",
        },
    ]
}

/// Table 3: characteristics important for CI of HPC software.
pub fn hpc_ci_characteristics() -> Vec<Characteristic> {
    vec![
        Characteristic {
            name: "Collaborative",
            description: "HPC software is developed by many research groups with access to \
                          different infrastructure.",
        },
        Characteristic {
            name: "Secure",
            description: "User code executing on HPC should not gain elevated privileges and \
                          must be linked to the appropriate user account.",
        },
        Characteristic {
            name: "Lightweight",
            description: "CI should be mindful of resource use.",
        },
    ]
}

/// The three Table-3 requirements as a checklist a CI framework either meets
/// or does not — evaluated by the baselines crate per framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HpcCiCompliance {
    /// Supports collaborators without local site accounts contributing and
    /// observing CI across sites.
    pub collaborative: bool,
    /// Runs user code strictly as the mapped local user, no escalation.
    pub secure: bool,
    /// Avoids permanent services on shared resources / wasteful allocation.
    pub lightweight: bool,
}

impl HpcCiCompliance {
    pub fn all() -> Self {
        HpcCiCompliance {
            collaborative: true,
            secure: true,
            lightweight: true,
        }
    }

    pub fn score(&self) -> u8 {
        self.collaborative as u8 + self.secure as u8 + self.lightweight as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_paper_row_counts() {
        assert_eq!(science_app_characteristics().len(), 4);
        assert_eq!(hpc_ci_characteristics().len(), 3);
    }

    #[test]
    fn compliance_scoring() {
        assert_eq!(HpcCiCompliance::all().score(), 3);
        assert_eq!(HpcCiCompliance::default().score(), 0);
        let partial = HpcCiCompliance {
            secure: true,
            ..HpcCiCompliance::default()
        };
        assert_eq!(partial.score(), 1);
    }
}
