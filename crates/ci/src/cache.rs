//! Step-result memoization: the incremental half of incremental CI.
//!
//! Reproducible CI means *same inputs → same outputs* — so a step whose
//! complete input digest has already been executed need not run again: the
//! recorded verdict, outputs, and artifacts **are** the reproduction, and a
//! real CORRECT deployment replays them instead of burning allocation hours.
//!
//! The step key ([`StepKey::derive`]) covers everything that can change a
//! step's result:
//!
//! * the repository tree (commit id) the run checked out,
//! * the step's fully interpolated action (command / `uses:` inputs),
//! * a fingerprint of every secret resolved for the job (rotated credentials
//!   invalidate),
//! * the target site's software-stack digest (a package upgrade invalidates),
//! * the runner label the job landed on,
//! * a chained digest of every prior step result in the run (dataflow:
//!   `upload-artifact` reads earlier stdout, so earlier changes propagate).
//!
//! Infrastructure-flavored results are **never** cached ([`infra_tainted`]):
//! a verdict shaped by an endpoint outage, a retry, a failover, or a token
//! refresh reflects the infrastructure of that moment, not the code under
//! test — replaying it would launder a transient fault into a permanent one.

use crate::run::StepRun;
use crate::workflow::{interpolate_cow, StepAction, StepDef};
use hpcci_cas::{CasStore, Digest, DigestBuilder};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// How the engine uses the step cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No cache interaction at all — bit-identical to the pre-cache engine.
    #[default]
    Off,
    /// Execute every step and record cacheable results (populate only —
    /// nothing is ever served from the cache).
    Record,
    /// Serve cache hits without executing; execute-and-record on miss.
    Replay,
}

/// Canonical identity of one step execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StepKey(pub Digest);

impl StepKey {
    /// Derive the cache key for a step about to execute.
    #[allow(clippy::too_many_arguments)]
    pub fn derive(
        tree: &str,
        job: &str,
        step: &StepDef,
        secrets: &BTreeMap<String, String>,
        env_vars: &BTreeMap<String, String>,
        stack: Digest,
        runner_label: &str,
        prior_chain: Digest,
    ) -> StepKey {
        let mut b = DigestBuilder::new()
            .str_field("tree", tree)
            .str_field("job", job)
            .str_field("step", &step.id)
            .digest_field("secrets", fingerprint_map("secret", secrets))
            .digest_field("stack", stack)
            .str_field("runner", runner_label)
            .digest_field("prior", prior_chain);
        // The action in its fully interpolated form: what would actually run.
        match &step.action {
            StepAction::Run { command } => {
                // `interpolate_cow` digests placeholder-free commands (the
                // common case) straight from the definition — no temporary.
                b = b.str_field("run", &interpolate_cow(command, secrets, env_vars));
            }
            StepAction::Uses { action, with } => {
                b = b.str_field("uses", action);
                for (k, v) in with {
                    b = b
                        .str_field("with-key", k)
                        .str_field("with-val", &interpolate_cow(v, secrets, env_vars));
                }
            }
            StepAction::UploadArtifact { name, from_step } => {
                b = b.str_field("upload", name).str_field("from", from_step);
            }
        }
        StepKey(b.finish())
    }
}

/// Canonical digest of a string map (secrets, env vars).
pub fn fingerprint_map(label: &str, map: &BTreeMap<String, String>) -> Digest {
    let mut b = DigestBuilder::new().str_field("map", label);
    for (k, v) in map {
        b = b.str_field("key", k).str_field("val", v);
    }
    b.finish()
}

/// Fold one completed step into the running prior-result chain digest.
///
/// Later steps may consume earlier stdout/stderr/outputs (`upload-artifact`
/// does), so the chain makes any upstream change invalidate downstream keys.
pub fn chain_digest(prior: Digest, step: &StepRun) -> Digest {
    let mut b = DigestBuilder::new()
        .digest_field("prior", prior)
        .str_field("job", &step.job)
        .str_field("step", &step.step)
        .u64_field("success", step.success as u64)
        .str_field("stdout", &step.stdout)
        .str_field("stderr", &step.stderr);
    for (k, v) in &step.outputs {
        b = b.str_field("out-key", k).str_field("out-val", v);
    }
    b.finish()
}

/// Log lines the CORRECT action and the fault injector leave behind when a
/// result was shaped by infrastructure rather than by the code under test.
const INFRA_MARKERS: &[&str] = &[
    "infrastructure:",
    "Infrastructure failure",
    "Failing over to sibling",
    "re-authenticating",
    "is stopped",
];

/// Is this step result uncacheable because infrastructure shaped it?
pub fn infra_tainted(stdout: &str, stderr: &str, outputs: &BTreeMap<String, String>) -> bool {
    if outputs.get("failure_kind").map(String::as_str) == Some("infrastructure") {
        return true;
    }
    INFRA_MARKERS
        .iter()
        .any(|m| stdout.contains(m) || stderr.contains(m))
}

/// A memoized step result: everything needed to replay the step without
/// executing it, bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedStep {
    pub success: bool,
    /// Secret-masked stdout, exactly as the producing `StepRun` stored it.
    pub stdout: String,
    /// Secret-masked stderr.
    pub stderr: String,
    pub outputs: BTreeMap<String, String>,
    /// Artifacts the step produced: `(name, CAS digest, logical length)`.
    /// Content lives in the shared [`CasStore`], never inline.
    pub artifacts: Vec<(String, Digest, u64)>,
    /// Virtual time the execution took; replay sleeps exactly this long so
    /// the replayed timeline matches the recorded one.
    pub duration_us: u64,
}

/// Point-in-time cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub entries: u64,
    pub hits: u64,
    pub misses: u64,
    /// Results skipped because [`infra_tainted`] flagged them.
    pub uncacheable: u64,
}

struct CacheInner {
    entries: HashMap<Digest, CachedStep>,
    hits: u64,
    misses: u64,
    uncacheable: u64,
}

/// A cloneable, shareable step-result cache backed by a [`CasStore`].
///
/// Clones share state, so a cache populated by one federation (the cold
/// `Record` pass) can serve another (the warm `Replay` pass) — the bench's
/// cold-vs-warm comparison and any real cross-run reuse work this way.
#[derive(Clone)]
pub struct StepCache {
    inner: Arc<Mutex<CacheInner>>,
    cas: CasStore,
}

impl Default for StepCache {
    fn default() -> Self {
        Self::new()
    }
}

impl StepCache {
    pub fn new() -> StepCache {
        StepCache::with_cas(CasStore::new())
    }

    /// Build over an existing store so artifacts and step results dedup
    /// against content other layers already hold.
    pub fn with_cas(cas: CasStore) -> StepCache {
        StepCache {
            inner: Arc::new(Mutex::new(CacheInner {
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
                uncacheable: 0,
            })),
            cas,
        }
    }

    /// The content store cached artifacts live in.
    pub fn cas(&self) -> &CasStore {
        &self.cas
    }

    /// Look a key up without touching hit/miss accounting (the engine calls
    /// [`note_hit`](Self::note_hit)/[`note_miss`](Self::note_miss) once it
    /// knows how the lookup was used).
    pub fn lookup(&self, key: &StepKey) -> Option<CachedStep> {
        self.inner.lock().entries.get(&key.0).cloned()
    }

    pub fn record(&self, key: &StepKey, entry: CachedStep) {
        self.inner.lock().entries.insert(key.0, entry);
    }

    pub fn note_hit(&self) {
        self.inner.lock().hits += 1;
    }

    pub fn note_miss(&self) {
        self.inner.lock().misses += 1;
    }

    pub fn note_uncacheable(&self) {
        self.inner.lock().uncacheable += 1;
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            entries: inner.entries.len() as u64,
            hits: inner.hits,
            misses: inner.misses,
            uncacheable: inner.uncacheable,
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_sim::SimTime;

    fn base_key(command: &str, tree: &str, stack: Digest) -> StepKey {
        let step = StepDef::run("build", command);
        StepKey::derive(
            tree,
            "job",
            &step,
            &BTreeMap::new(),
            &BTreeMap::new(),
            stack,
            "ubuntu-latest",
            Digest::NONE,
        )
    }

    #[test]
    fn key_is_deterministic() {
        let a = base_key("make", "t1", Digest::NONE);
        let b = base_key("make", "t1", Digest::NONE);
        assert_eq!(a, b);
    }

    #[test]
    fn any_field_perturbation_changes_key() {
        let base = base_key("make", "t1", Digest::NONE);
        assert_ne!(base, base_key("make -j2", "t1", Digest::NONE), "command");
        assert_ne!(base, base_key("make", "t2", Digest::NONE), "tree");
        assert_ne!(
            base,
            base_key("make", "t1", Digest::of_str("gcc-13")),
            "stack"
        );
    }

    #[test]
    fn interpolation_feeds_the_key() {
        let step = StepDef::run("build", "deploy --token ${{ secrets.T }}");
        let key_of = |secret: &str| {
            let mut secrets = BTreeMap::new();
            secrets.insert("T".to_string(), secret.to_string());
            StepKey::derive(
                "t",
                "j",
                &step,
                &secrets,
                &BTreeMap::new(),
                Digest::NONE,
                "r",
                Digest::NONE,
            )
        };
        assert_ne!(key_of("old-token"), key_of("rotated-token"));
    }

    #[test]
    fn chain_propagates_prior_changes() {
        let mk = |stdout: &str| StepRun {
            job: "j".into(),
            step: "s".into(),
            success: true,
            stdout: stdout.into(),
            stderr: String::new(),
            outputs: BTreeMap::new(),
            started: SimTime::ZERO,
            ended: SimTime::ZERO,
        };
        let a = chain_digest(Digest::NONE, &mk("4 passed"));
        let b = chain_digest(Digest::NONE, &mk("3 passed, 1 failed"));
        assert_ne!(a, b);
    }

    #[test]
    fn infra_taint_detection() {
        let clean: BTreeMap<String, String> = BTreeMap::new();
        assert!(!infra_tainted("$ tox\nok", "", &clean));
        assert!(infra_tainted(
            "Infrastructure failure (endpoint x is stopped); retry 1/3...",
            "",
            &clean
        ));
        assert!(infra_tainted("", "infrastructure: endpoint unreachable", &clean));
        let mut outputs = BTreeMap::new();
        outputs.insert("failure_kind".to_string(), "infrastructure".to_string());
        assert!(infra_tainted("looks fine", "", &outputs));
        outputs.insert("failure_kind".to_string(), "test".to_string());
        assert!(!infra_tainted("looks fine", "", &outputs));
    }

    #[test]
    fn cache_round_trip_and_stats() {
        let cache = StepCache::new();
        let key = base_key("make", "t", Digest::NONE);
        assert!(cache.lookup(&key).is_none());
        let entry = CachedStep {
            success: true,
            stdout: "$ make\nok".into(),
            stderr: String::new(),
            outputs: BTreeMap::new(),
            artifacts: vec![("log".into(), Digest::of_str("content"), 7)],
            duration_us: 800_000,
        };
        cache.record(&key, entry.clone());
        cache.note_miss();
        assert_eq!(cache.lookup(&key), Some(entry));
        cache.note_hit();
        cache.note_uncacheable();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.uncacheable, 1);
        // Clones share state.
        assert_eq!(cache.clone().stats(), stats);
    }
}
