//! CI engine errors.

use crate::run::RunId;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CiError {
    UnknownWorkflow { repo: String, workflow: String },
    UnknownRun(RunId),
    UnknownEnvironment(String),
    UnknownAction(String),
    UnknownSecret(String),
    /// No live artifact with `name` exists for `run` (missing or expired).
    UnknownArtifact { run: RunId, name: String },
    /// The run is not awaiting approval (already approved/executed/rejected).
    NotAwaitingApproval(RunId),
    /// The approving user is not a required reviewer of the environment.
    NotARequiredReviewer { run: RunId, user: String },
    /// The triggering branch is not allowed to use the environment.
    BranchNotAllowed { environment: String, branch: String },
    /// A job's `needs` reference a job id that does not exist.
    BadJobDependency { job: String, needs: String },
    /// No runner satisfies the job's `runs_on` selector.
    NoRunnerAvailable(String),
}

impl fmt::Display for CiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiError::UnknownWorkflow { repo, workflow } => {
                write!(f, "unknown workflow {workflow} in {repo}")
            }
            CiError::UnknownRun(id) => write!(f, "unknown run {id}"),
            CiError::UnknownEnvironment(e) => write!(f, "unknown environment {e}"),
            CiError::UnknownAction(a) => write!(f, "unknown action {a}"),
            CiError::UnknownSecret(s) => write!(f, "unknown secret {s}"),
            CiError::UnknownArtifact { run, name } => {
                write!(f, "unknown artifact {name} for run {run}")
            }
            CiError::NotAwaitingApproval(id) => write!(f, "run {id} is not awaiting approval"),
            CiError::NotARequiredReviewer { run, user } => {
                write!(f, "{user} is not a required reviewer for run {run}")
            }
            CiError::BranchNotAllowed { environment, branch } => {
                write!(f, "branch {branch} may not deploy to environment {environment}")
            }
            CiError::BadJobDependency { job, needs } => {
                write!(f, "job {job} needs unknown job {needs}")
            }
            CiError::NoRunnerAvailable(sel) => write!(f, "no runner matches selector {sel}"),
        }
    }
}

impl std::error::Error for CiError {}
