//! Workflow runs: instantiated workflows with per-step results and logs.

use hpcci_sim::{SimTime, Sym};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Run identifier, unique per CI service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u64);

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

/// Overall run status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Queued behind an environment approval gate.
    AwaitingApproval,
    /// Ready to execute (approved or no gate).
    Queued,
    Running,
    Success,
    Failure,
    /// Rejected by a reviewer.
    Rejected,
}

impl RunStatus {
    pub fn is_terminal(&self) -> bool {
        matches!(self, RunStatus::Success | RunStatus::Failure | RunStatus::Rejected)
    }
}

/// Result of one executed step.
///
/// Job and step ids are interned [`Sym`]s: a workflow's ids repeat across
/// every run it triggers, so each `StepRun` holds a shared handle instead of
/// its own `String` pair.
#[derive(Debug, Clone)]
pub struct StepRun {
    pub job: Sym,
    pub step: Sym,
    pub success: bool,
    /// Secret-masked stdout.
    pub stdout: String,
    /// Secret-masked stderr.
    pub stderr: String,
    pub outputs: BTreeMap<String, String>,
    pub started: SimTime,
    pub ended: SimTime,
}

/// One instantiated workflow run.
///
/// Hot identifiers (repo, workflow, branch, reviewer) are interned — ten
/// thousand runs of the same workflow share four allocations, not forty
/// thousand. The commit id is a standalone [`Sym`] (unique per push, so
/// interning it would only grow the intern table).
#[derive(Debug, Clone)]
pub struct WorkflowRun {
    pub id: RunId,
    pub repo: Sym,
    pub workflow: Sym,
    pub branch: Sym,
    pub commit: Sym,
    pub status: RunStatus,
    pub triggered_at: SimTime,
    pub started_at: Option<SimTime>,
    pub ended_at: Option<SimTime>,
    pub approved_by: Option<Sym>,
    pub steps: Vec<StepRun>,
}

impl WorkflowRun {
    /// Find a completed step's record.
    pub fn step(&self, step_id: &str) -> Option<&StepRun> {
        self.steps.iter().find(|s| s.step == step_id)
    }

    /// The status badge string a README would embed — the visible outcome of
    /// continuous reproducibility evaluation.
    pub fn badge(&self) -> String {
        let label = match self.status {
            RunStatus::Success => "passing",
            RunStatus::Failure => "failing",
            RunStatus::Rejected => "rejected",
            RunStatus::AwaitingApproval => "awaiting approval",
            RunStatus::Queued | RunStatus::Running => "in progress",
        };
        format!("[{} | {}]", self.workflow, label)
    }

    /// Full run log: every step's stdout/stderr in order.
    pub fn full_log(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            let _ = writeln!(
                out,
                "### {}/{} [{}]",
                s.job,
                s.step,
                if s.success { "ok" } else { "FAILED" }
            );
            if !s.stdout.is_empty() {
                out.push_str(&s.stdout);
                if !s.stdout.ends_with('\n') {
                    out.push('\n');
                }
            }
            if !s.stderr.is_empty() {
                out.push_str("--- stderr ---\n");
                out.push_str(&s.stderr);
                if !s.stderr.ends_with('\n') {
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> WorkflowRun {
        WorkflowRun {
            id: RunId(1),
            repo: "o/r".into(),
            workflow: "ci".into(),
            branch: "main".into(),
            commit: "abc".into(),
            status: RunStatus::Success,
            triggered_at: SimTime::ZERO,
            started_at: Some(SimTime::from_secs(1)),
            ended_at: Some(SimTime::from_secs(5)),
            approved_by: None,
            steps: vec![
                StepRun {
                    job: "test".into(),
                    step: "tox".into(),
                    success: true,
                    stdout: "4 passed".into(),
                    stderr: String::new(),
                    outputs: BTreeMap::new(),
                    started: SimTime::from_secs(1),
                    ended: SimTime::from_secs(4),
                },
                StepRun {
                    job: "test".into(),
                    step: "lint".into(),
                    success: false,
                    stdout: String::new(),
                    stderr: "E501 line too long".into(),
                    outputs: BTreeMap::new(),
                    started: SimTime::from_secs(4),
                    ended: SimTime::from_secs(5),
                },
            ],
        }
    }

    #[test]
    fn badge_reflects_status() {
        let mut r = run();
        assert_eq!(r.badge(), "[ci | passing]");
        r.status = RunStatus::Failure;
        assert_eq!(r.badge(), "[ci | failing]");
        r.status = RunStatus::AwaitingApproval;
        assert!(r.badge().contains("awaiting approval"));
    }

    #[test]
    fn full_log_includes_both_streams() {
        let log = run().full_log();
        assert!(log.contains("4 passed"));
        assert!(log.contains("E501"));
        assert!(log.contains("[FAILED]"));
        assert!(log.contains("[ok]"));
    }

    #[test]
    fn step_lookup() {
        let r = run();
        assert!(r.step("tox").unwrap().success);
        assert!(r.step("missing").is_none());
    }

    #[test]
    fn terminal_statuses() {
        assert!(RunStatus::Success.is_terminal());
        assert!(RunStatus::Rejected.is_terminal());
        assert!(!RunStatus::Queued.is_terminal());
        assert!(!RunStatus::AwaitingApproval.is_terminal());
    }
}
