//! The pluggable action interface and the world-driving protocol.
//!
//! Marketplace actions (§4.1) are Rust implementations of [`Action`]
//! registered with the engine by name. An action that must wait on remote
//! progress — CORRECT blocking until its FaaS task returns — advances the
//! shared virtual world through [`WorldDriver`] instead of sleeping, which
//! keeps every run deterministic.

use bytes::Bytes;
use hpcci_sim::{SimDuration, SimTime, Sym};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Advances the federation's virtual time. Implemented by whatever owns the
/// full component set (see `correct-core`'s `Federation`). Actions call
/// [`WorldDriver::step`] in a loop until their completion condition holds.
pub trait WorldDriver {
    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Advance the world to its next internal event. Returns `false` when no
    /// component has pending work (quiescent) — callers must treat that as
    /// "my condition will never become true" and fail rather than spin.
    fn step(&mut self) -> bool;

    /// Let `d` of virtual time pass (processing any events inside it).
    fn sleep(&mut self, d: SimDuration);
}

/// A no-progress driver for tests and for actions that never block.
pub struct NullDriver {
    pub now: SimTime,
}

impl NullDriver {
    pub fn new() -> Self {
        NullDriver { now: SimTime::ZERO }
    }
}

impl Default for NullDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl WorldDriver for NullDriver {
    fn now(&self) -> SimTime {
        self.now
    }
    fn step(&mut self) -> bool {
        false
    }
    fn sleep(&mut self, d: SimDuration) {
        self.now += d;
    }
}

/// Everything a step sees when it executes.
///
/// Identifier fields are interned [`Sym`]s and the env block is `Arc`-shared
/// with the engine: building a context per step costs handle clones, not a
/// copy of every string the run carries.
pub struct StepContext<'a> {
    /// Repository the run belongs to, `"owner/name"`.
    pub repo: Sym,
    /// Branch that triggered the run.
    pub branch: Sym,
    /// Commit hash string of the run's snapshot.
    pub commit: Sym,
    /// Resolved `with:` inputs (secrets/env already interpolated).
    pub inputs: BTreeMap<String, String>,
    /// Repository-level env vars visible to the run.
    pub env: Arc<BTreeMap<String, String>>,
    /// The virtual-world driver for blocking operations.
    pub driver: &'a mut dyn WorldDriver,
}

impl StepContext<'_> {
    /// Required input or a descriptive error string.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.inputs
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required input `{key}`"))
    }

    pub fn input(&self, key: &str) -> Option<&str> {
        self.inputs.get(key).map(String::as_str)
    }
}

/// What a step produced.
#[derive(Debug, Clone, Default)]
pub struct StepResult {
    pub success: bool,
    pub stdout: String,
    pub stderr: String,
    /// Named outputs consumable by later steps.
    pub outputs: BTreeMap<String, String>,
    /// Artifacts to persist (name, bytes).
    pub artifacts: Vec<(String, Bytes)>,
}

impl StepResult {
    pub fn ok(stdout: impl Into<String>) -> StepResult {
        StepResult {
            success: true,
            stdout: stdout.into(),
            ..StepResult::default()
        }
    }

    pub fn fail(stderr: impl Into<String>) -> StepResult {
        StepResult {
            success: false,
            stderr: stderr.into(),
            ..StepResult::default()
        }
    }

    pub fn with_output(mut self, key: &str, value: &str) -> StepResult {
        self.outputs.insert(key.to_string(), value.to_string());
        self
    }

    pub fn with_artifact(mut self, name: &str, content: impl Into<Bytes>) -> StepResult {
        self.artifacts.push((name.to_string(), content.into()));
        self
    }
}

/// A marketplace/custom action.
pub trait Action {
    /// Execute the action. Implementations may block on remote progress by
    /// driving `ctx.driver`.
    fn run(&self, ctx: &mut StepContext<'_>) -> StepResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Action for Echo {
        fn run(&self, ctx: &mut StepContext<'_>) -> StepResult {
            match ctx.require("message") {
                Ok(m) => StepResult::ok(m.to_string()).with_output("echoed", m),
                Err(e) => StepResult::fail(e),
            }
        }
    }

    fn ctx<'a>(driver: &'a mut NullDriver, inputs: &[(&str, &str)]) -> StepContext<'a> {
        StepContext {
            repo: "o/r".into(),
            branch: "main".into(),
            commit: "abc".into(),
            inputs: inputs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            env: Default::default(),
            driver,
        }
    }

    #[test]
    fn action_reads_inputs_and_produces_outputs() {
        let mut driver = NullDriver::new();
        let mut c = ctx(&mut driver, &[("message", "hello")]);
        let r = Echo.run(&mut c);
        assert!(r.success);
        assert_eq!(r.stdout, "hello");
        assert_eq!(r.outputs["echoed"], "hello");
    }

    #[test]
    fn missing_required_input_fails() {
        let mut driver = NullDriver::new();
        let mut c = ctx(&mut driver, &[]);
        let r = Echo.run(&mut c);
        assert!(!r.success);
        assert!(r.stderr.contains("message"));
    }

    #[test]
    fn null_driver_sleep_advances_time() {
        let mut d = NullDriver::new();
        d.sleep(SimDuration::from_secs(3));
        assert_eq!(d.now(), SimTime::from_secs(3));
        assert!(!d.step());
    }

    #[test]
    fn step_result_builders() {
        let r = StepResult::ok("out").with_artifact("log.txt", "content");
        assert_eq!(r.artifacts.len(), 1);
        assert_eq!(r.artifacts[0].0, "log.txt");
    }
}
