//! Workflow artifacts with retention.
//!
//! "GitHub artifacts remain available for only 90 days" (§7.4) — retention is
//! modelled so the paper's recommendation (persist important artifacts to a
//! permanent archive) is demonstrable: an expired artifact really disappears.

use crate::error::CiError;
use crate::run::RunId;
use bytes::Bytes;
use hpcci_cas::{CasStore, Digest};
use hpcci_sim::{FaultInjector, SimDuration, SimTime};

/// Default retention window.
pub const RETENTION: SimDuration = SimDuration::from_hours(90 * 24);

/// One stored artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub run: RunId,
    pub name: String,
    /// With a CAS attached this view shares storage with every other upload
    /// of the same content; without one it owns its bytes.
    pub content: Bytes,
    /// CAS address of the content; [`Digest::NONE`] when no store is attached.
    pub digest: Digest,
    pub uploaded_at: SimTime,
    pub expires_at: SimTime,
}

impl Artifact {
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.content).into_owned()
    }
}

/// The artifact store for the CI service.
#[derive(Default)]
pub struct ArtifactStore {
    artifacts: Vec<Artifact>,
    injector: Option<FaultInjector>,
    cas: Option<CasStore>,
}

impl ArtifactStore {
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Attach a fault injector for write-corruption faults.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Back the store with a content-addressed store: uploads dedup into it
    /// and expired artifacts release their references on purge.
    pub fn attach_cas(&mut self, cas: CasStore) {
        self.cas = Some(cas);
    }

    pub fn cas(&self) -> Option<&CasStore> {
        self.cas.as_ref()
    }

    /// Store an artifact; returns the content digest ([`Digest::NONE`] when
    /// no CAS is attached).
    pub fn upload(
        &mut self,
        run: RunId,
        name: &str,
        content: impl Into<Bytes>,
        now: SimTime,
    ) -> Digest {
        let content = content.into();
        if let Some(inj) = &self.injector {
            if inj.corruption_due(name, now) {
                // The first write lands corrupted; the store's checksum
                // verification catches the mismatch and the upload is retried
                // with the same bytes — the stored artifact stays identical.
                inj.record(
                    now,
                    "ci.artifacts",
                    "fault.recover",
                    format!("checksum mismatch on '{name}' detected; clean copy re-uploaded"),
                );
            }
        }
        let (content, digest) = match &self.cas {
            Some(cas) => {
                let digest = cas.put(&content);
                // The store's view of the content is the CAS object itself:
                // duplicate uploads share one allocation.
                (cas.get(digest).expect("just stored"), digest)
            }
            None => (content, Digest::NONE),
        };
        self.artifacts.push(Artifact {
            run,
            name: name.to_string(),
            content,
            digest,
            uploaded_at: now,
            expires_at: now + RETENTION,
        });
        digest
    }

    /// Fetch a live artifact by run and name.
    pub fn fetch(&self, run: RunId, name: &str, now: SimTime) -> Result<&Artifact, CiError> {
        self.artifacts
            .iter()
            .find(|a| a.run == run && a.name == name && now < a.expires_at)
            .ok_or_else(|| CiError::UnknownArtifact {
                run,
                name: name.to_string(),
            })
    }

    /// All live artifacts of a run.
    pub fn of_run(&self, run: RunId, now: SimTime) -> Vec<&Artifact> {
        self.artifacts
            .iter()
            .filter(|a| a.run == run && now < a.expires_at)
            .collect()
    }

    /// Drop expired artifacts, releasing their CAS references; returns how
    /// many were purged.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.artifacts.len();
        let cas = self.cas.clone();
        self.artifacts.retain(|a| {
            let live = now < a.expires_at;
            if !live {
                if let (Some(cas), false) = (&cas, a.digest.is_none()) {
                    cas.release(a.digest);
                }
            }
            live
        });
        before - self.artifacts.len()
    }

    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_and_fetch() {
        let mut store = ArtifactStore::new();
        store.upload(RunId(1), "stdout.txt", "test output", SimTime::ZERO);
        let a = store.fetch(RunId(1), "stdout.txt", SimTime::from_secs(10)).unwrap();
        assert_eq!(a.text(), "test output");
        assert!(store.fetch(RunId(2), "stdout.txt", SimTime::ZERO).is_err());
        assert!(store.fetch(RunId(1), "other", SimTime::ZERO).is_err());
    }

    #[test]
    fn artifacts_expire_after_90_days() {
        let mut store = ArtifactStore::new();
        store.upload(RunId(1), "log", "x", SimTime::ZERO);
        let day89 = SimTime::from_secs(89 * 24 * 3600);
        let day91 = SimTime::from_secs(91 * 24 * 3600);
        assert!(store.fetch(RunId(1), "log", day89).is_ok());
        assert!(store.fetch(RunId(1), "log", day91).is_err());
        assert_eq!(store.purge_expired(day91), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn cas_backed_uploads_dedup() {
        let mut store = ArtifactStore::new();
        store.attach_cas(CasStore::new());
        let d1 = store.upload(RunId(1), "out", "same payload", SimTime::ZERO);
        let d2 = store.upload(RunId(2), "out", "same payload", SimTime::ZERO);
        assert_eq!(d1, d2);
        assert!(!d1.is_none());
        let stats = store.cas().unwrap().stats();
        assert_eq!(stats.logical_bytes, 24);
        assert_eq!(stats.stored_bytes, 12, "second upload stored nothing");
        assert_eq!(
            store.fetch(RunId(2), "out", SimTime::from_secs(1)).unwrap().text(),
            "same payload"
        );
    }

    #[test]
    fn purge_releases_cas_references() {
        let mut store = ArtifactStore::new();
        let cas = CasStore::new();
        store.attach_cas(cas.clone());
        let day = |n: u64| SimTime::from_secs(n * 24 * 3600);
        let d = store.upload(RunId(1), "log", "x", SimTime::ZERO);
        store.upload(RunId(2), "log", "x", day(2));
        assert_eq!(store.purge_expired(day(91)), 1, "only run 1's upload expired");
        assert!(cas.contains(d), "run 2 still references the content");
        assert_eq!(store.purge_expired(day(93)), 1);
        assert!(!cas.contains(d), "last reference released");
        assert_eq!(cas.stats().stored_bytes, 0);
    }

    #[test]
    fn of_run_lists_only_that_run() {
        let mut store = ArtifactStore::new();
        store.upload(RunId(1), "a", "1", SimTime::ZERO);
        store.upload(RunId(1), "b", "2", SimTime::ZERO);
        store.upload(RunId(2), "c", "3", SimTime::ZERO);
        assert_eq!(store.of_run(RunId(1), SimTime::from_secs(1)).len(), 2);
        assert_eq!(store.of_run(RunId(2), SimTime::from_secs(1)).len(), 1);
    }
}
