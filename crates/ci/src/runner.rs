//! Runners: where workflow jobs execute.
//!
//! GitHub hosts VM runners on Azure (§4.1); CORRECT deliberately runs only on
//! these hosted runners and reaches HPC through FaaS, while the baseline
//! frameworks of §4.4 install *self-hosted* runners on site login nodes.

use crate::error::CiError;
use crate::workflow::RunsOn;
use hpcci_sim::SimDuration;

/// Hosted-runner hardware classes from §4.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerKind {
    /// GitHub-hosted VM: OS label + architecture.
    Hosted { label: String, arch: String },
    /// Self-hosted runner pinned to a federation site (login node).
    SelfHosted { site: String },
}

/// One registered runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Runner {
    pub id: u32,
    pub kind: RunnerKind,
    /// VM boot / job pickup latency charged before the first step.
    pub startup: SimDuration,
}

impl Runner {
    pub fn hosted(id: u32, label: &str) -> Runner {
        Runner {
            id,
            kind: RunnerKind::Hosted {
                label: label.to_string(),
                arch: "x64".to_string(),
            },
            startup: SimDuration::from_secs(8),
        }
    }

    pub fn self_hosted(id: u32, site: &str) -> Runner {
        Runner {
            id,
            kind: RunnerKind::SelfHosted {
                site: site.to_string(),
            },
            // Long-lived daemon: effectively instant pickup.
            startup: SimDuration::from_millis(200),
        }
    }

    /// Stable identity of the execution substrate, used in step-cache keys:
    /// a result computed on one runner class must not replay on another.
    pub fn cache_label(&self) -> String {
        match &self.kind {
            RunnerKind::Hosted { label, arch } => format!("hosted/{label}/{arch}"),
            RunnerKind::SelfHosted { site } => format!("self-hosted/{site}"),
        }
    }

    pub fn satisfies(&self, selector: &RunsOn) -> bool {
        match (selector, &self.kind) {
            (RunsOn::Hosted(want), RunnerKind::Hosted { label, .. }) => want == label,
            (RunsOn::SelfHosted { site: want }, RunnerKind::SelfHosted { site }) => want == site,
            _ => false,
        }
    }
}

/// The service's runner inventory.
#[derive(Debug, Default)]
pub struct RunnerPool {
    runners: Vec<Runner>,
    next_id: u32,
}

impl RunnerPool {
    pub fn new() -> Self {
        RunnerPool::default()
    }

    /// A pool with the standard hosted labels.
    pub fn with_hosted_defaults() -> Self {
        let mut p = RunnerPool::new();
        for label in ["ubuntu-latest", "windows-latest", "macos-latest"] {
            p.add_hosted(label);
        }
        p
    }

    pub fn add_hosted(&mut self, label: &str) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.runners.push(Runner::hosted(id, label));
        id
    }

    pub fn add_self_hosted(&mut self, site: &str) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.runners.push(Runner::self_hosted(id, site));
        id
    }

    /// Find a runner for a selector. Hosted runners are a fleet, so matching
    /// by label always succeeds if the label is registered.
    pub fn select(&self, selector: &RunsOn) -> Result<&Runner, CiError> {
        self.runners
            .iter()
            .find(|r| r.satisfies(selector))
            .ok_or_else(|| CiError::NoRunnerAvailable(format!("{selector:?}")))
    }

    pub fn len(&self) -> usize {
        self.runners.len()
    }

    pub fn is_empty(&self) -> bool {
        self.runners.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_by_label_and_site() {
        let mut pool = RunnerPool::with_hosted_defaults();
        pool.add_self_hosted("purdue-anvil");
        assert!(pool.select(&RunsOn::Hosted("ubuntu-latest".into())).is_ok());
        assert!(pool
            .select(&RunsOn::SelfHosted { site: "purdue-anvil".into() })
            .is_ok());
        assert!(matches!(
            pool.select(&RunsOn::Hosted("solaris".into())),
            Err(CiError::NoRunnerAvailable(_))
        ));
        assert!(matches!(
            pool.select(&RunsOn::SelfHosted { site: "tamu-faster".into() }),
            Err(CiError::NoRunnerAvailable(_))
        ));
    }

    #[test]
    fn hosted_runners_pay_boot_latency() {
        let hosted = Runner::hosted(0, "ubuntu-latest");
        let selfh = Runner::self_hosted(1, "site");
        assert!(hosted.startup > selfh.startup);
    }
}
