//! Deployment environments: the approval gate.
//!
//! §5.2: "Using environment secrets, CI workflows will not be executed until
//! they are approved by the environment reviewer. This ensures that the
//! person authorizing the execution maps to a user at the site at which the
//! code is executed. … it is strongly suggested that there is only one
//! reviewer per environment."

use hpcci_sim::SimDuration;

/// One deployment environment of a repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    pub name: String,
    /// Users who may approve runs into this environment. Empty = no approval
    /// required (the environment only scopes secrets).
    pub required_reviewers: Vec<String>,
    /// Delay between approval and execution.
    pub wait_timer: SimDuration,
    /// Branches allowed to target this environment (empty = all).
    pub allowed_branches: Vec<String>,
}

impl Environment {
    pub fn new(name: &str) -> Environment {
        Environment {
            name: name.to_string(),
            required_reviewers: Vec::new(),
            wait_timer: SimDuration::ZERO,
            allowed_branches: Vec::new(),
        }
    }

    pub fn with_reviewer(mut self, user: &str) -> Environment {
        self.required_reviewers.push(user.to_string());
        self
    }

    pub fn with_wait_timer(mut self, d: SimDuration) -> Environment {
        self.wait_timer = d;
        self
    }

    pub fn restrict_branch(mut self, branch: &str) -> Environment {
        self.allowed_branches.push(branch.to_string());
        self
    }

    /// Does running from `branch` satisfy the branch restriction?
    pub fn branch_allowed(&self, branch: &str) -> bool {
        self.allowed_branches.is_empty() || self.allowed_branches.iter().any(|b| b == branch)
    }

    pub fn requires_approval(&self) -> bool {
        !self.required_reviewers.is_empty()
    }

    pub fn is_required_reviewer(&self, user: &str) -> bool {
        self.required_reviewers.iter().any(|r| r == user)
    }

    /// The paper's recommendation: exactly one reviewer, so the approver is
    /// guaranteed to be the identity whose credentials the run uses. Returns
    /// false for configurations that violate the recommendation.
    pub fn follows_sole_reviewer_recommendation(&self) -> bool {
        self.required_reviewers.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approval_requirements() {
        let open = Environment::new("cloud");
        assert!(!open.requires_approval());

        let gated = Environment::new("anvil-vhayot").with_reviewer("vhayot");
        assert!(gated.requires_approval());
        assert!(gated.is_required_reviewer("vhayot"));
        assert!(!gated.is_required_reviewer("mallory"));
    }

    #[test]
    fn sole_reviewer_recommendation() {
        assert!(!Environment::new("e").follows_sole_reviewer_recommendation());
        assert!(Environment::new("e")
            .with_reviewer("a")
            .follows_sole_reviewer_recommendation());
        assert!(!Environment::new("e")
            .with_reviewer("a")
            .with_reviewer("b")
            .follows_sole_reviewer_recommendation());
    }

    #[test]
    fn branch_restrictions() {
        let env = Environment::new("prod").restrict_branch("main");
        assert!(env.branch_allowed("main"));
        assert!(!env.branch_allowed("dev"));
        assert!(Environment::new("any").branch_allowed("whatever"));
    }

    #[test]
    fn wait_timer_builder() {
        let env = Environment::new("slow").with_wait_timer(SimDuration::from_mins(5));
        assert_eq!(env.wait_timer, SimDuration::from_mins(5));
    }
}
