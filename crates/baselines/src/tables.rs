//! Render Tables 2, 3 and 4 from the live models.

use crate::framework::all_frameworks;
use crate::sciapps::all_sciapps;
use hpcci_ci::requirements::{hpc_ci_characteristics, science_app_characteristics};

fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

/// Table 2: comparison of CI framework usage in scientific applications.
pub fn render_table2() -> String {
    let apps = all_sciapps();
    let mut out = String::from("Table 2: CI framework usage in scientific applications\n\n");
    out.push_str(&pad("", 18));
    for a in &apps {
        out.push_str(&pad(a.name, 28));
    }
    out.push('\n');
    type Column = fn(&crate::sciapps::SciAppCi) -> &'static str;
    let rows: [(&str, Column); 4] = [
        ("CI framework", |a| a.ci_framework),
        ("Compute resource", |a| a.compute_resource),
        ("Objective", |a| a.objective),
        ("Visualization", |a| a.visualization),
    ];
    for (label, get) in rows {
        out.push_str(&pad(label, 18));
        for a in &apps {
            out.push_str(&pad(get(a), 28));
        }
        out.push('\n');
    }
    out
}

/// Table 3: requirements, plus which frameworks meet each (computed).
pub fn render_table3() -> String {
    let mut out = String::from("Table 3: characteristics important for CI of HPC software\n\n");
    for c in hpc_ci_characteristics() {
        out.push_str(&format!("{:<14} {}\n", c.name, c.description));
    }
    out.push_str("\nSatisfied by (from behavioural models):\n");
    let frameworks = all_frameworks();
    for (label, get) in [
        ("Collaborative", Box::new(|c: hpcci_ci::requirements::HpcCiCompliance| c.collaborative)
            as Box<dyn Fn(hpcci_ci::requirements::HpcCiCompliance) -> bool>),
        ("Secure", Box::new(|c| c.secure)),
        ("Lightweight", Box::new(|c| c.lightweight)),
    ] {
        let names: Vec<&str> = frameworks
            .iter()
            .filter(|f| get(f.compliance()))
            .map(|f| f.name())
            .collect();
        out.push_str(&format!("{:<14} {}\n", label, names.join(", ")));
    }
    out
}

/// Table 4: HPC CI frameworks feature comparison (with the CORRECT row the
/// paper argues for).
pub fn render_table4() -> String {
    let mut out = String::from("Table 4: HPC CI frameworks feature comparison\n\n");
    out.push_str(&format!(
        "{:<16}{:<14}{:<26}{:<14}{}\n",
        "Framework", "CI Platform", "Authentication", "Site-Specific", "Containerization"
    ));
    for f in all_frameworks() {
        out.push_str(&format!(
            "{:<16}{:<14}{:<26}{:<14}{}\n",
            f.name(),
            f.ci_platform(),
            f.authentication(),
            if f.site_specific_execution() { "Yes" } else { "No" },
            f.containerization()
        ));
    }
    out
}

/// Table 1 as text (from the requirements module).
pub fn render_table1() -> String {
    let mut out = String::from("Table 1: science application features important for CI\n\n");
    for c in science_app_characteristics() {
        out.push_str(&format!("{:<36} {}\n", c.name, c.description));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_contains_every_app_and_row() {
        let t = render_table2();
        for name in ["GNSS-SDR", "ATLAS", "AMBER", "NeuroCI"] {
            assert!(t.contains(name));
        }
        assert!(t.contains("Cruise Control"));
        assert!(t.contains("Monitoring Dashboard"));
    }

    #[test]
    fn table3_reflects_behavioural_compliance() {
        let t = render_table3();
        assert!(t.contains("Collaborative"));
        // Only OSC and CORRECT are lightweight in our models.
        // The characteristics list also has a "Lightweight" row; the
        // computed satisfied-by line is the last one.
        let lightweight_line = t.lines().rfind(|l| l.starts_with("Lightweight")).unwrap();
        assert!(lightweight_line.contains("OSC"));
        assert!(lightweight_line.contains("CORRECT"));
        assert!(!lightweight_line.contains("Jacamar"));
    }

    #[test]
    fn table4_has_paper_rows_plus_correct() {
        let t = render_table4();
        for name in ["Jacamar CI", "TACC", "RMACC Summit", "OSC", "Stanford HPCC", "CORRECT"] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("Tapis Security Kernel"));
        assert!(t.contains("Globus Auth"));
    }

    #[test]
    fn table1_lists_four_characteristics() {
        let t = render_table1();
        assert!(t.contains("Collaboration"));
        assert!(t.contains("Computational requirements"));
        assert!(t.contains("Visualization, Monitoring, Logging"));
        assert!(t.contains("Reproducibility"));
    }
}
