//! # hpcci-baselines — the CI frameworks the paper compares against
//!
//! Executable models of the systems in Tables 2 and 4, implementing a common
//! trait so the tables are *computed from behaviour* rather than hard-coded:
//!
//! * [`framework`] — the HPC CI frameworks of §4.4 (Jacamar CI, TACC/Tapis,
//!   RMACC Summit's Jenkins, OSC's ReFrame flow, Stanford HPCC) plus CORRECT
//!   itself, each modelling where its runner lives, how identity is handled,
//!   whether it is single- or multi-site, and what a triggered CI run looks
//!   like;
//! * [`sciapps`] — the scientific-application CI deployments of §4.3
//!   (GNSS-SDR, ATLAS, AMBER, NeuroCI) behind Table 2;
//! * [`tables`] — renderers that regenerate Tables 2, 3 and 4 from the
//!   models.

pub mod framework;
pub mod sciapps;
pub mod tables;

pub use framework::{
    all_frameworks, BaselineRun, CorrectModel, FrameworkModel, JacamarCi, OscReframe,
    RmaccSummit, StanfordHpcc, TapisCi,
};
pub use sciapps::{all_sciapps, SciAppCi};
pub use tables::{render_table1, render_table2, render_table3, render_table4};
