//! Behavioral models of the HPC CI frameworks (§4.4, Table 4).

use hpcci_ci::requirements::HpcCiCompliance;

/// What one triggered CI run looks like under a framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRun {
    /// Local account the tests execute as.
    pub ran_as: String,
    /// Where the runner process lives.
    pub runner_location: String,
    /// Whether the submitting identity was verified to map to `ran_as`.
    pub identity_mapped: bool,
    /// Whether a permanent service occupies shared resources for this run.
    pub permanent_service: bool,
}

/// A framework model: the Table 4 columns plus executable trigger semantics.
pub trait FrameworkModel {
    fn name(&self) -> &'static str;
    /// Table 4 "CI Platform".
    fn ci_platform(&self) -> &'static str;
    /// Table 4 "Authentication".
    fn authentication(&self) -> &'static str;
    /// Table 4 "Site-Specific Execution".
    fn site_specific_execution(&self) -> bool;
    /// Table 4 "Containerization".
    fn containerization(&self) -> &'static str;
    /// How many sites one deployment covers.
    fn sites_per_deployment(&self) -> u32;
    /// Table 3 compliance, derived from behaviour.
    fn compliance(&self) -> HpcCiCompliance;
    /// Simulate a CI run triggered by `author` (a federated identity) at a
    /// site where the deploying admin/user account is `deployer`.
    fn trigger(&self, author: &str, deployer: &str) -> BaselineRun;
}

/// Jacamar CI (§4.4.1): GitLab runner on the login node with JWT-verified
/// identity mapping. Secure and site-specific, but external collaboration
/// needs per-site repository mirrors.
pub struct JacamarCi;

impl FrameworkModel for JacamarCi {
    fn name(&self) -> &'static str {
        "Jacamar CI"
    }
    fn ci_platform(&self) -> &'static str {
        "GitLab"
    }
    fn authentication(&self) -> &'static str {
        "Site-Specific Auth."
    }
    fn site_specific_execution(&self) -> bool {
        true
    }
    fn containerization(&self) -> &'static str {
        "Apptainer, Podman, CharlieCloud"
    }
    fn sites_per_deployment(&self) -> u32 {
        1
    }
    fn compliance(&self) -> HpcCiCompliance {
        HpcCiCompliance {
            // Mirrors per site burden external collaboration.
            collaborative: false,
            // JWT identity mapping + permission restriction.
            secure: true,
            // Shared runner on the login node is a persistent service.
            lightweight: false,
        }
    }
    fn trigger(&self, author: &str, _deployer: &str) -> BaselineRun {
        BaselineRun {
            // The JWT maps the GitLab identity to the matching local user.
            ran_as: format!("site-account({author})"),
            runner_location: "login node".to_string(),
            identity_mapped: true,
            permanent_service: true,
        }
    }
}

/// CI with Tapis at TACC (§4.4.2): GitHub Actions + Tapis Jobs API, with a
/// self-hosted runner on Jetstream.
pub struct TapisCi;

impl FrameworkModel for TapisCi {
    fn name(&self) -> &'static str {
        "TACC"
    }
    fn ci_platform(&self) -> &'static str {
        "GitHub"
    }
    fn authentication(&self) -> &'static str {
        "Tapis Security Kernel"
    }
    fn site_specific_execution(&self) -> bool {
        false
    }
    fn containerization(&self) -> &'static str {
        "Singularity"
    }
    fn sites_per_deployment(&self) -> u32 {
        1
    }
    fn compliance(&self) -> HpcCiCompliance {
        HpcCiCompliance {
            collaborative: true,
            // The security kernel authenticates, but runs charge the Tapis
            // application's service account rather than the author.
            secure: false,
            // Self-hosted runner stays up on Jetstream.
            lightweight: false,
        }
    }
    fn trigger(&self, _author: &str, deployer: &str) -> BaselineRun {
        BaselineRun {
            ran_as: format!("tapis-app({deployer})"),
            runner_location: "Jetstream VM".to_string(),
            identity_mapped: false,
            permanent_service: true,
        }
    }
}

/// RMACC Summit (§4.4.3): Jenkins polling + Singularity image builds.
pub struct RmaccSummit;

impl FrameworkModel for RmaccSummit {
    fn name(&self) -> &'static str {
        "RMACC Summit"
    }
    fn ci_platform(&self) -> &'static str {
        "Jenkins"
    }
    fn authentication(&self) -> &'static str {
        "Site-Specific Auth."
    }
    fn site_specific_execution(&self) -> bool {
        true
    }
    fn containerization(&self) -> &'static str {
        "Singularity"
    }
    fn sites_per_deployment(&self) -> u32 {
        1
    }
    fn compliance(&self) -> HpcCiCompliance {
        HpcCiCompliance {
            collaborative: false,
            secure: true,
            lightweight: false,
        }
    }
    fn trigger(&self, _author: &str, deployer: &str) -> BaselineRun {
        BaselineRun {
            ran_as: deployer.to_string(),
            runner_location: "site Jenkins (Docker compose)".to_string(),
            identity_mapped: false,
            permanent_service: true,
        }
    }
}

/// OSC (§4.4.4): admin-run install scripts + ReFrame + cron-collected results.
pub struct OscReframe;

impl FrameworkModel for OscReframe {
    fn name(&self) -> &'static str {
        "OSC"
    }
    fn ci_platform(&self) -> &'static str {
        "Reframe"
    }
    fn authentication(&self) -> &'static str {
        "Site-Specific Auth."
    }
    fn site_specific_execution(&self) -> bool {
        true
    }
    fn containerization(&self) -> &'static str {
        "None"
    }
    fn sites_per_deployment(&self) -> u32 {
        1
    }
    fn compliance(&self) -> HpcCiCompliance {
        HpcCiCompliance {
            // Internal GitLab + admin-executed steps: single-site by design.
            collaborative: false,
            // ReFrame tests run with user-level permissions.
            secure: true,
            // Webhook + cron, no runner daemon on shared nodes.
            lightweight: true,
        }
    }
    fn trigger(&self, _author: &str, deployer: &str) -> BaselineRun {
        BaselineRun {
            ran_as: format!("admin({deployer})"),
            runner_location: "site cron + webhook".to_string(),
            identity_mapped: false,
            permanent_service: false,
        }
    }
}

/// Stanford HPCC (§4.4.5): scaled-down Jacamar — a GitLab runner service on
/// an unprivileged account submitting to SLURM.
pub struct StanfordHpcc;

impl FrameworkModel for StanfordHpcc {
    fn name(&self) -> &'static str {
        "Stanford HPCC"
    }
    fn ci_platform(&self) -> &'static str {
        "GitLab"
    }
    fn authentication(&self) -> &'static str {
        "Site-Specific Auth."
    }
    fn site_specific_execution(&self) -> bool {
        true
    }
    fn containerization(&self) -> &'static str {
        "Unknown"
    }
    fn sites_per_deployment(&self) -> u32 {
        1
    }
    fn compliance(&self) -> HpcCiCompliance {
        HpcCiCompliance {
            collaborative: false,
            // Everything runs as the single unprivileged runner account.
            secure: false,
            lightweight: false,
        }
    }
    fn trigger(&self, _author: &str, deployer: &str) -> BaselineRun {
        BaselineRun {
            ran_as: deployer.to_string(),
            runner_location: "unprivileged login-node account".to_string(),
            identity_mapped: false,
            permanent_service: true,
        }
    }
}

/// CORRECT itself (§5), for the comparison row: hosted runners only, Globus
/// Auth identity mapping through the MEP, multi-site by construction.
pub struct CorrectModel;

impl FrameworkModel for CorrectModel {
    fn name(&self) -> &'static str {
        "CORRECT"
    }
    fn ci_platform(&self) -> &'static str {
        "GitHub"
    }
    fn authentication(&self) -> &'static str {
        "Globus Auth"
    }
    fn site_specific_execution(&self) -> bool {
        true
    }
    fn containerization(&self) -> &'static str {
        "Endpoint-configurable"
    }
    fn sites_per_deployment(&self) -> u32 {
        // One workflow reaches every site with a registered endpoint.
        u32::MAX
    }
    fn compliance(&self) -> HpcCiCompliance {
        HpcCiCompliance::all()
    }
    fn trigger(&self, author: &str, _deployer: &str) -> BaselineRun {
        BaselineRun {
            ran_as: format!("mapped-account({author})"),
            runner_location: "GitHub-hosted VM (tasks via FaaS)".to_string(),
            identity_mapped: true,
            permanent_service: false,
        }
    }
}

/// Every Table 4 framework plus CORRECT, in row order.
pub fn all_frameworks() -> Vec<Box<dyn FrameworkModel>> {
    vec![
        Box::new(JacamarCi),
        Box::new(TapisCi),
        Box::new(RmaccSummit),
        Box::new(OscReframe),
        Box::new(StanfordHpcc),
        Box::new(CorrectModel),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rows_match_paper() {
        let frameworks = all_frameworks();
        assert_eq!(frameworks.len(), 6);
        let jacamar = &frameworks[0];
        assert_eq!(jacamar.ci_platform(), "GitLab");
        assert!(jacamar.site_specific_execution());
        let tapis = &frameworks[1];
        assert_eq!(tapis.authentication(), "Tapis Security Kernel");
        assert!(!tapis.site_specific_execution(), "Table 4: TACC row says No");
        let osc = &frameworks[3];
        assert_eq!(osc.containerization(), "None");
    }

    #[test]
    fn only_correct_meets_all_three_requirements() {
        let full: Vec<&'static str> = all_frameworks()
            .iter()
            .filter(|f| f.compliance().score() == 3)
            .map(|f| f.name())
            .collect();
        assert_eq!(full, vec!["CORRECT"]);
    }

    #[test]
    fn identity_mapping_distinguishes_frameworks() {
        let mapped: Vec<&'static str> = all_frameworks()
            .iter()
            .filter(|f| f.trigger("alice@uchicago.edu", "svc-account").identity_mapped)
            .map(|f| f.name())
            .collect();
        // Only Jacamar (JWT mapping) and CORRECT (Globus Auth + MEP mapping)
        // tie the run to the triggering author's local account.
        assert_eq!(mapped, vec!["Jacamar CI", "CORRECT"]);

        for f in all_frameworks() {
            let run = f.trigger("alice@uchicago.edu", "svc-account");
            if f.name() == "CORRECT" {
                assert!(run.ran_as.contains("alice"));
                assert!(!run.permanent_service, "no standing service on the site");
            }
            if f.name() == "Stanford HPCC" {
                assert_eq!(run.ran_as, "svc-account", "author identity lost");
            }
        }
    }

    #[test]
    fn correct_is_the_only_multi_site_deployment() {
        for f in all_frameworks() {
            if f.name() == "CORRECT" {
                assert!(f.sites_per_deployment() > 1);
            } else {
                assert_eq!(f.sites_per_deployment(), 1, "{}", f.name());
            }
        }
    }
}
