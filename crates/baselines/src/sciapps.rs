//! The scientific-application CI deployments of §4.3 (Table 2).

/// One Table 2 column: how a large scientific project runs CI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SciAppCi {
    pub name: &'static str,
    pub ci_framework: &'static str,
    pub compute_resource: &'static str,
    pub objective: &'static str,
    pub visualization: &'static str,
    /// Does the deployment gather result/provenance data usable for
    /// reproducibility evaluation (vs plain regression testing)?
    pub reproducibility_oriented: bool,
}

/// The four §4.3 case studies, in Table 2 column order.
pub fn all_sciapps() -> Vec<SciAppCi> {
    vec![
        SciAppCi {
            name: "GNSS-SDR",
            ci_framework: "GitLab",
            compute_resource: "Cloud",
            objective: "Reproducibility",
            visualization: "Stored artifacts",
            reproducibility_oriented: true,
        },
        SciAppCi {
            name: "ATLAS",
            ci_framework: "Jenkins",
            compute_resource: "Internal HPC cluster",
            objective: "CI",
            visualization: "Monitoring Dashboard",
            reproducibility_oriented: false,
        },
        SciAppCi {
            name: "AMBER",
            ci_framework: "Cruise Control",
            compute_resource: "Workstation",
            objective: "CI",
            visualization: "GNUPlot performance plots",
            reproducibility_oriented: false,
        },
        SciAppCi {
            name: "NeuroCI",
            ci_framework: "CircleCI",
            compute_resource: "Distributed HPC clusters",
            objective: "Reproducibility",
            visualization: "Scatter/Distribution plots",
            reproducibility_oriented: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_columns_match_paper() {
        let apps = all_sciapps();
        assert_eq!(apps.len(), 4);
        assert_eq!(apps[0].name, "GNSS-SDR");
        assert_eq!(apps[1].ci_framework, "Jenkins");
        assert_eq!(apps[2].compute_resource, "Workstation");
        assert_eq!(apps[3].visualization, "Scatter/Distribution plots");
    }

    #[test]
    fn reproducibility_objective_is_consistent() {
        for app in all_sciapps() {
            assert_eq!(
                app.reproducibility_oriented,
                app.objective == "Reproducibility",
                "{}",
                app.name
            );
        }
    }
}
