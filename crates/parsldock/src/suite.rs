//! The ParslDock pytest suite and its federation command handler.
//!
//! §6.1: "we execute the ParslDock test suite at three different sites and
//! record the duration of each test case using pytest". The suite below is
//! what runs: each test exercises the *real* pipeline code at a small size,
//! and carries a reference cost (seconds on the reference machine) that the
//! site's performance model converts into the virtual per-test durations
//! Fig. 4 plots.

use crate::dock::{dock, DockParams};
use crate::ml::{descriptors, SurrogateModel};
use crate::molecule::{Ligand, Receptor};
use crate::pipeline::{screen, ScreenConfig};
use crate::prep::{prepare_ligand, prepare_receptor};
use hpcci_faas::{CommandRegistry, ExecOutcome};

/// One test case: name + reference cost in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestCase {
    pub name: &'static str,
    pub ref_secs: f64,
}

/// The suite, in execution order. Costs are heterogeneous on purpose: Fig. 4
/// mixes sub-second tests with long docking runs.
pub const PARSLDOCK_TESTS: [TestCase; 8] = [
    TestCase { name: "test_imports", ref_secs: 0.4 },
    TestCase { name: "test_fetch_receptor", ref_secs: 1.2 },
    TestCase { name: "test_prepare_receptor", ref_secs: 3.0 },
    TestCase { name: "test_prepare_ligand", ref_secs: 1.5 },
    TestCase { name: "test_compute_descriptors", ref_secs: 0.8 },
    TestCase { name: "test_dock_single", ref_secs: 25.0 },
    TestCase { name: "test_train_model", ref_secs: 5.0 },
    TestCase { name: "test_end_to_end_screen", ref_secs: 60.0 },
];

/// Outcome of one executed test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    pub name: &'static str,
    pub passed: bool,
    pub ref_secs: f64,
}

/// Execute the real test bodies (at miniature sizes, so the harness itself
/// is fast) and report pass/fail per test.
pub fn run_suite() -> Vec<TestOutcome> {
    PARSLDOCK_TESTS
        .iter()
        .map(|t| TestOutcome {
            name: t.name,
            passed: run_one(t.name),
            ref_secs: t.ref_secs,
        })
        .collect()
}

fn run_one(name: &str) -> bool {
    match name {
        "test_imports" => true,
        "test_fetch_receptor" => {
            let r = Receptor::generate("1abc", 50);
            r.atoms.len() == 50 && !r.prepared
        }
        "test_prepare_receptor" => {
            let r = prepare_receptor(Receptor::generate("1abc", 50));
            r.prepared && r.atoms.len() > 50
        }
        "test_prepare_ligand" => {
            let l = prepare_ligand(Ligand::generate("aspirin"));
            l.prepared && l.atoms.iter().any(|a| a.charge != 0.0)
        }
        "test_compute_descriptors" => {
            let d = descriptors(&Ligand::generate("aspirin"));
            d.iter().all(|v| v.is_finite())
        }
        "test_dock_single" => {
            let r = prepare_receptor(Receptor::generate("1abc", 80));
            let l = prepare_ligand(Ligand::generate("aspirin"));
            let p = dock(&r, &l, &DockParams { grid: 3, rotations: 1, threads: 2, spacing: 1.5 });
            p.energy.is_finite()
        }
        "test_train_model" => {
            let samples: Vec<_> = (0..10)
                .map(|i| {
                    let t = i as f64 / 10.0;
                    ([t, 0.1, 0.2, 0.3, 0.4, 1.0], 2.0 * t + 1.0)
                })
                .collect();
            SurrogateModel::fit(&samples).mse(&samples) < 0.1
        }
        "test_end_to_end_screen" => {
            let report = screen(
                "1abc",
                &ScreenConfig {
                    candidates: 6,
                    train_docks: 2,
                    final_docks: 1,
                    dock_params: DockParams { grid: 2, rotations: 1, threads: 2, spacing: 2.0 },
                },
            );
            report.docked.len() == 3
        }
        _ => false,
    }
}

/// Install the `pytest` command at a federation site. The handler checks
/// that the repository has been cloned into the user's scratch (the CORRECT
/// clone step), runs the real suite, and prints pytest-style output with a
/// per-test durations table computed through the site's performance model —
/// the raw data of Fig. 4.
pub fn install_pytest(commands: &mut CommandRegistry, repo_dir: &str) {
    let repo_dir = repo_dir.to_string();
    commands.register("pytest", move |env| {
        let clone_path = format!("{}/{}", env.clone_root(), repo_dir);
        if !env.site.fs.is_dir(&clone_path) {
            return ExecOutcome::fail(
                format!("ERROR: file or directory not found: {clone_path}"),
                0.2,
            );
        }
        let outcomes = run_suite();
        let node_speed = match env.role {
            hpcci_cluster::NodeRole::Login => env
                .site
                .login_node()
                .map(|n| n.cpu_speed)
                .unwrap_or(1.0),
            hpcci_cluster::NodeRole::Compute => 1.0,
        };
        let mut stdout = format!(
            "============================= test session starts ==============================\ncollected {} items\n\n",
            outcomes.len()
        );
        let mut durations = String::from("============================ slowest durations ================================\n");
        let mut total_work = 0.1; // collection overhead
        let mut passed = 0;
        let mut failed = 0;
        for o in &outcomes {
            total_work += o.ref_secs;
            let d = env
                .site
                .perf
                .compute_time(hpcci_cluster::WorkUnits::secs(o.ref_secs), node_speed, env.rng);
            durations.push_str(&format!("{:>10.3}s call     tests/{}\n", d.as_secs_f64(), o.name));
            if o.passed {
                passed += 1;
                stdout.push_str(&format!("tests/test_parsldock.py::{} PASSED\n", o.name));
            } else {
                failed += 1;
                stdout.push_str(&format!("tests/test_parsldock.py::{} FAILED\n", o.name));
            }
        }
        stdout.push('\n');
        stdout.push_str(&durations);
        stdout.push_str(&format!(
            "========================= {passed} passed, {failed} failed =========================\n"
        ));
        if failed == 0 {
            ExecOutcome::ok(stdout, total_work)
        } else {
            ExecOutcome {
                stdout,
                stderr: format!("{failed} test(s) failed"),
                result: Err(format!("{failed} test(s) failed")),
                work: hpcci_cluster::WorkUnits::secs(total_work),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::{Cred, FileMode, NodeRole, Site};
    use hpcci_faas::{SiteRuntime, TaskEnv};
    use hpcci_sim::{DetRng, SimTime};

    #[test]
    fn suite_passes_entirely() {
        let outcomes = run_suite();
        assert_eq!(outcomes.len(), PARSLDOCK_TESTS.len());
        for o in &outcomes {
            assert!(o.passed, "{} failed", o.name);
        }
    }

    #[test]
    fn suite_costs_are_heterogeneous() {
        let min = PARSLDOCK_TESTS.iter().map(|t| t.ref_secs).fold(f64::MAX, f64::min);
        let max = PARSLDOCK_TESTS.iter().map(|t| t.ref_secs).fold(0.0, f64::max);
        assert!(max / min > 50.0, "Fig. 4 needs a wide cost spread");
    }

    fn env_fixture(rt: &mut SiteRuntime, cloned: bool) -> (hpcci_cluster::UserAccount, DetRng) {
        let account = rt.site.add_account("cc", "proj");
        if cloned {
            let cred = Cred::of(&account);
            rt.site
                .fs
                .mkdir_p(
                    &format!("{}/gc-action-temp/parsl-docking-tutorial", account.scratch()),
                    &cred,
                    FileMode::PRIVATE_DIR,
                )
                .unwrap();
        }
        (account, DetRng::seed_from_u64(7))
    }

    #[test]
    fn pytest_handler_reports_durations() {
        let mut rt = SiteRuntime::new(Site::chameleon_tacc());
        install_pytest(&mut rt.commands, "parsl-docking-tutorial");
        let (account, mut rng) = env_fixture(&mut rt, true);
        let cred = Cred::of(&account);
        let out = rt.execute(
            "pytest tests/",
            &account,
            &cred,
            NodeRole::Login,
            "chi",
            SimTime::ZERO,
            &mut rng,
            None,
        );
        assert!(out.result.is_ok(), "{}", out.stderr);
        assert!(out.stdout.contains("8 passed, 0 failed"));
        assert!(out.stdout.contains("test_dock_single"));
        assert!(out.stdout.contains("slowest durations"));
        assert!(out.work.0 > 90.0, "total work sums test costs: {}", out.work.0);
    }

    #[test]
    fn pytest_handler_requires_clone() {
        let mut rt = SiteRuntime::new(Site::chameleon_tacc());
        install_pytest(&mut rt.commands, "parsl-docking-tutorial");
        let (account, mut rng) = env_fixture(&mut rt, false);
        let cred = Cred::of(&account);
        let out = rt.execute(
            "pytest tests/",
            &account,
            &cred,
            NodeRole::Login,
            "chi",
            SimTime::ZERO,
            &mut rng,
            None,
        );
        assert!(out.result.is_err());
        assert!(out.stderr.contains("not found"));
    }

    /// Silence the unused-import lint for TaskEnv which documents the
    /// handler contract.
    #[allow(dead_code)]
    fn _contract(_: &TaskEnv<'_>) {}
}
