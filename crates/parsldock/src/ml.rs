//! The ML surrogate: descriptors + ridge regression trained by SGD.
//!
//! ParslDock "uses machine learning to guide simulation": dock a small
//! training set, fit a cheap model from ligand descriptors to docking
//! scores, and rank the remaining candidates by prediction so only the most
//! promising are docked.

use crate::molecule::Ligand;

/// Number of descriptors per ligand.
pub const N_FEATURES: usize = 6;

/// Cheap physicochemical descriptors of a ligand.
pub fn descriptors(ligand: &Ligand) -> [f64; N_FEATURES] {
    let n = ligand.atoms.len().max(1) as f64;
    let c = ligand.centroid();
    let mut radius_sum = 0.0;
    let mut charge_abs = 0.0;
    let mut gyration = 0.0;
    let mut max_extent: f64 = 0.0;
    for a in &ligand.atoms {
        radius_sum += a.radius;
        charge_abs += a.charge.abs();
        let d2 = (a.x - c[0]).powi(2) + (a.y - c[1]).powi(2) + (a.z - c[2]).powi(2);
        gyration += d2;
        max_extent = max_extent.max(d2.sqrt());
    }
    [
        n / 40.0,
        radius_sum / n,
        charge_abs / n,
        (gyration / n).sqrt() / 4.0,
        max_extent / 7.0,
        1.0, // bias
    ]
}

/// A linear model trained with ridge-regularized SGD.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateModel {
    pub weights: [f64; N_FEATURES],
}

impl SurrogateModel {
    /// Fit to `(features, score)` pairs. Deterministic: fixed epoch count,
    /// fixed ordering, fixed learning-rate schedule.
    pub fn fit(samples: &[([f64; N_FEATURES], f64)]) -> SurrogateModel {
        assert!(!samples.is_empty(), "cannot fit on an empty training set");
        let mut w = [0.0f64; N_FEATURES];
        let lambda = 1e-3;
        let epochs = 200;
        for epoch in 0..epochs {
            let lr = 0.05 / (1.0 + epoch as f64 * 0.05);
            for (x, y) in samples {
                let pred: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum();
                let err = pred - y;
                for (wi, xi) in w.iter_mut().zip(x) {
                    *wi -= lr * (err * xi + lambda * *wi);
                }
            }
        }
        SurrogateModel { weights: w }
    }

    pub fn predict(&self, features: &[f64; N_FEATURES]) -> f64 {
        self.weights.iter().zip(features).map(|(w, x)| w * x).sum()
    }

    /// Mean squared error over a labelled set.
    pub fn mse(&self, samples: &[([f64; N_FEATURES], f64)]) -> f64 {
        samples
            .iter()
            .map(|(x, y)| (self.predict(x) - y).powi(2))
            .sum::<f64>()
            / samples.len().max(1) as f64
    }

    /// Rank candidate indices by ascending predicted score (best first —
    /// docking energies are negative-better).
    pub fn rank(&self, features: &[[f64; N_FEATURES]]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.sort_by(|&a, &b| {
            self.predict(&features[a])
                .partial_cmp(&self.predict(&features[b]))
                .expect("finite predictions")
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_samples(n: usize) -> Vec<([f64; N_FEATURES], f64)> {
        // y = 2*x0 - 3*x2 + 0.5 (bias through the constant feature).
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let x = [t, 0.3, 1.0 - t, 0.5, 0.2, 1.0];
                let y = 2.0 * x[0] - 3.0 * x[2] + 0.5;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn fit_recovers_linear_relationship() {
        let samples = synthetic_samples(50);
        let model = SurrogateModel::fit(&samples);
        assert!(model.mse(&samples) < 1e-2, "mse {}", model.mse(&samples));
    }

    #[test]
    fn fit_is_deterministic() {
        let samples = synthetic_samples(20);
        assert_eq!(SurrogateModel::fit(&samples), SurrogateModel::fit(&samples));
    }

    #[test]
    fn ranking_orders_by_prediction() {
        let model = SurrogateModel {
            weights: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        let feats = vec![
            [3.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            [1.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            [2.0, 0.0, 0.0, 0.0, 0.0, 1.0],
        ];
        assert_eq!(model.rank(&feats), vec![1, 2, 0]);
    }

    #[test]
    fn descriptors_are_deterministic_and_bounded() {
        let l = Ligand::generate("aspirin");
        let d1 = descriptors(&l);
        let d2 = descriptors(&l);
        assert_eq!(d1, d2);
        assert!(d1.iter().all(|v| v.is_finite()));
        assert_eq!(d1[N_FEATURES - 1], 1.0, "bias feature");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_fit_panics() {
        let _ = SurrogateModel::fit(&[]);
    }
}
