//! Rigid-body grid docking: the AutoDock-Vina step.
//!
//! Translates the ligand across a 3-D grid around the receptor pocket (plus
//! a set of axis rotations) and scores each pose with a Lennard-Jones +
//! Coulomb interaction energy. Pose scoring is embarrassingly parallel and
//! is executed with crossbeam scoped threads; the result is identical to the
//! sequential evaluation because each pose's score is independent (data-race
//! freedom by construction — each worker writes its own slice).

use crate::molecule::{Atom, Ligand, Receptor};

/// Docking-search parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DockParams {
    /// Grid points per axis (the search evaluates `grid^3 * rotations` poses).
    pub grid: usize,
    /// Grid spacing in Å.
    pub spacing: f64,
    /// Number of axis-aligned rotations to try (1–4).
    pub rotations: usize,
    /// Worker threads for pose scoring.
    pub threads: usize,
}

impl Default for DockParams {
    fn default() -> Self {
        DockParams {
            grid: 6,
            spacing: 1.0,
            rotations: 2,
            threads: 4,
        }
    }
}

impl DockParams {
    pub fn pose_count(&self) -> usize {
        self.grid * self.grid * self.grid * self.rotations
    }
}

/// A scored pose: translation + rotation index + energy (lower is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    pub dx: f64,
    pub dy: f64,
    pub dz: f64,
    pub rotation: usize,
    pub energy: f64,
}

/// Interaction energy between one placed ligand atom and the receptor.
fn atom_energy(atom: &Atom, receptor: &Receptor) -> f64 {
    let mut e = 0.0;
    for r in &receptor.atoms {
        let dx = atom.x - r.x;
        let dy = atom.y - r.y;
        let dz = atom.z - r.z;
        let d2 = (dx * dx + dy * dy + dz * dz).max(0.25);
        let sigma = atom.radius + r.radius;
        let s2 = sigma * sigma / d2;
        let s6 = s2 * s2 * s2;
        // Lennard-Jones 12-6 plus screened Coulomb.
        e += 0.1 * (s6 * s6 - 2.0 * s6) + 332.0 * atom.charge * r.charge / (4.0 * d2.sqrt() * d2);
    }
    e
}

/// Apply the pose transform to a ligand atom.
fn place(atom: &Atom, centroid: [f64; 3], pose: (f64, f64, f64, usize)) -> Atom {
    // Centre the ligand, rotate about z by rotation*90°, translate to pose.
    let (cx, cy, cz) = (centroid[0], centroid[1], centroid[2]);
    let (x, y, z) = (atom.x - cx, atom.y - cy, atom.z - cz);
    let (x, y) = match pose.3 % 4 {
        0 => (x, y),
        1 => (-y, x),
        2 => (-x, -y),
        _ => (y, -x),
    };
    Atom {
        x: x + pose.0,
        y: y + pose.1,
        z: z + pose.2,
        ..*atom
    }
}

fn score_pose(ligand: &Ligand, centroid: [f64; 3], receptor: &Receptor, pose: (f64, f64, f64, usize)) -> f64 {
    ligand
        .atoms
        .iter()
        .map(|a| atom_energy(&place(a, centroid, pose), receptor))
        .sum()
}

/// Dock `ligand` against `receptor`, returning the best pose.
///
/// Panics if either structure is unprepared (the real tools fail the same
/// way, with a less helpful message).
pub fn dock(receptor: &Receptor, ligand: &Ligand, params: &DockParams) -> Pose {
    assert!(receptor.prepared, "receptor must be prepared before docking");
    assert!(ligand.prepared, "ligand must be prepared before docking");
    assert!(params.grid > 0 && params.rotations > 0);

    let centroid = ligand.centroid();
    let half = (params.grid as f64 - 1.0) / 2.0;
    let mut poses: Vec<(f64, f64, f64, usize)> = Vec::with_capacity(params.pose_count());
    for ix in 0..params.grid {
        for iy in 0..params.grid {
            for iz in 0..params.grid {
                for rot in 0..params.rotations {
                    poses.push((
                        receptor.pocket[0] + (ix as f64 - half) * params.spacing,
                        receptor.pocket[1] + (iy as f64 - half) * params.spacing,
                        receptor.pocket[2] + (iz as f64 - half) * params.spacing,
                        rot,
                    ));
                }
            }
        }
    }

    let threads = params.threads.max(1).min(poses.len().max(1));
    let mut energies = vec![0.0f64; poses.len()];
    let chunk = poses.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (pose_chunk, energy_chunk) in poses.chunks(chunk).zip(energies.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (p, e) in pose_chunk.iter().zip(energy_chunk.iter_mut()) {
                    *e = score_pose(ligand, centroid, receptor, *p);
                }
            });
        }
    })
    .expect("pose-scoring workers do not panic");

    let (best_ix, best_e) = energies
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite energies"))
        .expect("at least one pose");
    let p = poses[best_ix];
    Pose {
        dx: p.0,
        dy: p.1,
        dz: p.2,
        rotation: p.3,
        energy: *best_e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{prepare_ligand, prepare_receptor};

    fn prepared() -> (Receptor, Ligand) {
        (
            prepare_receptor(Receptor::generate("1abc", 200)),
            prepare_ligand(Ligand::generate("aspirin")),
        )
    }

    #[test]
    fn docking_is_deterministic_across_thread_counts() {
        let (r, l) = prepared();
        let p1 = dock(&r, &l, &DockParams { threads: 1, ..DockParams::default() });
        let p8 = dock(&r, &l, &DockParams { threads: 8, ..DockParams::default() });
        assert_eq!(p1, p8, "parallelism must not change the result");
    }

    #[test]
    fn best_pose_beats_random_pose() {
        let (r, l) = prepared();
        let params = DockParams::default();
        let best = dock(&r, &l, &params);
        // Compare against the pose at the far grid corner.
        let centroid = l.centroid();
        let corner = (
            r.pocket[0] + 2.5,
            r.pocket[1] + 2.5,
            r.pocket[2] + 2.5,
            0usize,
        );
        let corner_e = super::score_pose(&l, centroid, &r, corner);
        assert!(best.energy <= corner_e, "{} vs {corner_e}", best.energy);
    }

    #[test]
    fn finer_grid_never_worsens_energy() {
        let (r, l) = prepared();
        let coarse = dock(&r, &l, &DockParams { grid: 4, ..DockParams::default() });
        let fine = dock(&r, &l, &DockParams { grid: 8, ..DockParams::default() });
        // The fine grid is not a superset of the coarse one (different
        // spacing offsets), but in practice it finds an equal-or-better
        // minimum for these structures.
        assert!(fine.energy <= coarse.energy + 1e-9);
    }

    #[test]
    #[should_panic(expected = "prepared")]
    fn unprepared_inputs_rejected() {
        let r = Receptor::generate("1abc", 50);
        let l = prepare_ligand(Ligand::generate("x"));
        let _ = dock(&r, &l, &DockParams::default());
    }

    #[test]
    fn pose_count_formula() {
        let p = DockParams { grid: 3, rotations: 2, ..DockParams::default() };
        assert_eq!(p.pose_count(), 54);
    }
}
