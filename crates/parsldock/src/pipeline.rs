//! ML-guided virtual screening, end to end.

use crate::dock::{dock, DockParams, Pose};
use crate::ml::{descriptors, SurrogateModel};
use crate::molecule::{Ligand, Receptor};
use crate::prep::{prepare_ligand, prepare_receptor};

/// Screening configuration.
#[derive(Debug, Clone)]
pub struct ScreenConfig {
    /// Candidate library size.
    pub candidates: usize,
    /// How many candidates to dock for the training set.
    pub train_docks: usize,
    /// How many top-ranked candidates to dock after training.
    pub final_docks: usize,
    pub dock_params: DockParams,
}

impl Default for ScreenConfig {
    fn default() -> Self {
        ScreenConfig {
            candidates: 24,
            train_docks: 6,
            final_docks: 4,
            dock_params: DockParams::default(),
        }
    }
}

/// The screening report.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// (ligand name, best pose) for every docked candidate, training + final.
    pub docked: Vec<(String, Pose)>,
    /// The overall best hit.
    pub best: (String, Pose),
    /// Surrogate training error.
    pub train_mse: f64,
    /// Total poses evaluated (the real work performed).
    pub poses_evaluated: usize,
}

/// Run the ML-guided screen: dock a seed set, train the surrogate, rank the
/// rest, dock the predicted-best, and report the winner.
pub fn screen(receptor_name: &str, config: &ScreenConfig) -> ScreenReport {
    assert!(config.train_docks >= 2, "need at least two training docks");
    assert!(config.train_docks + config.final_docks <= config.candidates);

    let receptor = prepare_receptor(Receptor::generate(receptor_name, 300));
    let ligands: Vec<Ligand> = (0..config.candidates)
        .map(|i| prepare_ligand(Ligand::generate(&format!("cand-{i:04}"))))
        .collect();
    let features: Vec<_> = ligands.iter().map(descriptors).collect();

    let mut docked = Vec::new();
    let mut poses_evaluated = 0;

    // 1. Dock the first `train_docks` candidates to build a training set.
    let mut training = Vec::new();
    for (ligand, feats) in ligands.iter().zip(&features).take(config.train_docks) {
        let pose = dock(&receptor, ligand, &config.dock_params);
        poses_evaluated += config.dock_params.pose_count();
        training.push((*feats, pose.energy));
        docked.push((ligand.name.clone(), pose));
    }

    // 2. Fit the surrogate and rank the remaining candidates.
    let model = SurrogateModel::fit(&training);
    let train_mse = model.mse(&training);
    let remaining: Vec<usize> = (config.train_docks..config.candidates).collect();
    let remaining_features: Vec<_> = remaining.iter().map(|&i| features[i]).collect();
    let ranked = model.rank(&remaining_features);

    // 3. Dock the predicted-best `final_docks`.
    for &local_ix in ranked.iter().take(config.final_docks) {
        let ix = remaining[local_ix];
        let pose = dock(&receptor, &ligands[ix], &config.dock_params);
        poses_evaluated += config.dock_params.pose_count();
        docked.push((ligands[ix].name.clone(), pose));
    }

    let best = docked
        .iter()
        .min_by(|(_, a), (_, b)| a.energy.partial_cmp(&b.energy).expect("finite"))
        .cloned()
        .expect("at least one dock");

    ScreenReport {
        docked,
        best,
        train_mse,
        poses_evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScreenConfig {
        ScreenConfig {
            candidates: 8,
            train_docks: 3,
            final_docks: 2,
            dock_params: DockParams {
                grid: 3,
                rotations: 1,
                threads: 2,
                spacing: 1.5,
            },
        }
    }

    #[test]
    fn screen_runs_and_reports() {
        let report = screen("1abc", &tiny());
        assert_eq!(report.docked.len(), 5);
        assert_eq!(report.poses_evaluated, 5 * 27);
        assert!(report.train_mse.is_finite());
        // Best is genuinely the minimum of the docked set.
        assert!(report
            .docked
            .iter()
            .all(|(_, p)| p.energy >= report.best.1.energy));
    }

    #[test]
    fn screen_is_deterministic() {
        let a = screen("1abc", &tiny());
        let b = screen("1abc", &tiny());
        assert_eq!(a.best.0, b.best.0);
        assert_eq!(a.best.1, b.best.1);
    }

    #[test]
    fn different_receptors_differ() {
        let a = screen("1abc", &tiny());
        let b = screen("2xyz", &tiny());
        assert_ne!(a.best.1.energy, b.best.1.energy);
    }
}
