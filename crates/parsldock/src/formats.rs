//! PDBQT-flavoured structure serialization.
//!
//! The real ParslDock pipeline moves structures between tools as PDBQT
//! files (AutoDock's PDB dialect with partial charges). Serializing our
//! synthetic molecules the same way gives the fetch/prepare test cases real
//! I/O to do and lets receptors ship inside repository trees (the scenario
//! repos carry a `data/receptor_*.pdbqt`).

use crate::molecule::{Atom, Ligand, Receptor};

/// Serialize atoms in fixed-column PDBQT-like records.
fn write_atoms(out: &mut String, atoms: &[Atom]) {
    for (i, a) in atoms.iter().enumerate() {
        out.push_str(&format!(
            "ATOM  {:>5}  C   MOL A{:>4}    {:>8.3}{:>8.3}{:>8.3}  1.00  0.00    {:>6.3} C\n",
            i + 1,
            i / 10 + 1,
            a.x,
            a.y,
            a.z,
            a.charge
        ));
    }
}

fn parse_atoms(text: &str) -> Result<Vec<Atom>, String> {
    let mut atoms = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if !line.starts_with("ATOM") {
            continue;
        }
        if line.len() < 76 {
            return Err(format!("line {}: truncated ATOM record", lineno + 1));
        }
        let parse_f = |range: std::ops::Range<usize>, what: &str| -> Result<f64, String> {
            line.get(range.clone())
                .map(str::trim)
                .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))?
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad {what}", lineno + 1))
        };
        atoms.push(Atom {
            x: parse_f(30..38, "x")?,
            y: parse_f(38..46, "y")?,
            z: parse_f(46..54, "z")?,
            // Radius is not a PDBQT column; reconstruct a standard carbon.
            radius: 1.5,
            charge: parse_f(66..76, "charge")?,
        });
    }
    if atoms.is_empty() {
        return Err("no ATOM records found".to_string());
    }
    Ok(atoms)
}

/// Serialize a receptor (REMARK header carries the pocket).
pub fn receptor_to_pdbqt(r: &Receptor) -> String {
    let mut out = format!(
        "REMARK  NAME {}\nREMARK  POCKET {:.3} {:.3} {:.3}\nREMARK  PREPARED {}\n",
        r.name, r.pocket[0], r.pocket[1], r.pocket[2], r.prepared
    );
    write_atoms(&mut out, &r.atoms);
    out.push_str("END\n");
    out
}

/// Parse a receptor back. Radii are normalized (not stored in PDBQT), so the
/// round-trip guarantee covers positions, charges, pocket and name.
pub fn receptor_from_pdbqt(text: &str) -> Result<Receptor, String> {
    let mut name = String::new();
    let mut pocket = [0.0f64; 3];
    let mut prepared = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("REMARK  NAME ") {
            name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("REMARK  POCKET ") {
            let parts: Vec<f64> = rest
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect();
            if parts.len() != 3 {
                return Err("malformed POCKET remark".to_string());
            }
            pocket = [parts[0], parts[1], parts[2]];
        } else if let Some(rest) = line.strip_prefix("REMARK  PREPARED ") {
            prepared = rest.trim() == "true";
        }
    }
    if name.is_empty() {
        return Err("missing NAME remark".to_string());
    }
    Ok(Receptor {
        name,
        atoms: parse_atoms(text)?,
        pocket,
        prepared,
    })
}

/// Serialize a ligand.
pub fn ligand_to_pdbqt(l: &Ligand) -> String {
    let mut out = format!(
        "REMARK  NAME {}\nREMARK  PREPARED {}\n",
        l.name, l.prepared
    );
    write_atoms(&mut out, &l.atoms);
    out.push_str("END\n");
    out
}

/// Parse a ligand back (same radius caveat as receptors).
pub fn ligand_from_pdbqt(text: &str) -> Result<Ligand, String> {
    let mut name = String::new();
    let mut prepared = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("REMARK  NAME ") {
            name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("REMARK  PREPARED ") {
            prepared = rest.trim() == "true";
        }
    }
    if name.is_empty() {
        return Err("missing NAME remark".to_string());
    }
    Ok(Ligand {
        name,
        atoms: parse_atoms(text)?,
        prepared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare_receptor;

    #[test]
    fn receptor_round_trip_preserves_geometry_and_charges() {
        let original = prepare_receptor(Receptor::generate("1abc", 40));
        let text = receptor_to_pdbqt(&original);
        let parsed = receptor_from_pdbqt(&text).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.atoms.len(), original.atoms.len());
        assert!(parsed.prepared);
        for (a, b) in original.atoms.iter().zip(&parsed.atoms) {
            assert!((a.x - b.x).abs() < 1e-3);
            assert!((a.charge - b.charge).abs() < 1e-3);
        }
        assert!((original.pocket[0] - parsed.pocket[0]).abs() < 1e-3);
    }

    #[test]
    fn ligand_round_trip() {
        let l = Ligand::generate("aspirin");
        let parsed = ligand_from_pdbqt(&ligand_to_pdbqt(&l)).unwrap();
        assert_eq!(parsed.name, "aspirin");
        assert_eq!(parsed.atoms.len(), l.atoms.len());
        assert!(!parsed.prepared);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(receptor_from_pdbqt("").is_err());
        assert!(receptor_from_pdbqt("REMARK  NAME x\nEND\n").is_err(), "no atoms");
        assert!(
            receptor_from_pdbqt("REMARK  NAME x\nREMARK  POCKET 1 2\nATOM short\nEND\n").is_err()
        );
        assert!(ligand_from_pdbqt("ATOM garbage").is_err(), "no name");
    }

    #[test]
    fn pdbqt_lines_are_fixed_width() {
        let text = ligand_to_pdbqt(&Ligand::generate("x"));
        for line in text.lines().filter(|l| l.starts_with("ATOM")) {
            assert!(line.len() >= 76, "{line}");
        }
    }
}
