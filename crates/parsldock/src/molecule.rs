//! Synthetic molecules, generated deterministically from names.

use hpcci_sim::DetRng;

/// One atom: position (Å), van-der-Waals radius (Å), partial charge (e).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    pub x: f64,
    pub y: f64,
    pub z: f64,
    pub radius: f64,
    pub charge: f64,
}

/// A receptor: a rigid cloud of atoms with a binding-pocket centre.
#[derive(Debug, Clone, PartialEq)]
pub struct Receptor {
    pub name: String,
    pub atoms: Vec<Atom>,
    /// Pocket centre the docking grid is placed around.
    pub pocket: [f64; 3],
    /// Whether preparation (protonation/charges) has been applied.
    pub prepared: bool,
}

/// A ligand: a small flexible molecule (we treat it rigidly when docking).
#[derive(Debug, Clone, PartialEq)]
pub struct Ligand {
    pub name: String,
    pub atoms: Vec<Atom>,
    pub prepared: bool,
}

fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Receptor {
    /// Generate a receptor with `n_atoms` atoms in a 30 Å sphere, with a
    /// pocket offset from the centre. Deterministic in `name`.
    pub fn generate(name: &str, n_atoms: usize) -> Receptor {
        let mut rng = DetRng::seed_from_u64(name_seed(name));
        let atoms = (0..n_atoms)
            .map(|_| Atom {
                x: rng.range_f64(-15.0, 15.0),
                y: rng.range_f64(-15.0, 15.0),
                z: rng.range_f64(-15.0, 15.0),
                radius: rng.range_f64(1.2, 1.9),
                // Unprepared structures carry no charges yet.
                charge: 0.0,
            })
            .collect();
        let pocket = [
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(-5.0, 5.0),
        ];
        Receptor {
            name: name.to_string(),
            atoms,
            pocket,
            prepared: false,
        }
    }
}

impl Ligand {
    /// Generate a drug-like ligand of 10–40 atoms. Deterministic in `name`.
    pub fn generate(name: &str) -> Ligand {
        let mut rng = DetRng::seed_from_u64(name_seed(name) ^ 0x11c4);
        let n = rng.range_u64(10, 41) as usize;
        let atoms = (0..n)
            .map(|_| Atom {
                x: rng.range_f64(-4.0, 4.0),
                y: rng.range_f64(-4.0, 4.0),
                z: rng.range_f64(-4.0, 4.0),
                radius: rng.range_f64(1.1, 1.7),
                charge: 0.0,
            })
            .collect();
        Ligand {
            name: name.to_string(),
            atoms,
            prepared: false,
        }
    }

    /// Geometric centre.
    pub fn centroid(&self) -> [f64; 3] {
        let n = self.atoms.len().max(1) as f64;
        let (mut cx, mut cy, mut cz) = (0.0, 0.0, 0.0);
        for a in &self.atoms {
            cx += a.x;
            cy += a.y;
            cz += a.z;
        }
        [cx / n, cy / n, cz / n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Ligand::generate("aspirin");
        let b = Ligand::generate("aspirin");
        assert_eq!(a, b);
        let c = Ligand::generate("ibuprofen");
        assert_ne!(a.atoms, c.atoms, "different names, different molecules");
    }

    #[test]
    fn receptor_shape() {
        let r = Receptor::generate("1abc", 500);
        assert_eq!(r.atoms.len(), 500);
        assert!(!r.prepared);
        assert!(r.atoms.iter().all(|a| a.x.abs() <= 15.0 && a.radius >= 1.2));
        assert!(r.pocket.iter().all(|c| c.abs() <= 5.0));
    }

    #[test]
    fn ligand_size_in_druglike_range() {
        for name in ["a", "b", "c", "d", "e"] {
            let l = Ligand::generate(name);
            assert!((10..=40).contains(&l.atoms.len()), "{}", l.atoms.len());
        }
    }

    #[test]
    fn centroid_is_bounded() {
        let l = Ligand::generate("x");
        let c = l.centroid();
        assert!(c.iter().all(|v| v.abs() < 4.0));
    }
}
