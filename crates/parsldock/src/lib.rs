//! # hpcci-parsldock — a protein-docking pipeline (§6.1's workload)
//!
//! A deterministic, pseudo-physical reimplementation of the ParslDock
//! tutorial application: *"a Parsl-based implementation of protein docking
//! that uses machine learning to guide simulation"*. The chemistry is
//! synthetic (derived from seeded generators), but the computation is real:
//! the docking search really scores poses — in parallel, with crossbeam
//! scoped threads — and the ML ranker really trains by SGD.
//!
//! * [`molecule`] — synthetic receptors and ligands (atoms: position,
//!   radius, charge) generated deterministically from names;
//! * [`prep`] — receptor/ligand preparation (protonation, partial-charge
//!   assignment): the AutoDock-Tools/MGLTools step;
//! * [`mod@dock`] — rigid-body grid docking with a Lennard-Jones + Coulomb
//!   scoring function: the AutoDock-Vina step;
//! * [`ml`] — descriptor computation and a linear ridge-SGD surrogate model
//!   that ranks candidate ligands by predicted binding score;
//! * [`pipeline`] — ML-guided virtual screening end to end;
//! * [`suite`] — the pytest-style test suite CORRECT runs at each site, with
//!   per-test cost models calibrated for the Fig. 4 comparison, and the
//!   `pytest` command handler that installs the suite at a federation site.

pub mod dock;
pub mod formats;
pub mod ml;
pub mod molecule;
pub mod pipeline;
pub mod prep;
pub mod suite;

pub use dock::{dock, DockParams, Pose};
pub use formats::{ligand_from_pdbqt, ligand_to_pdbqt, receptor_from_pdbqt, receptor_to_pdbqt};
pub use ml::{descriptors, SurrogateModel};
pub use molecule::{Atom, Ligand, Receptor};
pub use pipeline::{screen, ScreenConfig, ScreenReport};
pub use suite::{install_pytest, run_suite, TestOutcome, PARSLDOCK_TESTS};
