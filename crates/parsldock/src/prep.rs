//! Structure preparation: the MGLTools/AutoDockTools step.
//!
//! Assigns partial charges (deterministic function of geometry) and adds
//! polar hydrogens (modelled as small satellite atoms on a subset of heavy
//! atoms). Docking refuses unprepared structures, as the real tools do.

use crate::molecule::{Atom, Ligand, Receptor};

/// Gasteiger-flavoured deterministic partial charge: a smooth function of
/// position and radius, normalized so each molecule is net-neutral-ish.
fn assign_charges(atoms: &mut [Atom]) {
    if atoms.is_empty() {
        return;
    }
    for a in atoms.iter_mut() {
        let raw = (a.x * 0.11).sin() * 0.3 + (a.y * 0.07).cos() * 0.25 + (a.radius - 1.5) * 0.4;
        a.charge = raw.clamp(-0.8, 0.8);
    }
    let mean: f64 = atoms.iter().map(|a| a.charge).sum::<f64>() / atoms.len() as f64;
    for a in atoms.iter_mut() {
        a.charge -= mean;
    }
}

/// Add polar hydrogens: one satellite atom per fifth heavy atom.
fn add_polar_hydrogens(atoms: &mut Vec<Atom>) {
    let parents: Vec<Atom> = atoms.iter().copied().step_by(5).collect();
    for p in parents {
        atoms.push(Atom {
            x: p.x + 0.9,
            y: p.y,
            z: p.z,
            radius: 1.0,
            charge: 0.35,
        });
    }
}

/// Prepare a receptor for docking.
pub fn prepare_receptor(mut receptor: Receptor) -> Receptor {
    add_polar_hydrogens(&mut receptor.atoms);
    assign_charges(&mut receptor.atoms);
    receptor.prepared = true;
    receptor
}

/// Prepare a ligand for docking.
pub fn prepare_ligand(mut ligand: Ligand) -> Ligand {
    add_polar_hydrogens(&mut ligand.atoms);
    assign_charges(&mut ligand.atoms);
    ligand.prepared = true;
    ligand
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preparation_marks_and_charges() {
        let r = prepare_receptor(Receptor::generate("1abc", 100));
        assert!(r.prepared);
        assert!(r.atoms.len() > 100, "hydrogens added");
        assert!(r.atoms.iter().any(|a| a.charge != 0.0));
        // Net charge approximately neutral... hydrogens added after
        // normalization of parents shift it; re-prepared output is stable.
        let net: f64 = r.atoms.iter().map(|a| a.charge).sum();
        assert!(net.abs() < r.atoms.len() as f64 * 0.05, "net {net}");
    }

    #[test]
    fn preparation_is_deterministic() {
        let a = prepare_ligand(Ligand::generate("aspirin"));
        let b = prepare_ligand(Ligand::generate("aspirin"));
        assert_eq!(a, b);
    }

    #[test]
    fn charges_bounded() {
        let l = prepare_ligand(Ligand::generate("x"));
        assert!(l.atoms.iter().all(|a| a.charge.abs() <= 1.0));
    }
}
