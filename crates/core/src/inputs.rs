//! The CORRECT action's input schema (Fig. 3).
//!
//! ```yaml
//! - name: Run tox
//!   id: tox
//!   uses: globus-labs/correct@v1
//!   with:
//!     client_id: ${{ secrets.GLOBUS_ID }}
//!     client_secret: ${{ secrets.GLOBUS_SECRET }}
//!     endpoint_uuid: ${{ env.ENDPOINT_UUID }}
//!     shell_cmd: 'tox'
//! ```

use std::collections::BTreeMap;

/// Parsed, validated action inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectInputs {
    pub client_id: String,
    pub client_secret: String,
    pub endpoint_uuid: String,
    /// Exactly one of `shell_cmd` / `function_uuid` is set.
    pub shell_cmd: Option<String>,
    pub function_uuid: Option<u64>,
    /// Args passed to the function (`function_uuid` form) or appended to the
    /// shell command.
    pub args: String,
    /// When true, CORRECT runs a secondary capture task and attaches the
    /// site's software-environment description as an artifact (§7.4).
    pub capture_environment: bool,
    /// Skip the remote clone step (for commands that do not need repository
    /// contents, e.g. environment probes).
    pub skip_clone: bool,
    /// Bounded retries for *infrastructure* failures (crashed endpoint,
    /// failed UEP fork, expired token). Test failures are never retried.
    pub max_retries: u32,
    /// Base of the exponential backoff between retries, in seconds.
    pub retry_backoff_secs: u64,
    /// Sibling endpoints to fail over to when the primary endpoint crashes
    /// (comma-separated in the `with:` map).
    pub fallback_endpoints: Vec<String>,
}

impl CorrectInputs {
    /// Parse from a step's `with:` map. Returns a user-facing error message
    /// on schema violations.
    pub fn parse(with: &BTreeMap<String, String>) -> Result<CorrectInputs, String> {
        let req = |key: &str| -> Result<String, String> {
            match with.get(key) {
                Some(v) if !v.is_empty() => Ok(v.clone()),
                _ => Err(format!("correct-action: missing required input `{key}`")),
            }
        };
        let client_id = req("client_id")?;
        let client_secret = req("client_secret")?;
        let endpoint_uuid = req("endpoint_uuid")?;
        let shell_cmd = with.get("shell_cmd").filter(|v| !v.is_empty()).cloned();
        let function_uuid = match with.get("function_uuid").filter(|v| !v.is_empty()) {
            Some(raw) => Some(
                raw.trim_start_matches("fn-")
                    .parse::<u64>()
                    .or_else(|_| u64::from_str_radix(raw.trim_start_matches("fn-"), 16))
                    .map_err(|_| format!("correct-action: invalid function_uuid `{raw}`"))?,
            ),
            None => None,
        };
        match (&shell_cmd, &function_uuid) {
            (None, None) => {
                return Err("correct-action: one of `shell_cmd` or `function_uuid` is required".into())
            }
            (Some(_), Some(_)) => {
                return Err("correct-action: `shell_cmd` and `function_uuid` are mutually exclusive".into())
            }
            _ => {}
        }
        let truthy = |key: &str| {
            with.get(key)
                .map(|v| v == "true" || v == "1" || v == "yes")
                .unwrap_or(false)
        };
        let uint = |key: &str, default: u64| -> Result<u64, String> {
            match with.get(key).filter(|v| !v.is_empty()) {
                Some(raw) => raw
                    .parse::<u64>()
                    .map_err(|_| format!("correct-action: invalid `{key}` value `{raw}`")),
                None => Ok(default),
            }
        };
        let max_retries = uint("max_retries", 2)? as u32;
        let retry_backoff_secs = uint("retry_backoff_secs", 5)?;
        let fallback_endpoints = with
            .get("fallback_endpoints")
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        Ok(CorrectInputs {
            client_id,
            client_secret,
            endpoint_uuid,
            shell_cmd,
            function_uuid,
            args: with.get("args").cloned().unwrap_or_default(),
            capture_environment: truthy("capture_environment"),
            skip_clone: truthy("skip_clone"),
            max_retries,
            retry_backoff_secs,
            fallback_endpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BTreeMap<String, String> {
        [
            ("client_id", "client-000001"),
            ("client_secret", "gcs-abc"),
            ("endpoint_uuid", "ep-anvil"),
            ("shell_cmd", "tox"),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }

    #[test]
    fn parses_fig3_form() {
        let inputs = CorrectInputs::parse(&base()).unwrap();
        assert_eq!(inputs.shell_cmd.as_deref(), Some("tox"));
        assert_eq!(inputs.endpoint_uuid, "ep-anvil");
        assert!(!inputs.capture_environment);
        assert!(inputs.function_uuid.is_none());
    }

    #[test]
    fn missing_required_inputs_error() {
        for key in ["client_id", "client_secret", "endpoint_uuid"] {
            let mut m = base();
            m.remove(key);
            let err = CorrectInputs::parse(&m).unwrap_err();
            assert!(err.contains(key), "{err}");
        }
    }

    #[test]
    fn shell_and_function_are_exclusive() {
        let mut m = base();
        m.insert("function_uuid".into(), "42".into());
        assert!(CorrectInputs::parse(&m).unwrap_err().contains("mutually exclusive"));
        m.remove("shell_cmd");
        let inputs = CorrectInputs::parse(&m).unwrap();
        assert_eq!(inputs.function_uuid, Some(42));
        m.remove("function_uuid");
        assert!(CorrectInputs::parse(&m).unwrap_err().contains("required"));
    }

    #[test]
    fn function_uuid_accepts_display_form() {
        let mut m = base();
        m.remove("shell_cmd");
        // `FunctionId` displays as fn-<hex>.
        m.insert("function_uuid".into(), "fn-0000002a".into());
        let inputs = CorrectInputs::parse(&m).unwrap();
        assert_eq!(inputs.function_uuid, Some(42));
    }

    #[test]
    fn flags_parse() {
        let mut m = base();
        m.insert("capture_environment".into(), "true".into());
        m.insert("skip_clone".into(), "yes".into());
        m.insert("args".into(), "-e py312".into());
        let inputs = CorrectInputs::parse(&m).unwrap();
        assert!(inputs.capture_environment);
        assert!(inputs.skip_clone);
        assert_eq!(inputs.args, "-e py312");
    }

    #[test]
    fn resilience_inputs_default_and_parse() {
        let inputs = CorrectInputs::parse(&base()).unwrap();
        assert_eq!(inputs.max_retries, 2);
        assert_eq!(inputs.retry_backoff_secs, 5);
        assert!(inputs.fallback_endpoints.is_empty());

        let mut m = base();
        m.insert("max_retries".into(), "4".into());
        m.insert("retry_backoff_secs".into(), "1".into());
        m.insert("fallback_endpoints".into(), "ep-b, ep-c".into());
        let inputs = CorrectInputs::parse(&m).unwrap();
        assert_eq!(inputs.max_retries, 4);
        assert_eq!(inputs.retry_backoff_secs, 1);
        assert_eq!(inputs.fallback_endpoints, vec!["ep-b", "ep-c"]);

        m.insert("max_retries".into(), "lots".into());
        assert!(CorrectInputs::parse(&m).unwrap_err().contains("max_retries"));
    }

    #[test]
    fn empty_string_counts_as_missing() {
        let mut m = base();
        m.insert("client_secret".into(), String::new());
        assert!(CorrectInputs::parse(&m).is_err());
    }
}
