//! # correct-core — the paper's primary contribution
//!
//! **CORRECT** (*COntinuous Reproducibility with a Remote Execution Computing
//! Tool*, §5.3) is a CI action that lets workflow code defined on the hosting
//! service execute at arbitrary remote computing sites through the federated
//! FaaS layer — *"whereas HPC CI frameworks install runners directly on HPC
//! infrastructure, CORRECT runs within \[hosted\] runners"*, reaching HPC only
//! through authenticated, auditable FaaS tasks.
//!
//! * [`inputs::CorrectInputs`] — the action's parameter schema (client
//!   id/secret, endpoint UUID, `shell_cmd` *or* `function_uuid`, args,
//!   optional environment capture);
//! * [`action::CorrectAction`] — the action implementation: runner-side
//!   bootstrap, Globus-Auth-style authentication, remote **clone → execute**
//!   protocol, stdout/stderr propagation, artifact emission, failure
//!   propagation (§5.3, Fig. 2);
//! * [`federation::Federation`] — the composition root wiring hosting, CI,
//!   auth, FaaS and sites together, and the [`ci::WorldDriver`]
//!   implementation that lets blocked actions advance virtual time;
//! * [`recipes`] — the §5.3/§6 workflow patterns: the Fig. 3 step, per-site
//!   environments with sole reviewers, multi-site test matrices, and the
//!   §5.3 fork-and-swap-endpoints repeatability recipe.

pub mod action;
pub mod federation;
pub mod inputs;
pub mod persist;
pub mod recipes;

pub use action::{CorrectAction, CORRECT_ACTION_NAME};
pub use federation::{
    EndpointHandle, EndpointKind, EndpointSpec, Federation, FederationBuilder, OnboardedUser,
    SiteHandle, SiteId,
};
pub use inputs::CorrectInputs;
pub use persist::{archive_from_engine, archive_run};

/// Re-exports for downstream convenience.
pub use hpcci_ci as ci;
pub use hpcci_faas as faas;
