//! The federation: composition root of the whole stack.
//!
//! Owns the auth service, the FaaS cloud, the hosting service, the CI
//! engine, and every registered site, and implements [`WorldDriver`] so that
//! actions blocked on remote progress can advance virtual time. This is the
//! "system overview" of the paper's Fig. 2, as an object graph.

use crate::action::{CorrectAction, CORRECT_ACTION_NAME};
use hpcci_auth::{AuthService, IdentityMapping};
use hpcci_ci::{CiEngine, RunId, WorldDriver};
use hpcci_cluster::{FileMode, Site};
use hpcci_faas::{
    CloudService, Endpoint, EndpointConfig, EndpointId, EndpointRegistration, ExecOutcome,
    MepTemplate, MultiUserEndpoint, SiteRuntime, WorkerProvider,
};
use hpcci_provenance::EnvironmentCapture;
use hpcci_scheduler::{LocalProvider, SlurmProvider};
use hpcci_sim::{Advance, FaultInjector, FaultPlan, SimDuration, SimTime, Trace};
use hpcci_vcs::{HostingService, RepoEvent};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to a registered site.
#[derive(Clone)]
pub struct SiteHandle {
    pub name: String,
    pub shared: hpcci_faas::exec::SharedSite,
}

/// The virtual-world driver handed to executing actions.
pub struct World {
    cloud: Arc<Mutex<CloudService>>,
}

impl WorldDriver for World {
    fn now(&self) -> SimTime {
        self.cloud.lock().now()
    }

    fn step(&mut self) -> bool {
        let mut cloud = self.cloud.lock();
        match cloud.next_event() {
            Some(t) => {
                cloud.advance_to(t);
                true
            }
            None => false,
        }
    }

    fn sleep(&mut self, d: SimDuration) {
        let mut cloud = self.cloud.lock();
        let target = cloud.now() + d;
        cloud.advance_to(target);
    }
}

/// A user onboarded to the federation: identity + confidential client.
pub struct OnboardedUser {
    pub identity: hpcci_auth::Identity,
    pub client_id: String,
    /// The secret value, exactly once — store it in a CI secret.
    pub client_secret: String,
}

/// The full federation.
pub struct Federation {
    pub auth: Arc<Mutex<AuthService>>,
    pub cloud: Arc<Mutex<CloudService>>,
    pub hosting: Arc<Mutex<HostingService>>,
    pub engine: CiEngine,
    world: World,
    sites: BTreeMap<String, SiteHandle>,
    seed: u64,
    injector: Option<FaultInjector>,
}

impl Federation {
    /// Build an empty federation. `seed` drives every stochastic component.
    pub fn new(seed: u64) -> Self {
        Federation::build(seed, None)
    }

    /// Build a federation with a fault plan. Every component consults the
    /// shared [`FaultInjector`] at its event boundaries; with an empty plan
    /// the federation behaves bit-identically to [`Federation::new`].
    pub fn with_faults(seed: u64, plan: FaultPlan) -> Self {
        Federation::build(seed, Some(FaultInjector::new(plan)))
    }

    fn build(seed: u64, injector: Option<FaultInjector>) -> Self {
        let auth = Arc::new(Mutex::new(AuthService::new()));
        let cloud = Arc::new(Mutex::new(CloudService::new(auth.clone())));
        let hosting = Arc::new(Mutex::new(HostingService::new()));
        let mut engine = CiEngine::new();
        engine.register_action(
            CORRECT_ACTION_NAME,
            Arc::new(CorrectAction::new(cloud.clone())),
        );
        if let Some(inj) = &injector {
            auth.lock().set_fault_injector(inj.clone());
            cloud.lock().set_fault_injector(inj.clone());
            engine.artifacts.set_fault_injector(inj.clone());
        }
        Federation {
            auth,
            cloud: cloud.clone(),
            hosting,
            engine,
            world: World { cloud },
            sites: BTreeMap::new(),
            seed,
            injector,
        }
    }

    /// The chaos trace: every injected fault and recovery, in time order.
    /// Empty when no fault plan is installed (or none fired).
    pub fn fault_trace(&self) -> Trace {
        self.injector
            .as_ref()
            .map(|inj| inj.trace())
            .unwrap_or_default()
    }

    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Mutable access to the world driver (for custom blocking waits).
    pub fn world(&mut self) -> &mut dyn WorldDriver {
        &mut self.world
    }

    /// Register a site, attach a scheduler when it has compute nodes, and
    /// install the standard federation commands (`git`, `gc-capture-env`).
    pub fn add_site(&mut self, site: Site, scheduler_cores: u32) -> SiteHandle {
        let name = site.id.to_string();
        let mut runtime = SiteRuntime::new(site).with_scheduler(scheduler_cores);
        self.install_standard_commands(&mut runtime);
        if let (Some(inj), Some(scheduler)) = (&self.injector, &runtime.scheduler) {
            scheduler.lock().set_fault_injector(inj.clone(), &name);
        }
        let shared = hpcci_faas::exec::shared(runtime);
        let handle = SiteHandle {
            name: name.clone(),
            shared,
        };
        self.sites.insert(name, handle.clone());
        handle
    }

    pub fn site(&self, name: &str) -> Option<&SiteHandle> {
        self.sites.get(name)
    }

    /// The `git` handler clones from the federation's hosting service into
    /// the site filesystem; `gc-capture-env` renders the site's environment
    /// (§7.4's provenance capture).
    fn install_standard_commands(&self, runtime: &mut SiteRuntime) {
        let hosting = self.hosting.clone();
        runtime.commands.register("git", move |env| {
            if !env.internet_allowed() {
                return ExecOutcome::fail(
                    "fatal: unable to access remote repository: no route to host",
                    0.2,
                );
            }
            // git clone [-b <branch>] <url> [dest]
            let tokens: Vec<&str> = env.command.split_whitespace().collect();
            if tokens.get(1) != Some(&"clone") {
                return ExecOutcome::fail("git: only `clone` is supported in the federation", 0.05);
            }
            let mut branch: Option<&str> = None;
            let mut positional: Vec<&str> = Vec::new();
            let mut i = 2;
            while i < tokens.len() {
                if tokens[i] == "-b" || tokens[i] == "--branch" {
                    branch = tokens.get(i + 1).copied();
                    i += 2;
                } else {
                    positional.push(tokens[i]);
                    i += 1;
                }
            }
            let Some(url) = positional.first() else {
                return ExecOutcome::fail("git clone: missing repository url", 0.05);
            };
            // URL convention: https://github.sim/<owner>/<name>[.git]
            let full_name = url
                .trim_start_matches("https://")
                .trim_start_matches("github.sim/")
                .trim_end_matches(".git")
                .to_string();
            let dest = positional
                .get(1)
                .map(|s| s.to_string())
                .unwrap_or_else(|| {
                    let repo_dir = full_name.split('/').next_back().unwrap_or("repo");
                    format!("{}/{}", env.clone_root(), repo_dir)
                });
            let hosting = hosting.lock();
            let repo = match hosting.repo(&full_name) {
                Ok(r) => r,
                Err(e) => return ExecOutcome::fail(format!("fatal: {e}"), 0.1),
            };
            let branch_name = branch.unwrap_or(&repo.default_branch).to_string();
            let tree = match repo.checkout_branch(&branch_name) {
                Ok(t) => t.clone(),
                Err(e) => return ExecOutcome::fail(format!("fatal: {e}"), 0.1),
            };
            let head = repo.head(&branch_name).expect("branch checked out");
            drop(hosting);
            if let Err(e) = env.site.fs.mkdir_p(&dest, env.cred, FileMode::PRIVATE_DIR) {
                return ExecOutcome::fail(format!("fatal: could not create {dest}: {e}"), 0.1);
            }
            let bytes = tree.total_bytes();
            for (path, content) in tree.iter() {
                let target = format!("{dest}/{path}");
                if let Some(dir) = target.rsplit_once('/').map(|(d, _)| d) {
                    if let Err(e) = env.site.fs.mkdir_p(dir, env.cred, FileMode::PRIVATE_DIR) {
                        return ExecOutcome::fail(format!("fatal: {e}"), 0.1);
                    }
                }
                if let Err(e) = env
                    .site
                    .fs
                    .write(&target, env.cred, content.clone(), FileMode::REGULAR)
                {
                    return ExecOutcome::fail(format!("fatal: {e}"), 0.1);
                }
            }
            // Clone cost: network + unpack, dominated by I/O.
            let io_secs = bytes as f64 / env.site.perf.io_bytes_per_sec;
            ExecOutcome::ok(
                format!(
                    "Cloning into '{dest}'...\nHEAD is now at {} ({branch_name})",
                    head.short()
                ),
                0.5 + io_secs,
            )
            .with_payload(dest.clone())
        });

        runtime.commands.register("gc-capture-env", |env| {
            let env_name = {
                let args = env.args();
                if args.is_empty() { None } else { Some(args.to_string()) }
            };
            let capture = EnvironmentCapture::of_site(
                env.site,
                env_name.as_deref(),
                env.container,
            );
            let text = capture.render();
            ExecOutcome::ok(text.clone(), 0.2).with_payload(text)
        });
    }

    // ------------------------------------------------------------------
    // Endpoints
    // ------------------------------------------------------------------

    /// Register a multi-user endpoint at a site.
    pub fn register_mep(
        &mut self,
        endpoint_name: &str,
        site: &SiteHandle,
        mapping: IdentityMapping,
        template: MepTemplate,
    ) -> EndpointId {
        let mut mep = MultiUserEndpoint::new(endpoint_name, site.shared.clone(), mapping, template);
        if let Some(inj) = &self.injector {
            mep.set_fault_injector(inj.clone());
        }
        self.cloud
            .lock()
            .register_endpoint(endpoint_name, EndpointRegistration::Multi(mep))
    }

    /// Register a single-user endpoint on a site's login node.
    pub fn register_single_endpoint(
        &mut self,
        endpoint_name: &str,
        site: &SiteHandle,
        owner: hpcci_auth::IdentityId,
        local_user: &str,
    ) -> EndpointId {
        let login = site
            .shared
            .lock()
            .site
            .login_node()
            .expect("sites have a login node")
            .id;
        self.seed += 1;
        let mut ep = Endpoint::new(
            EndpointConfig::new(endpoint_name, owner, local_user),
            site.shared.clone(),
            WorkerProvider::Local(LocalProvider::new(login, 8)),
            self.seed,
        );
        if let Some(inj) = &self.injector {
            ep.set_fault_injector(inj.clone());
        }
        self.cloud
            .lock()
            .register_endpoint(endpoint_name, EndpointRegistration::Single(ep))
    }

    /// Register a single-user endpoint whose workers are SLURM pilots.
    pub fn register_pilot_endpoint(
        &mut self,
        endpoint_name: &str,
        site: &SiteHandle,
        owner: hpcci_auth::IdentityId,
        local_user: &str,
        cores: u32,
        walltime: SimDuration,
    ) -> EndpointId {
        let (scheduler, account) = {
            let rt = site.shared.lock();
            (
                rt.scheduler.clone().expect("pilot endpoint needs a scheduler"),
                rt.site.account(local_user).expect("local account exists").clone(),
            )
        };
        self.seed += 1;
        let mut ep = Endpoint::new(
            EndpointConfig::new(endpoint_name, owner, local_user),
            site.shared.clone(),
            WorkerProvider::Slurm(SlurmProvider::new(
                scheduler,
                account.uid,
                &account.allocation,
                cores,
                walltime,
            )),
            self.seed,
        );
        if let Some(inj) = &self.injector {
            ep.set_fault_injector(inj.clone());
        }
        self.cloud
            .lock()
            .register_endpoint(endpoint_name, EndpointRegistration::Single(ep))
    }

    // ------------------------------------------------------------------
    // Users and secrets
    // ------------------------------------------------------------------

    /// Register an identity and a confidential client for it. The secret is
    /// returned exactly once, for storage in a CI environment secret.
    pub fn onboard_user(&mut self, username: &str, provider: &str) -> OnboardedUser {
        let mut auth = self.auth.lock();
        let identity = auth.register_identity(username, provider, self.world.now());
        let (cid, secret) = auth
            .create_client(identity.id, &format!("correct-{username}"))
            .expect("fresh identity accepts a client");
        // Creation is the single moment the raw secret is visible (§5.2's
        // secret-handling story); it goes straight into a CI secret store.
        OnboardedUser {
            identity,
            client_id: cid.0,
            client_secret: secret.expose_value().to_string(),
        }
    }

    /// Store a user's FaaS credentials as environment-scoped CI secrets and
    /// create the approval-gated environment (sole reviewer = the user),
    /// following §5.2's recommendation.
    pub fn provision_environment(
        &mut self,
        repo: &str,
        environment: &str,
        reviewer: &str,
        user: &OnboardedUser,
    ) {
        use hpcci_ci::{Environment, Secret, SecretScope};
        self.engine.add_environment(
            repo,
            Environment::new(environment).with_reviewer(reviewer),
        );
        let scope = SecretScope::Environment {
            repo: repo.to_string(),
            environment: environment.to_string(),
        };
        self.engine
            .secrets
            .put(scope.clone(), Secret::new("GLOBUS_ID", &user.client_id));
        self.engine
            .secrets
            .put(scope, Secret::new("GLOBUS_SECRET", &user.client_secret));
    }

    // ------------------------------------------------------------------
    // Event plumbing and execution
    // ------------------------------------------------------------------

    /// Drain hosting webhooks into the CI engine, creating runs.
    pub fn pump_events(&mut self) -> Vec<RunId> {
        let events = self.hosting.lock().take_events();
        let now = self.world.now();
        let mut runs = Vec::new();
        for event in events {
            match event {
                RepoEvent::Push { repo, branch, commit, .. } => {
                    if let Ok(ids) = self.engine.on_push(&repo, &branch, &commit.short(), now) {
                        runs.extend(ids);
                    }
                }
                RepoEvent::PullRequestOpened { repo, pr, .. } => {
                    let (head_branch, commit) = {
                        let hosting = self.hosting.lock();
                        let pr = hosting.pull_request(pr).expect("event references real PR");
                        let head = hosting
                            .repo(&pr.head_repo)
                            .and_then(|r| r.head(&pr.head_branch))
                            .map(|c| c.short())
                            .unwrap_or_default();
                        (pr.head_branch.clone(), head)
                    };
                    if let Ok(ids) = self.engine.on_pull_request(&repo, &head_branch, &commit, now) {
                        runs.extend(ids);
                    }
                }
                RepoEvent::PullRequestMerged { .. } => {}
            }
        }
        runs
    }

    /// Execute all ready CI runs, then drain the world to quiescence.
    pub fn run_all(&mut self) -> Vec<RunId> {
        let executed = self.engine.execute_ready(&mut self.world);
        while self.world.step() {}
        executed
    }

    /// Approve one awaiting run and execute it.
    pub fn approve_and_run(&mut self, run: RunId, reviewer: &str) -> Result<(), hpcci_ci::CiError> {
        let now = self.world.now();
        self.engine.approve(run, reviewer, now)?;
        self.run_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_builds_and_registers_sites() {
        let mut fed = Federation::new(1);
        let cham = fed.add_site(Site::chameleon_tacc(), 64);
        let faster = fed.add_site(Site::tamu_faster(), 64);
        assert!(fed.site("chameleon-tacc").is_some());
        assert!(fed.site("nope").is_none());
        assert!(cham.shared.lock().scheduler.is_none());
        assert!(faster.shared.lock().scheduler.is_some());
        // Standard commands installed.
        assert!(cham.shared.lock().commands.resolve("git clone x").is_some());
        assert!(cham.shared.lock().commands.resolve("gc-capture-env").is_some());
    }
}
