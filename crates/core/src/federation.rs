//! The federation: composition root of the whole stack.
//!
//! Owns the auth service, the FaaS cloud, the hosting service, the CI
//! engine, and every registered site, and implements [`WorldDriver`] so that
//! actions blocked on remote progress can advance virtual time. This is the
//! "system overview" of the paper's Fig. 2, as an object graph.

use crate::action::{CorrectAction, CORRECT_ACTION_NAME};
use hpcci_auth::{AuthService, IdentityId, IdentityMapping};
use hpcci_cas::{Digest, DigestBuilder};
use hpcci_ci::{
    CacheMode, CiEngine, CiError, RunId, RunStatus, StepCache, WorkflowRun, WorldDriver,
};
use hpcci_cluster::{FileMode, Site};
use hpcci_faas::{
    CloudService, Endpoint, EndpointConfig, EndpointId, EndpointRegistration, ExecOutcome,
    MepTemplate, MultiUserEndpoint, SiteRuntime, WorkerProvider,
};
use hpcci_obs::{MetricsSnapshot, Obs, ObsConfig, RunReport};
use hpcci_provenance::EnvironmentCapture;
use hpcci_scheduler::{LocalProvider, SlurmProvider};
use hpcci_sim::{
    Advance, ArrivalGen, FaultInjector, FaultPlan, SimDuration, SimTime, Trace, Workload,
};
use hpcci_vcs::{HostingService, RepoEvent};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Typed identifier of a registered site, minted by [`Federation::add_site`].
///
/// Replaces the stringly `site(&str)` lookups: a `SiteId` can only come from
/// a successful registration, so site references cannot dangle or typo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(u32);

impl SiteId {
    /// Position in the federation's site table (registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// Handle to a registered site.
#[derive(Clone)]
pub struct SiteHandle {
    pub id: SiteId,
    pub name: String,
    pub shared: hpcci_faas::exec::SharedSite,
}

/// What kind of compute endpoint an [`EndpointSpec`] describes.
pub enum EndpointKind {
    /// Single-user endpoint with workers on the site's login node
    /// (workstation-style execution).
    Single,
    /// Single-user endpoint whose workers live inside SLURM pilot jobs.
    Pilot { cores: u32, walltime: SimDuration },
    /// Multi-user endpoint that forks per-user endpoint pairs on demand.
    MultiUser {
        mapping: IdentityMapping,
        template: MepTemplate,
    },
}

/// Declarative endpoint registration, consumed by [`Federation::register`].
///
/// One spec type replaces the three historical `register_*` methods; the
/// convenience constructors cover each kind.
pub struct EndpointSpec {
    pub name: String,
    pub site: SiteId,
    pub kind: EndpointKind,
    /// Owning identity — required for the single-user kinds.
    pub owner: Option<IdentityId>,
    /// Local account the endpoint runs as — required for the single-user kinds.
    pub local_user: Option<String>,
}

impl EndpointSpec {
    /// A login-node (workstation) endpoint.
    pub fn single(name: &str, site: SiteId, owner: IdentityId, local_user: &str) -> Self {
        EndpointSpec {
            name: name.to_string(),
            site,
            kind: EndpointKind::Single,
            owner: Some(owner),
            local_user: Some(local_user.to_string()),
        }
    }

    /// A SLURM pilot-job endpoint.
    pub fn pilot(
        name: &str,
        site: SiteId,
        owner: IdentityId,
        local_user: &str,
        cores: u32,
        walltime: SimDuration,
    ) -> Self {
        EndpointSpec {
            name: name.to_string(),
            site,
            kind: EndpointKind::Pilot { cores, walltime },
            owner: Some(owner),
            local_user: Some(local_user.to_string()),
        }
    }

    /// A multi-user endpoint.
    pub fn multi_user(
        name: &str,
        site: SiteId,
        mapping: IdentityMapping,
        template: MepTemplate,
    ) -> Self {
        EndpointSpec {
            name: name.to_string(),
            site,
            kind: EndpointKind::MultiUser { mapping, template },
            owner: None,
            local_user: None,
        }
    }
}

/// What [`Federation::register`] hands back: the cloud-side endpoint id plus
/// where the endpoint lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointHandle {
    pub id: EndpointId,
    pub name: String,
    pub site: SiteId,
}

/// The virtual-world driver handed to executing actions.
pub struct World {
    cloud: Arc<Mutex<CloudService>>,
}

impl WorldDriver for World {
    fn now(&self) -> SimTime {
        self.cloud.lock().now()
    }

    fn step(&mut self) -> bool {
        // `step_next` over `next_event`+`advance_to`: the cloud refreshes its
        // dispatch cache once per step instead of answering the read-only
        // probe with an exhaustive endpoint scan.
        self.cloud.lock().step_next(SimTime::FAR_FUTURE).is_some()
    }

    fn sleep(&mut self, d: SimDuration) {
        let mut cloud = self.cloud.lock();
        let target = cloud.now() + d;
        cloud.advance_to(target);
    }
}

impl World {
    /// Drain the world to quiescence. With a worker budget above one the
    /// cloud advances lookahead domains on parallel windows; the committed
    /// trace is byte-identical to the single-step loop either way.
    fn drain(&mut self) {
        self.cloud.lock().drain_to_quiescence();
    }
}

/// A user onboarded to the federation: identity + confidential client.
pub struct OnboardedUser {
    pub identity: hpcci_auth::Identity,
    pub client_id: String,
    /// The secret value, exactly once — store it in a CI secret.
    pub client_secret: String,
}

/// Step-wise constructor for [`Federation`] — the single construction path.
///
/// ```ignore
/// let fed = Federation::builder(seed)
///     .faults(plan)               // optional
///     .obs(ObsConfig::enabled())  // optional
///     .build();
/// ```
#[must_use = "a builder does nothing until `.build()` is called"]
pub struct FederationBuilder {
    seed: u64,
    plan: Option<FaultPlan>,
    obs: ObsConfig,
    step_cache: Option<(StepCache, CacheMode)>,
    workers: usize,
    workload: Option<Workload>,
}

impl FederationBuilder {
    /// Install a fault plan. Every component consults the shared
    /// [`FaultInjector`] at its event boundaries; with an empty plan the
    /// federation behaves bit-identically to a fault-free build.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Configure observability. [`ObsConfig::disabled`] (the default) makes
    /// every recording call a no-op branch; enabling it never perturbs
    /// simulated time, RNG streams, or component traces.
    pub fn obs(mut self, cfg: ObsConfig) -> Self {
        self.obs = cfg;
        self
    }

    /// Enable incremental CI with a fresh step cache. `Record` executes
    /// everything and memoizes cacheable results; `Replay` serves hits
    /// without dispatching and fills in on miss; `Off` (the default, also
    /// when this method is never called) is bit-identical to a federation
    /// without a cache.
    pub fn step_cache(self, mode: CacheMode) -> Self {
        self.step_cache_shared(StepCache::new(), mode)
    }

    /// Enable incremental CI over an existing (shared) cache — how a warm
    /// federation replays what a previous cold federation recorded.
    pub fn step_cache_shared(mut self, cache: StepCache, mode: CacheMode) -> Self {
        self.step_cache = Some((cache, mode));
        self
    }

    /// Advance the federation's event loop with up to `n` worker threads
    /// over conservative lookahead domains. The committed trace — and hence
    /// [`Federation::trace_digest`] — is byte-identical at every width;
    /// federations with fault plans or shared batch schedulers degrade to
    /// the serial path automatically. `1` (the default) is fully serial.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Attach a traffic [`Workload`]: a typed arrival process plus a tenant
    /// mix, replacing per-driver gap/burstiness knobs. The federation only
    /// *stores* the workload — drivers pull a seeded [`ArrivalGen`] via
    /// [`Federation::arrival_gen`], so the arrival stream is pinned by the
    /// world seed exactly like every other stochastic component.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    pub fn build(self) -> Federation {
        let mut fed = Federation::build_parts(
            self.seed,
            self.plan.map(FaultInjector::new),
            Obs::new(self.obs),
            self.step_cache,
        );
        fed.workload = self.workload;
        fed.cloud.lock().set_workers(self.workers);
        fed
    }
}

/// The full federation.
pub struct Federation {
    pub auth: Arc<Mutex<AuthService>>,
    pub cloud: Arc<Mutex<CloudService>>,
    pub hosting: Arc<Mutex<HostingService>>,
    pub engine: CiEngine,
    world: World,
    /// Registered sites, indexed by [`SiteId`] (registration order).
    sites: Vec<SiteHandle>,
    site_names: BTreeMap<String, SiteId>,
    /// Endpoint name → owning site, for software-stack fingerprinting.
    endpoint_sites: BTreeMap<String, SiteId>,
    /// Mutates as endpoints mint their per-endpoint streams.
    seed: u64,
    /// The pristine builder seed, kept for [`world_seed`](Self::world_seed).
    world_seed: u64,
    injector: Option<FaultInjector>,
    obs: Obs,
    /// Traffic model attached at build time (see [`FederationBuilder::workload`]).
    workload: Option<Workload>,
}

impl Federation {
    /// Start building a federation. `seed` drives every stochastic component.
    pub fn builder(seed: u64) -> FederationBuilder {
        FederationBuilder {
            seed,
            plan: None,
            obs: ObsConfig::disabled(),
            step_cache: None,
            workers: 1,
            workload: None,
        }
    }

    fn build_parts(
        seed: u64,
        injector: Option<FaultInjector>,
        obs: Obs,
        step_cache: Option<(StepCache, CacheMode)>,
    ) -> Self {
        let auth = Arc::new(Mutex::new(AuthService::new()));
        let cloud = Arc::new(Mutex::new(CloudService::new(auth.clone())));
        let hosting = Arc::new(Mutex::new(HostingService::new()));
        let mut engine = CiEngine::new();
        let mut action = CorrectAction::new(cloud.clone());
        action.set_obs(obs.clone());
        engine.register_action(CORRECT_ACTION_NAME, Arc::new(action));
        if let Some(inj) = &injector {
            auth.lock().set_fault_injector(inj.clone());
            cloud.lock().set_fault_injector(inj.clone());
            engine.artifacts.set_fault_injector(inj.clone());
        }
        auth.lock().set_obs(obs.clone());
        cloud.lock().set_obs(obs.clone());
        engine.set_obs(obs.clone());
        if let Some((cache, mode)) = step_cache {
            engine.set_step_cache(cache, mode);
            // The seed jitters every simulated runtime, so it is part of the
            // execution environment: salting the key chain with it keeps one
            // world's recordings from being replayed into another even when
            // both share a cache.
            engine.set_cache_salt(DigestBuilder::new().u64_field("world-seed", seed).finish());
        }
        Federation {
            auth,
            cloud: cloud.clone(),
            hosting,
            engine,
            world: World { cloud },
            sites: Vec::new(),
            site_names: BTreeMap::new(),
            endpoint_sites: BTreeMap::new(),
            seed,
            world_seed: seed,
            injector,
            obs,
            workload: None,
        }
    }

    /// The seed this federation was built from (the value passed to
    /// [`builder`](Self::builder), before endpoint registration derives
    /// per-endpoint streams from it). Scenario tooling embeds it in golden
    /// digests so a digest can never be compared across worlds.
    pub fn world_seed(&self) -> u64 {
        self.world_seed
    }

    /// The traffic model attached at build time, if any.
    pub fn workload(&self) -> Option<&Workload> {
        self.workload.as_ref()
    }

    /// A seeded arrival generator for the attached workload: forked from the
    /// world seed under the canonical traffic label, so the gap stream is
    /// byte-identical to the legacy per-driver sampler with the same seed —
    /// and identical across worker widths, which never touch RNG streams.
    /// `None` when the federation was built without a workload.
    pub fn arrival_gen(&self) -> Option<ArrivalGen> {
        self.workload.as_ref().map(|w| w.arrival_gen(self.world_seed))
    }

    /// Total simulation events the cloud has dispatched so far — the
    /// denominator of every events/s throughput figure, available without
    /// enabling observability.
    pub fn events_dispatched(&self) -> u64 {
        self.cloud.lock().events_dispatched()
    }

    /// Content digest over the full functional trace and the chaos trace —
    /// the "golden hash" of a finished run. Two same-seed, same-plan runs
    /// must produce equal digests; scenario oracles and the `hpcci-scen`
    /// CLI compare these instead of multi-megabyte renders.
    pub fn trace_digest(&self) -> Digest {
        DigestBuilder::new()
            .u64_field("seed", self.world_seed)
            .str_field("trace", &self.cloud.lock().trace.render())
            .str_field("chaos", &self.fault_trace().render())
            .finish()
    }

    /// The chaos trace: every injected fault and recovery, in time order.
    /// Empty when no fault plan is installed (or none fired).
    pub fn fault_trace(&self) -> Trace {
        self.injector
            .as_ref()
            .map(|inj| inj.trace())
            .unwrap_or_default()
    }

    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Mutable access to the world driver (for custom blocking waits).
    pub fn world(&mut self) -> &mut dyn WorldDriver {
        &mut self.world
    }

    /// Register a site, attach a scheduler when it has compute nodes, and
    /// install the standard federation commands (`git`, `gc-capture-env`).
    /// Returns the typed id every later site reference goes through.
    pub fn add_site(&mut self, site: Site, scheduler_cores: u32) -> SiteId {
        let name = site.id.to_string();
        let mut runtime = SiteRuntime::new(site).with_scheduler(scheduler_cores);
        self.install_standard_commands(&mut runtime);
        if let (Some(inj), Some(scheduler)) = (&self.injector, &runtime.scheduler) {
            scheduler.lock().set_fault_injector(inj.clone(), &name);
        }
        if self.obs.is_enabled() {
            if let Some(scheduler) = &runtime.scheduler {
                scheduler.lock().set_obs(self.obs.clone(), &name);
            }
        }
        let shared = hpcci_faas::exec::shared(runtime);
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(SiteHandle {
            id,
            name: name.clone(),
            shared,
        });
        self.site_names.insert(name, id);
        id
    }

    /// Handle of a registered site.
    ///
    /// # Panics
    /// If `id` was not minted by this federation's [`add_site`](Self::add_site).
    pub fn site(&self, id: SiteId) -> &SiteHandle {
        &self.sites[id.index()]
    }

    /// Look a site up by its human-readable name.
    pub fn site_by_name(&self, name: &str) -> Option<&SiteHandle> {
        self.site_names.get(name).map(|id| &self.sites[id.index()])
    }

    /// All registered sites in registration order.
    pub fn sites(&self) -> impl Iterator<Item = &SiteHandle> {
        self.sites.iter()
    }

    /// The `git` handler clones from the federation's hosting service into
    /// the site filesystem; `gc-capture-env` renders the site's environment
    /// (§7.4's provenance capture).
    fn install_standard_commands(&self, runtime: &mut SiteRuntime) {
        let hosting = self.hosting.clone();
        runtime.commands.register("git", move |env| {
            if !env.internet_allowed() {
                return ExecOutcome::fail(
                    "fatal: unable to access remote repository: no route to host",
                    0.2,
                );
            }
            // git clone [-b <branch>] <url> [dest]
            let tokens: Vec<&str> = env.command.split_whitespace().collect();
            if tokens.get(1) != Some(&"clone") {
                return ExecOutcome::fail("git: only `clone` is supported in the federation", 0.05);
            }
            let mut branch: Option<&str> = None;
            let mut positional: Vec<&str> = Vec::new();
            let mut i = 2;
            while i < tokens.len() {
                if tokens[i] == "-b" || tokens[i] == "--branch" {
                    branch = tokens.get(i + 1).copied();
                    i += 2;
                } else {
                    positional.push(tokens[i]);
                    i += 1;
                }
            }
            let Some(url) = positional.first() else {
                return ExecOutcome::fail("git clone: missing repository url", 0.05);
            };
            // URL convention: https://github.sim/<owner>/<name>[.git]
            let full_name = url
                .trim_start_matches("https://")
                .trim_start_matches("github.sim/")
                .trim_end_matches(".git")
                .to_string();
            let dest = positional
                .get(1)
                .map(|s| s.to_string())
                .unwrap_or_else(|| {
                    let repo_dir = full_name.split('/').next_back().unwrap_or("repo");
                    format!("{}/{}", env.clone_root(), repo_dir)
                });
            let hosting = hosting.lock();
            let repo = match hosting.repo(&full_name) {
                Ok(r) => r,
                Err(e) => return ExecOutcome::fail(format!("fatal: {e}"), 0.1),
            };
            let branch_name = branch.unwrap_or(&repo.default_branch).to_string();
            let tree = match repo.checkout_branch(&branch_name) {
                Ok(t) => t.clone(),
                Err(e) => return ExecOutcome::fail(format!("fatal: {e}"), 0.1),
            };
            let head = repo.head(&branch_name).expect("branch checked out");
            drop(hosting);
            if let Err(e) = env.site.fs.mkdir_p(&dest, env.cred, FileMode::PRIVATE_DIR) {
                return ExecOutcome::fail(format!("fatal: could not create {dest}: {e}"), 0.1);
            }
            let bytes = tree.total_bytes();
            for (path, content) in tree.iter() {
                let target = format!("{dest}/{path}");
                if let Some(dir) = target.rsplit_once('/').map(|(d, _)| d) {
                    if let Err(e) = env.site.fs.mkdir_p(dir, env.cred, FileMode::PRIVATE_DIR) {
                        return ExecOutcome::fail(format!("fatal: {e}"), 0.1);
                    }
                }
                if let Err(e) = env
                    .site
                    .fs
                    .write(&target, env.cred, content.clone(), FileMode::REGULAR)
                {
                    return ExecOutcome::fail(format!("fatal: {e}"), 0.1);
                }
            }
            // Clone cost: network + unpack, dominated by I/O.
            let io_secs = bytes as f64 / env.site.perf.io_bytes_per_sec;
            ExecOutcome::ok(
                format!(
                    "Cloning into '{dest}'...\nHEAD is now at {} ({branch_name})",
                    head.short()
                ),
                0.5 + io_secs,
            )
            .with_payload(dest.clone())
        });

        runtime.commands.register("gc-capture-env", |env| {
            let env_name = {
                let args = env.args();
                if args.is_empty() { None } else { Some(args.to_string()) }
            };
            let capture = EnvironmentCapture::of_site(
                env.site,
                env_name.as_deref(),
                env.container,
            );
            let text = capture.render();
            ExecOutcome::ok(text.clone(), 0.2).with_payload(text)
        });
    }

    // ------------------------------------------------------------------
    // Endpoints
    // ------------------------------------------------------------------

    /// Register a compute endpoint described by `spec` — the single entry
    /// point behind which the historical `register_*` trio now forwards.
    ///
    /// # Panics
    /// If a single-user spec omits `owner`/`local_user`, or a pilot spec
    /// targets a site without a scheduler.
    pub fn register(&mut self, spec: EndpointSpec) -> EndpointHandle {
        let EndpointSpec {
            name,
            site,
            kind,
            owner,
            local_user,
        } = spec;
        let shared = self.site(site).shared.clone();
        let id = match kind {
            EndpointKind::Single => {
                let owner = owner.expect("single-user endpoint needs an owner");
                let local_user = local_user.expect("single-user endpoint needs a local user");
                let login = shared
                    .lock()
                    .site
                    .login_node()
                    .expect("sites have a login node")
                    .id;
                self.seed += 1;
                let mut ep = Endpoint::new(
                    EndpointConfig::new(&name, owner, &local_user),
                    shared,
                    WorkerProvider::Local(LocalProvider::new(login, 8)),
                    self.seed,
                );
                if let Some(inj) = &self.injector {
                    ep.set_fault_injector(inj.clone());
                }
                self.cloud
                    .lock()
                    .register_endpoint(&name, EndpointRegistration::Single(Box::new(ep)))
            }
            EndpointKind::Pilot { cores, walltime } => {
                let owner = owner.expect("single-user endpoint needs an owner");
                let local_user = local_user.expect("single-user endpoint needs a local user");
                let (scheduler, account) = {
                    let rt = shared.lock();
                    (
                        rt.scheduler.clone().expect("pilot endpoint needs a scheduler"),
                        rt.site.account(&local_user).expect("local account exists").clone(),
                    )
                };
                self.seed += 1;
                let mut ep = Endpoint::new(
                    EndpointConfig::new(&name, owner, &local_user),
                    shared,
                    WorkerProvider::Slurm(SlurmProvider::new(
                        scheduler,
                        account.uid,
                        &account.allocation,
                        cores,
                        walltime,
                    )),
                    self.seed,
                );
                if let Some(inj) = &self.injector {
                    ep.set_fault_injector(inj.clone());
                }
                self.cloud
                    .lock()
                    .register_endpoint(&name, EndpointRegistration::Single(Box::new(ep)))
            }
            EndpointKind::MultiUser { mapping, template } => {
                let mut mep = MultiUserEndpoint::new(&name, shared, mapping, template);
                if let Some(inj) = &self.injector {
                    mep.set_fault_injector(inj.clone());
                }
                self.cloud
                    .lock()
                    .register_endpoint(&name, EndpointRegistration::Multi(Box::new(mep)))
            }
        };
        self.endpoint_sites.insert(name.clone(), site);
        EndpointHandle { id, name, site }
    }

    // ------------------------------------------------------------------
    // Incremental CI
    // ------------------------------------------------------------------

    /// The step cache the CI engine records into / replays from, when one
    /// was installed via [`FederationBuilder::step_cache`].
    pub fn step_cache(&self) -> Option<&StepCache> {
        self.engine.step_cache()
    }

    /// Recompute every registered endpoint's software-stack fingerprint and
    /// hand the digests to the CI engine. Step keys embed these, so a
    /// package installed or upgraded at a site invalidates exactly that
    /// site's cached step results. Called automatically before execution
    /// ([`run_all`](Self::run_all)); cheap and idempotent.
    pub fn refresh_stack_fingerprints(&mut self) {
        if self.engine.cache_mode() == CacheMode::Off {
            return;
        }
        for (endpoint, site) in &self.endpoint_sites {
            let handle = &self.sites[site.index()];
            let digest = {
                let rt = handle.shared.lock();
                let mut b = DigestBuilder::new().str_field("site", &handle.name);
                for env_name in rt.site.envs.names() {
                    b = b.str_field("env", env_name);
                    let env = rt.site.envs.get(env_name).expect("name just listed");
                    for pkg in env.freeze() {
                        b = b.str_field("pkg", &pkg.name).str_field("ver", &pkg.version);
                    }
                }
                b.finish()
            };
            self.engine.set_stack_fingerprint(endpoint, digest);
        }
        // Hosted runners share one (empty) stack: a stable non-site digest.
        self.engine
            .set_stack_fingerprint("*", Digest::of_str("hosted-runner-stack"));
    }

    // ------------------------------------------------------------------
    // Users and secrets
    // ------------------------------------------------------------------

    /// Register an identity and a confidential client for it. The secret is
    /// returned exactly once, for storage in a CI environment secret.
    pub fn onboard_user(&mut self, username: &str, provider: &str) -> OnboardedUser {
        let mut auth = self.auth.lock();
        let identity = auth.register_identity(username, provider, self.world.now());
        let (cid, secret) = auth
            .create_client(identity.id, &format!("correct-{username}"))
            .expect("fresh identity accepts a client");
        // Creation is the single moment the raw secret is visible (§5.2's
        // secret-handling story); it goes straight into a CI secret store.
        OnboardedUser {
            identity,
            client_id: cid.0,
            client_secret: secret.expose_value().to_string(),
        }
    }

    /// Store a user's FaaS credentials as environment-scoped CI secrets and
    /// create the approval-gated environment (sole reviewer = the user),
    /// following §5.2's recommendation.
    pub fn provision_environment(
        &mut self,
        repo: &str,
        environment: &str,
        reviewer: &str,
        user: &OnboardedUser,
    ) {
        use hpcci_ci::{Environment, Secret, SecretScope};
        self.engine.add_environment(
            repo,
            Environment::new(environment).with_reviewer(reviewer),
        );
        let scope = SecretScope::Environment {
            repo: repo.to_string(),
            environment: environment.to_string(),
        };
        self.engine
            .secrets
            .put(scope.clone(), Secret::new("GLOBUS_ID", &user.client_id));
        self.engine
            .secrets
            .put(scope, Secret::new("GLOBUS_SECRET", &user.client_secret));
    }

    // ------------------------------------------------------------------
    // Event plumbing and execution
    // ------------------------------------------------------------------

    /// Drain hosting webhooks into the CI engine, creating runs.
    pub fn pump_events(&mut self) -> Vec<RunId> {
        let events = self.hosting.lock().take_events();
        let now = self.world.now();
        let mut runs = Vec::new();
        for event in events {
            match event {
                RepoEvent::Push { repo, branch, commit, .. } => {
                    if let Ok(ids) = self.engine.on_push(&repo, &branch, &commit.short(), now) {
                        runs.extend(ids);
                    }
                }
                RepoEvent::PullRequestOpened { repo, pr, .. } => {
                    let (head_branch, commit) = {
                        let hosting = self.hosting.lock();
                        let pr = hosting.pull_request(pr).expect("event references real PR");
                        let head = hosting
                            .repo(&pr.head_repo)
                            .and_then(|r| r.head(&pr.head_branch))
                            .map(|c| c.short())
                            .unwrap_or_default();
                        (pr.head_branch.clone(), head)
                    };
                    if let Ok(ids) = self.engine.on_pull_request(&repo, &head_branch, &commit, now) {
                        runs.extend(ids);
                    }
                }
                RepoEvent::PullRequestMerged { .. } => {}
            }
        }
        runs
    }

    /// Execute all ready CI runs, then drain the world to quiescence.
    pub fn run_all(&mut self) -> Vec<RunId> {
        self.refresh_stack_fingerprints();
        let executed = self.engine.execute_ready(&mut self.world);
        self.world.drain();
        executed
    }

    /// Approve one awaiting run and execute it.
    pub fn approve_and_run(&mut self, run: RunId, reviewer: &str) -> Result<(), CiError> {
        let now = self.world.now();
        self.engine.approve(run, reviewer, now)?;
        self.run_all();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// The observability handle components record into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Harvest component-local counters and return a deterministic snapshot
    /// of every metric series. With observability disabled the snapshot is
    /// empty. Two same-seed runs yield byte-identical snapshots
    /// ([`MetricsSnapshot::to_json`] / [`MetricsSnapshot::to_prometheus`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.cloud.lock().harvest_metrics();
        self.engine.harvest_metrics();
        if self.obs.is_enabled() {
            let injected = self.fault_trace().of_kind("fault.inject").count() as u64;
            self.obs.set_counter("faults.injected", injected);
        }
        self.obs.snapshot()
    }

    /// Per-run telemetry summary (the paper's Fig. 4 columns: submit, start,
    /// finish, outcome, artifact volume, failure kind).
    pub fn run_report(&self, run: RunId) -> Result<RunReport, CiError> {
        let record = self.engine.run(run)?;
        Ok(self.report_of(record))
    }

    /// Reports for every run the engine knows, in [`RunId`] order.
    pub fn run_reports(&self) -> Vec<RunReport> {
        let mut reports: Vec<RunReport> = self.engine.runs().map(|r| self.report_of(r)).collect();
        reports.sort_by_key(|r| r.run);
        reports
    }

    fn report_of(&self, record: &WorkflowRun) -> RunReport {
        let now = self.world.now();
        let status = match record.status {
            RunStatus::AwaitingApproval => "awaiting-approval",
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Success => "success",
            RunStatus::Failure => "failure",
            RunStatus::Rejected => "rejected",
        };
        let artifact_bytes: u64 = self
            .engine
            .artifacts
            .of_run(record.id, now)
            .iter()
            .map(|a| a.content.len() as u64)
            .sum();
        // Infrastructure failures are flagged by the action's `failure_kind`
        // step output (§2.1); anything else that failed is a test failure.
        let failure_kind = record
            .steps
            .iter()
            .find_map(|s| s.outputs.get("failure_kind").cloned())
            .or_else(|| {
                (record.status == RunStatus::Failure).then(|| "test".to_string())
            });
        RunReport {
            run: record.id.0,
            repo: record.repo.to_string(),
            workflow: record.workflow.to_string(),
            branch: record.branch.to_string(),
            commit: record.commit.to_string(),
            status: status.to_string(),
            triggered_at_us: record.triggered_at.as_micros(),
            started_at_us: record.started_at.map(|t| t.as_micros()),
            ended_at_us: record.ended_at.map(|t| t.as_micros()),
            steps: record.steps.len() as u32,
            failed_steps: record.steps.iter().filter(|s| !s.success).count() as u32,
            artifact_bytes,
            failure_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_builds_and_registers_sites() {
        let mut fed = Federation::builder(1).build();
        let cham = fed.add_site(Site::chameleon_tacc(), 64);
        let faster = fed.add_site(Site::tamu_faster(), 64);
        assert_eq!(fed.site_by_name("chameleon-tacc").map(|s| s.id), Some(cham));
        assert!(fed.site_by_name("nope").is_none());
        assert_eq!(fed.site(cham).name, "chameleon-tacc");
        assert!(fed.site(cham).shared.lock().scheduler.is_none());
        assert!(fed.site(faster).shared.lock().scheduler.is_some());
        // Standard commands installed.
        let cham = fed.site(cham);
        assert!(cham.shared.lock().commands.resolve("git clone x").is_some());
        assert!(cham.shared.lock().commands.resolve("gc-capture-env").is_some());
    }

    #[test]
    fn builder_is_the_single_construction_path() {
        let mut fed = Federation::builder(7).build();
        let site = fed.add_site(Site::tamu_faster(), 64);
        assert_eq!(site.index(), 0);
        // Disabled observability yields an empty snapshot.
        let snap = fed.metrics();
        assert!(snap.counters.is_empty());
        // No cache installed: engine stays in Off mode with no store.
        assert!(fed.step_cache().is_none());
        assert_eq!(fed.engine.cache_mode(), CacheMode::Off);
    }

    #[test]
    fn step_cache_modes_install_a_shared_store() {
        let fed = Federation::builder(9).step_cache(CacheMode::Record).build();
        let cache = fed.step_cache().expect("installed").clone();
        assert_eq!(fed.engine.cache_mode(), CacheMode::Record);
        assert!(cache.is_empty());

        // A warm federation replays over the same cache handle.
        let warm = Federation::builder(9)
            .step_cache_shared(cache.clone(), CacheMode::Replay)
            .build();
        assert_eq!(warm.engine.cache_mode(), CacheMode::Replay);
        // Both federations' artifact stores dedup into the same CAS.
        let d = warm.engine.artifacts.cas().unwrap().put(b"shared-bytes");
        assert!(fed.engine.artifacts.cas().unwrap().contains(d));
    }

    #[test]
    fn stack_fingerprints_follow_software_changes() {
        let mut fed = Federation::builder(11).step_cache(CacheMode::Record).build();
        let site = fed.add_site(Site::tamu_faster(), 64);
        let user = fed.onboard_user("vhayot", "purdue");
        fed.register(EndpointSpec::single("ep-faster", site, user.identity.id, "x-vhayot"));
        fed.refresh_stack_fingerprints();
        let before = fed.engine.stack_fingerprint("ep-faster").unwrap();
        assert_eq!(
            fed.engine.stack_fingerprint("ep-faster"),
            Some(before),
            "refresh is idempotent"
        );

        // Installing a package at the site changes the endpoint fingerprint,
        // which is what invalidates that site's cached steps.
        fed.site(site)
            .shared
            .lock()
            .site
            .envs
            .create("tox-env")
            .install("pytest", "8.0.0");
        fed.refresh_stack_fingerprints();
        let after = fed.engine.stack_fingerprint("ep-faster").unwrap();
        assert_ne!(before, after, "package install invalidates the stack digest");
        assert!(fed.engine.stack_fingerprint("*").is_some());
    }

    #[test]
    fn metrics_snapshot_exposes_core_series_when_enabled() {
        let fed = Federation::builder(3).obs(ObsConfig::enabled()).build();
        let snap = fed.metrics();
        for series in ["sched.queue_wait_us", "faas.pilot_provision_us", "faas.task_latency_us"] {
            assert!(snap.histogram(series).is_some(), "missing {series}");
        }
        for counter in ["action.retries", "faults.injected", "sim.events_dispatched"] {
            assert!(snap.counters.contains_key(counter), "missing {counter}");
        }
    }
}
