//! Workflow recipes: the §5.3 and §6 patterns as reusable builders.

use crate::action::CORRECT_ACTION_NAME;
use hpcci_ci::workflow::{JobDef, StepDef, TriggerEvent, WorkflowDef};

/// The Fig. 3 step, verbatim: run `tox` remotely via CORRECT, with secrets
/// and the endpoint UUID interpolated from the environment.
pub fn fig3_step() -> StepDef {
    StepDef::uses(
        "tox",
        CORRECT_ACTION_NAME,
        &[
            ("client_id", "${{ secrets.GLOBUS_ID }}"),
            ("client_secret", "${{ secrets.GLOBUS_SECRET }}"),
            ("endpoint_uuid", "${{ env.ENDPOINT_UUID }}"),
            ("shell_cmd", "tox"),
        ],
    )
}

/// Render the Fig. 3 snippet in its published YAML form (for the bench
/// binary that regenerates the figure).
pub fn fig3_yaml() -> String {
    "- name: Run tox\n  id: tox\n  uses: globus-labs/correct@v1\n  with:\n    client_id: ${{ secrets.GLOBUS_ID }}\n    client_secret: ${{ secrets.GLOBUS_SECRET }}\n    endpoint_uuid: ${{ env.ENDPOINT_UUID }}\n    shell_cmd: 'tox'\n".to_string()
}

/// A CORRECT step with an explicit endpoint and command.
pub fn correct_step(id: &str, endpoint_uuid: &str, shell_cmd: &str) -> StepDef {
    StepDef::uses(
        id,
        CORRECT_ACTION_NAME,
        &[
            ("client_id", "${{ secrets.GLOBUS_ID }}"),
            ("client_secret", "${{ secrets.GLOBUS_SECRET }}"),
            ("endpoint_uuid", endpoint_uuid),
            ("shell_cmd", shell_cmd),
        ],
    )
}

/// Like [`correct_step`] with provenance capture enabled.
pub fn correct_step_with_capture(id: &str, endpoint_uuid: &str, shell_cmd: &str) -> StepDef {
    StepDef::uses(
        id,
        CORRECT_ACTION_NAME,
        &[
            ("client_id", "${{ secrets.GLOBUS_ID }}"),
            ("client_secret", "${{ secrets.GLOBUS_SECRET }}"),
            ("endpoint_uuid", endpoint_uuid),
            ("shell_cmd", shell_cmd),
            ("capture_environment", "true"),
        ],
    )
}

/// The §6.1 multi-site pattern: one approval-gated job per site, each
/// running the same command at that site's endpoint and uploading the
/// stdout/stderr as an artifact named after the site.
///
/// `sites` is a list of `(environment_name, endpoint_uuid)` pairs; each job
/// targets the environment so per-user secrets and sole-reviewer approval
/// apply (§5.2).
pub fn multi_site_workflow(name: &str, sites: &[(&str, &str)], shell_cmd: &str) -> WorkflowDef {
    let mut wf = WorkflowDef::new(name).on_event(TriggerEvent::push_any());
    for (environment, endpoint) in sites {
        let job_id = format!("test-{environment}");
        let step_id = format!("run-{environment}");
        let job = JobDef::new(&job_id)
            .with_environment(environment)
            .with_step(correct_step(&step_id, endpoint, shell_cmd).allow_failure())
            .with_step(StepDef::upload_artifact(
                &format!("save-{environment}"),
                &format!("{environment}-output"),
                &step_id,
            ));
        wf = wf.with_job(job);
    }
    wf
}

/// The §6.2 PSI/J pattern: a single site, stdout/stderr stored as artifacts
/// "regardless of whether the tests pass or fail".
pub fn single_site_workflow(
    name: &str,
    environment: &str,
    endpoint_uuid: &str,
    shell_cmd: &str,
) -> WorkflowDef {
    WorkflowDef::new(name)
        .on_event(TriggerEvent::push_any())
        .with_job(
            JobDef::new("remote-test")
                .with_environment(environment)
                // `continue-on-error`: the artifact upload always happens,
                // and the run is still reported failed when the remote tests
                // failed (soft-failure semantics, matching §6.2's Fig. 5).
                .with_step(correct_step("run", endpoint_uuid, shell_cmd).allow_failure())
                .with_step(StepDef::upload_artifact("save", "pytest-output", "run")),
        )
}

/// The §6.3 KaMPIng pattern: one workflow step per artifact script, each
/// stored as a workflow artifact via `actions/upload-artifact@v4`.
pub fn artifact_suite_workflow(
    name: &str,
    environment: &str,
    endpoint_uuid: &str,
    artifact_cmds: &[(&str, &str)],
) -> WorkflowDef {
    let mut job = JobDef::new("artifacts").with_environment(environment);
    for (artifact_name, cmd) in artifact_cmds {
        let step_id = format!("run-{artifact_name}");
        job = job
            .with_step(correct_step(&step_id, endpoint_uuid, cmd))
            .with_step(StepDef::upload_artifact(
                &format!("save-{artifact_name}"),
                artifact_name,
                &step_id,
            ));
    }
    WorkflowDef::new(name)
        .on_event(TriggerEvent::WorkflowDispatch)
        .with_job(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_ci::workflow::StepAction;

    #[test]
    fn fig3_step_matches_paper() {
        let s = fig3_step();
        match &s.action {
            StepAction::Uses { action, with } => {
                assert_eq!(action, "globus-labs/correct@v1");
                assert_eq!(with["shell_cmd"], "tox");
                assert!(with["client_id"].contains("secrets.GLOBUS_ID"));
                assert!(with["endpoint_uuid"].contains("env.ENDPOINT_UUID"));
            }
            _ => panic!("fig3 step must be a `uses:`"),
        }
        let yaml = fig3_yaml();
        assert!(yaml.contains("uses: globus-labs/correct@v1"));
        assert!(yaml.contains("shell_cmd: 'tox'"));
    }

    #[test]
    fn multi_site_workflow_shape() {
        let wf = multi_site_workflow(
            "parsldock-ci",
            &[
                ("chameleon", "ep-cham"),
                ("faster-vhayot", "ep-faster"),
                ("expanse-vhayot", "ep-expanse"),
            ],
            "pytest tests/",
        );
        assert_eq!(wf.jobs.len(), 3);
        for job in &wf.jobs {
            assert!(job.environment.is_some());
            assert_eq!(job.steps.len(), 2, "run + upload");
            assert!(job.steps[0].continue_on_error, "artifacts always upload");
        }
        // Jobs are independent (no needs): sites run in parallel conceptually.
        assert!(wf.jobs.iter().all(|j| j.needs.is_empty()));
    }

    #[test]
    fn artifact_suite_workflow_pairs_run_and_upload() {
        let wf = artifact_suite_workflow(
            "kamping-repro",
            "chameleon",
            "ep-cham",
            &[("allreduce", "bash artifacts/allreduce.sh"), ("vector-bool", "bash artifacts/vector_bool.sh")],
        );
        assert_eq!(wf.jobs.len(), 1);
        assert_eq!(wf.jobs[0].steps.len(), 4);
        assert_eq!(wf.on, vec![TriggerEvent::WorkflowDispatch]);
    }
}
