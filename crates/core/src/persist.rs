//! §7.4's future-work extensions, implemented:
//!
//! * "As GitHub artifacts remain available for only 90 days, it may be
//!   necessary to persist flow run executions to a more permanent location
//!   … publish artifacts to external data repositories like Zenodo."
//!   [`archive_run`] packages a workflow run — its metadata, per-step
//!   records and every artifact — into a [`ResearchObject`] with a
//!   persistent identifier, outliving the CI retention window.
//! * "A secondary call to CORRECT could be made to capture a trace of the
//!   system's software environment and publish it as a workflow artifact."
//!   The action's `capture_environment` input does exactly that; the archive
//!   folds the captured environment into the research object.

use hpcci_cas::CasStore;
use hpcci_ci::{ArtifactStore, CiError, RunId, RunStatus, WorkflowRun};
use hpcci_provenance::{CacheEntry, EnvironmentCapture, ExecutionRecord, ResearchObject};
use hpcci_sim::SimTime;

/// Package a finished run into a permanent research object.
///
/// `serial` feeds the DOI allocator (a Zenodo deposit number, in spirit).
/// Every live artifact of the run is embedded as a data resource; every
/// executed step becomes an execution record. The returned object satisfies
/// the "Artifacts Available" checklist if the run produced any artifact.
pub fn archive_run(
    run: &WorkflowRun,
    artifacts: &ArtifactStore,
    now: SimTime,
    serial: u64,
) -> Result<ResearchObject, CiError> {
    let mut ro = ResearchObject::new(
        &format!("CI run {} of {} ({})", run.id, run.repo, run.workflow),
        &run.repo,
        &run.commit,
    )
    .with_documentation(&format!(
        "Workflow `{}` triggered on branch `{}`; status {:?}. Full step log embedded in \
         execution records.",
        run.workflow, run.branch, run.status
    ));

    for artifact in artifacts.of_run(run.id, now) {
        ro.add_data(
            &artifact.name,
            &format!("ci://artifacts/{}/{}", run.id, artifact.name),
            "workflow artifact (stdout/stderr or provenance capture)",
            artifact.content.len() as u64,
        );
    }

    // The environment capture, when present, becomes the record's
    // environment; otherwise a minimal descriptor is synthesized from the
    // step outputs so the record is never environment-less.
    let captured_env = artifacts
        .fetch(run.id, "environment.txt", now)
        .ok()
        .map(|a| a.text());

    for step in &run.steps {
        let environment = EnvironmentCapture {
            site: step.outputs.get("node").cloned().unwrap_or_default(),
            site_kind: String::new(),
            hostname: step.outputs.get("node").cloned().unwrap_or_default(),
            cores: 0,
            mem_gb: 0,
            cpu_speed: 0.0,
            env_name: captured_env.clone(),
            packages: Vec::new(),
            container: None,
        };
        ro.add_execution(ExecutionRecord {
            repo: run.repo.to_string(),
            commit: run.commit.to_string(),
            command: format!("{}/{}", step.job, step.step),
            environment,
            ran_as: step.outputs.get("ran_as").cloned().unwrap_or_default(),
            node: step.outputs.get("node").cloned().unwrap_or_default(),
            started_us: step.started.as_micros(),
            ended_us: step.ended.as_micros(),
            success: step.success,
            stdout: step.stdout.clone(),
            stderr: step.stderr.clone(),
        });
    }

    ro.archive(serial);
    Ok(ro)
}

/// Task-provenance cache rows for a run: one pointer per live artifact,
/// carrying the artifact's CAS digest so a later audit can verify
/// bit-for-bit that the archived bytes are the bytes the run produced
/// (entries from stores without an attached CAS carry `Digest::NONE`).
pub fn provenance_entries(
    run: &WorkflowRun,
    artifacts: &ArtifactStore,
    now: SimTime,
) -> Vec<CacheEntry> {
    artifacts
        .of_run(run.id, now)
        .into_iter()
        .map(|artifact| CacheEntry {
            pipeline: run.workflow.to_string(),
            dataset: run.repo.to_string(),
            task_id: format!("{}", run.id),
            location: format!("ci://artifacts/{}/{}", run.id, artifact.name),
            at_us: run.triggered_at.as_micros(),
            success: run.status == RunStatus::Success,
            cas_digest: artifact.digest,
        })
        .collect()
}

/// Check a provenance pointer against the content store: true when the CAS
/// still holds an object whose digest matches the entry (v1 entries with no
/// digest cannot be verified and return false).
pub fn verify_provenance_entry(entry: &CacheEntry, cas: &CasStore) -> bool {
    !entry.cas_digest.is_none() && cas.contains(entry.cas_digest)
}

/// Convenience: archive a run straight out of a CI engine.
pub fn archive_from_engine(
    engine: &hpcci_ci::CiEngine,
    run: RunId,
    now: SimTime,
    serial: u64,
) -> Result<ResearchObject, CiError> {
    let record = engine.run(run)?;
    archive_run(record, &engine.artifacts, now, serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_ci::{RunStatus, StepRun};
    use std::collections::BTreeMap;

    fn sample_run() -> WorkflowRun {
        let mut outputs = BTreeMap::new();
        outputs.insert("ran_as".to_string(), "x-vhayot".to_string());
        outputs.insert("node".to_string(), "anvil-login-1".to_string());
        WorkflowRun {
            id: RunId(9),
            repo: "ExaWorks/psij-python".into(),
            workflow: "psij-ci".into(),
            branch: "main".into(),
            commit: "abc123def456".into(),
            status: RunStatus::Success,
            triggered_at: SimTime::ZERO,
            started_at: Some(SimTime::from_secs(1)),
            ended_at: Some(SimTime::from_secs(60)),
            approved_by: Some("vhayot".into()),
            steps: vec![StepRun {
                job: "remote-test".into(),
                step: "run".into(),
                success: true,
                stdout: "6 passed".into(),
                stderr: String::new(),
                outputs,
                started: SimTime::from_secs(1),
                ended: SimTime::from_secs(59),
            }],
        }
    }

    #[test]
    fn archive_outlives_ci_retention() {
        let run = sample_run();
        let mut store = ArtifactStore::new();
        store.upload(RunId(9), "pytest-output", "6 passed\nfull log", SimTime::ZERO);
        let ro = archive_run(&run, &store, SimTime::from_secs(10), 42).unwrap();
        assert!(ro.doi.as_deref().unwrap().starts_with("10.5281/"));
        assert_eq!(ro.data.len(), 1);
        assert_eq!(ro.executions.len(), 1);
        assert!(ro.artifacts_available());

        // 91 days later the CI artifact is gone; the research object stays.
        let day91 = SimTime::from_secs(91 * 24 * 3600);
        store.purge_expired(day91);
        assert!(store.fetch(RunId(9), "pytest-output", day91).is_err());
        assert_eq!(ro.data[0].name, "pytest-output");
        assert_eq!(ro.executions[0].ran_as, "x-vhayot");
    }

    #[test]
    fn provenance_entries_carry_verifiable_cas_digests() {
        let run = sample_run();
        let mut store = ArtifactStore::new();
        let cas = CasStore::new();
        store.attach_cas(cas.clone());
        store.upload(RunId(9), "pytest-output", "6 passed\nfull log", SimTime::ZERO);
        let entries = provenance_entries(&run, &store, SimTime::from_secs(10));
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.pipeline, "psij-ci");
        assert_eq!(e.location, "ci://artifacts/run#9/pytest-output");
        assert!(!e.cas_digest.is_none());
        assert!(verify_provenance_entry(e, &cas), "bytes still in the CAS");

        // Without a CAS attached the pointer exists but cannot be verified.
        let mut bare = ArtifactStore::new();
        bare.upload(RunId(9), "pytest-output", "6 passed\nfull log", SimTime::ZERO);
        let legacy = provenance_entries(&run, &bare, SimTime::from_secs(10));
        assert!(legacy[0].cas_digest.is_none());
        assert!(!verify_provenance_entry(&legacy[0], &cas));
    }

    #[test]
    fn captured_environment_is_folded_in() {
        let run = sample_run();
        let mut store = ArtifactStore::new();
        store.upload(RunId(9), "environment.txt", "site: purdue-anvil\npsij==0.9.9", SimTime::ZERO);
        let ro = archive_run(&run, &store, SimTime::from_secs(10), 1).unwrap();
        assert!(ro.executions[0]
            .environment
            .env_name
            .as_deref()
            .unwrap()
            .contains("psij==0.9.9"));
    }
}
