//! The CORRECT action implementation (§5.3, Fig. 2).
//!
//! Step by step, exactly as the paper describes:
//!
//! 1. verify the FaaS SDK is present on the runner, `pip install` otherwise;
//! 2. authenticate with the auth platform using the client id/secret inputs,
//!    obtaining a bearer token;
//! 3. use a FaaS function to **clone the repository** into a temporary
//!    directory at the remote site (so the latest code version is evaluated);
//! 4. invoke the user-specified function (shell command or pre-registered
//!    function UUID);
//! 5. return stdout/stderr to the runner for later steps, upload them as
//!    artifacts, and fail the workflow step if either the clone or the user
//!    function fails;
//! 6. optionally run a secondary capture task that attaches the remote
//!    software environment as a provenance artifact (§7.4).

use crate::inputs::CorrectInputs;
use hpcci_auth::{AccessToken, AuthError, ClientId, ClientSecret, Scope};
use hpcci_ci::{Action, StepContext, StepResult, WorldDriver};
use hpcci_faas::{CloudService, EndpointId, FaasError, FunctionId, TaskId, TaskOutput};
use hpcci_obs::Obs;
use hpcci_sim::{DetRng, SimDuration, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// The marketplace name the action registers under.
pub const CORRECT_ACTION_NAME: &str = "globus-labs/correct@v1";

/// Is an error message an *infrastructure* failure (retryable) rather than a
/// test failure or configuration error? Infrastructure-originated errors
/// carry the `infrastructure:` marker end to end; a stopped endpoint is the
/// lingering symptom of a crash.
fn is_infra(msg: &str) -> bool {
    msg.contains("infrastructure:") || msg.contains("is stopped")
}

/// FNV-1a over `"{a}:{b}"` without materializing the joined string. Byte
/// order matches the historical `fnv(&format!("{a}:{b}"))`, so jitter
/// streams (and therefore traces) are unchanged.
fn fnv_pair(a: &str, b: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in a.bytes().chain(std::iter::once(b':')).chain(b.bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Outcome of a resilient submit-and-wait cycle.
enum Attempted {
    /// The task reached a terminal output (success *or* genuine test
    /// failure — test failures are never retried).
    Done(TaskOutput),
    /// Non-retryable error (bad configuration, auth denial); fail the step
    /// exactly as the non-resilient path would.
    Fatal(String),
    /// Infrastructure failure that survived every retry and fallback.
    Infra(String),
}

fn note_failover(log: &mut String, endpoints: &[EndpointId], ep_idx: &mut usize, obs: &Obs) {
    if *ep_idx + 1 < endpoints.len() {
        *ep_idx += 1;
        obs.inc("action.failovers");
        log.push_str(&format!(
            "Failing over to sibling endpoint {}\n",
            endpoints[*ep_idx]
        ));
    }
}

/// Graceful degradation: the site is skipped and the step reports an
/// infrastructure failure, distinguishable from a test failure by the
/// `failure_kind` output (§2.1: CI must not confuse platform flakiness with
/// code regressions).
fn infra_step_result(log: &str, detail: &str) -> StepResult {
    StepResult {
        success: false,
        stdout: log.to_string(),
        stderr: format!(
            "infrastructure failure (site skipped): {detail}\n\
             This failure reflects CI infrastructure, not the tests under evaluation."
        ),
        ..StepResult::default()
    }
    .with_output("failure_kind", "infrastructure")
}

/// The action. Holds a handle to the FaaS cloud (the runner talks to the
/// cloud's REST API; it never reaches the site directly).
pub struct CorrectAction {
    cloud: Arc<Mutex<CloudService>>,
    obs: Obs,
}

impl CorrectAction {
    pub fn new(cloud: Arc<Mutex<CloudService>>) -> Self {
        CorrectAction {
            cloud,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle (retry/failover/refresh counters).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Block until `task` finishes, advancing the virtual world. Errors if
    /// the world quiesces first (nothing will ever complete the task).
    fn wait_for(
        &self,
        driver: &mut dyn WorldDriver,
        task: TaskId,
    ) -> Result<TaskOutput, String> {
        loop {
            {
                let cloud = self.cloud.lock();
                match cloud.task_finished(task) {
                    Ok(true) => {
                        return cloud
                            .task_result(task)
                            .cloned()
                            .map_err(|e| format!("Error: {e}"));
                    }
                    Ok(false) => {}
                    Err(e) => return Err(format!("Error: {e}")),
                }
            }
            if !driver.step() {
                return Err(format!(
                    "Error: federation made no progress while waiting for {task}"
                ));
            }
        }
    }

    /// Submit a task and wait for it, retrying *infrastructure* failures with
    /// deterministic exponential backoff, failing over to sibling endpoints
    /// on crashes, and refreshing the bearer token when it expires mid-run.
    /// With no faults active this takes exactly the same path as a plain
    /// submit-and-wait: no sleeps, no log lines, no RNG draws that could
    /// perturb the simulation.
    #[allow(clippy::too_many_arguments)]
    fn run_resilient<F>(
        &self,
        driver: &mut dyn WorldDriver,
        token: &mut AccessToken,
        creds: (&ClientId, &ClientSecret),
        endpoints: &[EndpointId],
        max_retries: u32,
        backoff: SimDuration,
        jitter_seed: u64,
        log: &mut String,
        label: &str,
        submit: F,
    ) -> Attempted
    where
        F: Fn(&mut CloudService, &AccessToken, &EndpointId, SimTime) -> Result<TaskId, FaasError>,
    {
        let mut rng = DetRng::seed_from_u64(jitter_seed);
        let mut ep_idx = 0usize;
        let mut last_infra = String::new();
        let mut attempt = 0u32;
        loop {
            if attempt > 0 {
                if attempt > max_retries {
                    self.obs.inc("action.infra_failures");
                    return Attempted::Infra(last_infra);
                }
                self.obs.inc("action.retries");
                // Deterministic exponential backoff: base * 2^(attempt-1),
                // jittered from a stream seeded by commit+endpoint.
                let factor = (1u64 << (attempt - 1).min(16)) as f64 * rng.range_f64(0.8, 1.2);
                let delay = backoff.mul_f64(factor);
                log.push_str(&format!(
                    "Infrastructure failure ({last_infra}); retry {attempt}/{max_retries} in {:.1}s\n",
                    delay.as_secs_f64()
                ));
                driver.sleep(delay);
            }
            let endpoint = &endpoints[ep_idx];
            let submitted = {
                let mut cloud = self.cloud.lock();
                let now = cloud.now();
                submit(&mut cloud, token, endpoint, now)
            };
            let task = match submitted {
                Ok(t) => t,
                Err(FaasError::Auth(AuthError::InvalidToken)) => {
                    // Token expired mid-run: refresh and retry (§5.3's
                    // client-credentials grant is repeatable).
                    log.push_str("Access token rejected mid-run; re-authenticating\n");
                    let now = driver.now();
                    let refreshed = {
                        let cloud = self.cloud.lock();
                        let mut auth = cloud.auth().lock();
                        auth.authenticate(creds.0, creds.1, vec![Scope::compute_api()], now)
                    };
                    match refreshed {
                        Ok(t) => {
                            self.obs.inc("action.token_refreshes");
                            *token = t;
                            last_infra = "expired access token (refreshed)".to_string();
                            attempt += 1;
                            continue;
                        }
                        Err(e) => {
                            return Attempted::Fatal(format!(
                                "Error: re-authentication failed: {e}"
                            ))
                        }
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    if is_infra(&msg) {
                        last_infra = msg;
                        note_failover(log, endpoints, &mut ep_idx, &self.obs);
                        attempt += 1;
                        continue;
                    }
                    return Attempted::Fatal(format!("Error: {label}: {e}"));
                }
            };
            match self.wait_for(driver, task) {
                Ok(out) if out.success() => return Attempted::Done(out),
                Ok(out) => {
                    let err_text = out.result.as_ref().err().cloned().unwrap_or_default();
                    if is_infra(&out.stderr) || is_infra(&err_text) {
                        last_infra = if out.stderr.is_empty() {
                            err_text
                        } else {
                            out.stderr.clone()
                        };
                        note_failover(log, endpoints, &mut ep_idx, &self.obs);
                        attempt += 1;
                        continue;
                    }
                    // A genuine test failure: report it, never retry it.
                    return Attempted::Done(out);
                }
                Err(e) => {
                    if is_infra(&e) {
                        last_infra = e;
                        note_failover(log, endpoints, &mut ep_idx, &self.obs);
                        attempt += 1;
                        continue;
                    }
                    return Attempted::Fatal(e);
                }
            }
        }
    }
}

impl Action for CorrectAction {
    fn run(&self, ctx: &mut StepContext<'_>) -> StepResult {
        let inputs = match CorrectInputs::parse(&ctx.inputs) {
            Ok(i) => i,
            Err(e) => return StepResult::fail(e),
        };
        let mut log = String::new();

        // 1. Runner bootstrap: the SDK is not on the hosted VM image.
        log.push_str("Checking for globus-compute-sdk on runner... not found\n");
        log.push_str("pip install globus-compute-sdk ... done\n");
        ctx.driver.sleep(SimDuration::from_secs(12));

        // 2. Authenticate with the client credentials. (Read the clock
        // before taking the cloud lock: the driver reads it through the
        // same mutex.)
        let client_id = ClientId(inputs.client_id.clone());
        let client_secret = ClientSecret::new(&inputs.client_secret);
        let now = ctx.driver.now();
        let mut token = {
            let cloud = self.cloud.lock();
            let mut auth = cloud.auth().lock();
            match auth.authenticate(&client_id, &client_secret, vec![Scope::compute_api()], now) {
                Ok(t) => t,
                Err(e) => {
                    return StepResult::fail(format!("Error: Globus authentication failed: {e}"))
                }
            }
        };
        log.push_str("Authenticated with Globus Auth (scope compute.api)\n");

        // The primary endpoint plus any configured fallbacks for crash
        // failover, in priority order.
        let endpoints: Vec<EndpointId> = std::iter::once(inputs.endpoint_uuid.clone())
            .chain(inputs.fallback_endpoints.iter().cloned())
            .map(EndpointId)
            .collect();
        let backoff = SimDuration::from_secs(inputs.retry_backoff_secs.max(1));
        let jitter_seed = fnv_pair(&ctx.commit, &inputs.endpoint_uuid);

        // 3. Clone the repository at the remote site.
        if !inputs.skip_clone {
            let clone_cmd = format!("git clone https://github.sim/{}.git", ctx.repo);
            match self.run_resilient(
                ctx.driver,
                &mut token,
                (&client_id, &client_secret),
                &endpoints,
                inputs.max_retries,
                backoff,
                jitter_seed,
                &mut log,
                "clone submission",
                |cloud, token, endpoint, now| cloud.submit_shell(token, endpoint, &clone_cmd, now),
            ) {
                Attempted::Done(out) if out.success() => {
                    log.push_str(&out.stdout);
                    log.push('\n');
                }
                Attempted::Done(out) => {
                    // Clone failure fails the workflow step (§5.3).
                    return StepResult {
                        success: false,
                        stdout: log + &out.stdout,
                        stderr: format!("Error: repository clone failed\n{}", out.stderr),
                        ..StepResult::default()
                    };
                }
                Attempted::Fatal(e) => return StepResult::fail(e),
                Attempted::Infra(detail) => return infra_step_result(&log, &detail),
            }
        }

        // 4. Invoke the user-specified function.
        let output = match self.run_resilient(
            ctx.driver,
            &mut token,
            (&client_id, &client_secret),
            &endpoints,
            inputs.max_retries,
            backoff,
            jitter_seed.wrapping_add(1),
            &mut log,
            "task submission",
            |cloud, token, endpoint, now| {
                if let Some(cmd) = &inputs.shell_cmd {
                    let full = if inputs.args.is_empty() {
                        cmd.clone()
                    } else {
                        format!("{cmd} {}", inputs.args)
                    };
                    cloud.submit_shell(token, endpoint, &full, now)
                } else {
                    let fid = FunctionId(inputs.function_uuid.expect("schema validated"));
                    cloud.submit_function(token, endpoint, fid, &inputs.args, now)
                }
            },
        ) {
            Attempted::Done(o) => o,
            Attempted::Fatal(e) => return StepResult::fail(e),
            Attempted::Infra(detail) => return infra_step_result(&log, &detail),
        };

        // 5. Propagate outputs; step fails when the function failed.
        let mut result = StepResult {
            success: output.success(),
            stdout: format!("{log}{}", output.stdout),
            stderr: output.stderr.clone(),
            ..StepResult::default()
        };
        result = result
            .with_output("stdout", &output.stdout)
            .with_output("stderr", &output.stderr)
            .with_output("ran_as", &output.ran_as)
            .with_output("node", &output.node)
            .with_output(
                "runtime_secs",
                &format!("{:.6}", output.runtime().as_secs_f64()),
            );

        // 6. Optional provenance capture (never flips the step's outcome).
        if inputs.capture_environment {
            let capture_task = {
                let mut cloud = self.cloud.lock();
                let now = cloud.now();
                cloud.submit_shell(&token, &endpoints[0], "gc-capture-env", now)
            };
            if let Ok(t) = capture_task {
                if let Ok(cap) = self.wait_for(ctx.driver, t) {
                    if cap.success() {
                        result = result.with_artifact("environment.txt", cap.stdout.clone());
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    // The action's behaviour is exercised end-to-end through the Federation
    // in `tests/` (it needs hosting, sites and endpoints wired together);
    // unit tests here cover the pieces that do not need the world.
    use super::*;
    use hpcci_auth::AuthService;
    use hpcci_ci::action::NullDriver;
    use std::collections::BTreeMap;

    fn bare_action() -> CorrectAction {
        let auth = Arc::new(Mutex::new(AuthService::new()));
        CorrectAction::new(Arc::new(Mutex::new(CloudService::new(auth))))
    }

    #[test]
    fn schema_violation_fails_fast() {
        let action = bare_action();
        let mut driver = NullDriver::new();
        let mut ctx = StepContext {
            repo: "o/r".into(),
            branch: "main".into(),
            commit: "c".into(),
            inputs: BTreeMap::new(),
            env: Default::default(),
            driver: &mut driver,
        };
        let r = action.run(&mut ctx);
        assert!(!r.success);
        assert!(r.stderr.contains("client_id"));
    }

    #[test]
    fn bad_credentials_fail_with_auth_error() {
        let action = bare_action();
        let mut driver = NullDriver::new();
        let inputs: BTreeMap<String, String> = [
            ("client_id", "client-000001"),
            ("client_secret", "wrong"),
            ("endpoint_uuid", "ep"),
            ("shell_cmd", "tox"),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let mut ctx = StepContext {
            repo: "o/r".into(),
            branch: "main".into(),
            commit: "c".into(),
            inputs,
            env: Default::default(),
            driver: &mut driver,
        };
        let r = action.run(&mut ctx);
        assert!(!r.success);
        assert!(r.stderr.contains("authentication failed"), "{}", r.stderr);
    }

    /// Every resilience log line this action can emit must be recognized by
    /// the step cache's taint check — otherwise a verdict shaped by an
    /// outage could be memoized and replayed as if it were reproducible.
    #[test]
    fn resilience_log_lines_are_never_cacheable() {
        use hpcci_ci::cache::infra_tainted;
        let empty: BTreeMap<String, String> = BTreeMap::new();
        for line in [
            "infrastructure: worker pool lost",
            "Infrastructure failure (endpoint ep-1 is stopped); retry 1/3 in 2.0s",
            "Failing over to sibling endpoint ep-2",
            "Access token rejected mid-run; re-authenticating",
            "endpoint ep-1 is stopped",
        ] {
            assert!(infra_tainted(line, "", &empty), "stdout marker missed: {line}");
            assert!(infra_tainted("", line, &empty), "stderr marker missed: {line}");
        }
        let mut outputs = BTreeMap::new();
        outputs.insert("failure_kind".to_string(), "infrastructure".to_string());
        assert!(infra_tainted("6 passed", "", &outputs), "failure_kind output missed");
        assert!(!infra_tainted("6 passed", "1 warning", &empty), "clean result wrongly tainted");
    }
}
