//! The CORRECT action implementation (§5.3, Fig. 2).
//!
//! Step by step, exactly as the paper describes:
//!
//! 1. verify the FaaS SDK is present on the runner, `pip install` otherwise;
//! 2. authenticate with the auth platform using the client id/secret inputs,
//!    obtaining a bearer token;
//! 3. use a FaaS function to **clone the repository** into a temporary
//!    directory at the remote site (so the latest code version is evaluated);
//! 4. invoke the user-specified function (shell command or pre-registered
//!    function UUID);
//! 5. return stdout/stderr to the runner for later steps, upload them as
//!    artifacts, and fail the workflow step if either the clone or the user
//!    function fails;
//! 6. optionally run a secondary capture task that attaches the remote
//!    software environment as a provenance artifact (§7.4).

use crate::inputs::CorrectInputs;
use hpcci_auth::{ClientId, ClientSecret, Scope};
use hpcci_ci::{Action, StepContext, StepResult, WorldDriver};
use hpcci_faas::{CloudService, EndpointId, FunctionId, TaskId, TaskOutput};
use hpcci_sim::SimDuration;
use parking_lot::Mutex;
use std::sync::Arc;

/// The marketplace name the action registers under.
pub const CORRECT_ACTION_NAME: &str = "globus-labs/correct@v1";

/// The action. Holds a handle to the FaaS cloud (the runner talks to the
/// cloud's REST API; it never reaches the site directly).
pub struct CorrectAction {
    cloud: Arc<Mutex<CloudService>>,
}

impl CorrectAction {
    pub fn new(cloud: Arc<Mutex<CloudService>>) -> Self {
        CorrectAction { cloud }
    }

    /// Block until `task` finishes, advancing the virtual world. Errors if
    /// the world quiesces first (nothing will ever complete the task).
    fn wait_for(
        &self,
        driver: &mut dyn WorldDriver,
        task: TaskId,
    ) -> Result<TaskOutput, String> {
        loop {
            {
                let cloud = self.cloud.lock();
                match cloud.task_finished(task) {
                    Ok(true) => {
                        return cloud
                            .task_result(task)
                            .cloned()
                            .map_err(|e| format!("Error: {e}"));
                    }
                    Ok(false) => {}
                    Err(e) => return Err(format!("Error: {e}")),
                }
            }
            if !driver.step() {
                return Err(format!(
                    "Error: federation made no progress while waiting for {task}"
                ));
            }
        }
    }
}

impl Action for CorrectAction {
    fn run(&self, ctx: &mut StepContext<'_>) -> StepResult {
        let inputs = match CorrectInputs::parse(&ctx.inputs) {
            Ok(i) => i,
            Err(e) => return StepResult::fail(e),
        };
        let mut log = String::new();

        // 1. Runner bootstrap: the SDK is not on the hosted VM image.
        log.push_str("Checking for globus-compute-sdk on runner... not found\n");
        log.push_str("pip install globus-compute-sdk ... done\n");
        ctx.driver.sleep(SimDuration::from_secs(12));

        // 2. Authenticate with the client credentials. (Read the clock
        // before taking the cloud lock: the driver reads it through the
        // same mutex.)
        let now = ctx.driver.now();
        let token = {
            let cloud = self.cloud.lock();
            let mut auth = cloud.auth().lock();
            match auth.authenticate(
                &ClientId(inputs.client_id.clone()),
                &ClientSecret::new(&inputs.client_secret),
                vec![Scope::compute_api()],
                now,
            ) {
                Ok(t) => t,
                Err(e) => {
                    return StepResult::fail(format!("Error: Globus authentication failed: {e}"))
                }
            }
        };
        log.push_str("Authenticated with Globus Auth (scope compute.api)\n");

        let endpoint = EndpointId(inputs.endpoint_uuid.clone());

        // 3. Clone the repository at the remote site.
        if !inputs.skip_clone {
            let clone_cmd = format!("git clone https://github.sim/{}.git", ctx.repo);
            let clone_task = {
                let mut cloud = self.cloud.lock();
                let now = cloud.now();
                match cloud.submit_shell(&token, &endpoint, &clone_cmd, now) {
                    Ok(t) => t,
                    Err(e) => return StepResult::fail(format!("Error: clone submission: {e}")),
                }
            };
            match self.wait_for(ctx.driver, clone_task) {
                Ok(out) if out.success() => {
                    log.push_str(&out.stdout);
                    log.push('\n');
                }
                Ok(out) => {
                    // Clone failure fails the workflow step (§5.3).
                    return StepResult {
                        success: false,
                        stdout: log + &out.stdout,
                        stderr: format!("Error: repository clone failed\n{}", out.stderr),
                        ..StepResult::default()
                    };
                }
                Err(e) => return StepResult::fail(e),
            }
        }

        // 4. Invoke the user-specified function.
        let main_task = {
            let mut cloud = self.cloud.lock();
            let now = cloud.now();
            let result = if let Some(cmd) = &inputs.shell_cmd {
                let full = if inputs.args.is_empty() {
                    cmd.clone()
                } else {
                    format!("{cmd} {}", inputs.args)
                };
                cloud.submit_shell(&token, &endpoint, &full, now)
            } else {
                let fid = FunctionId(inputs.function_uuid.expect("schema validated"));
                cloud.submit_function(&token, &endpoint, fid, &inputs.args, now)
            };
            match result {
                Ok(t) => t,
                Err(e) => return StepResult::fail(format!("Error: task submission: {e}")),
            }
        };
        let output = match self.wait_for(ctx.driver, main_task) {
            Ok(o) => o,
            Err(e) => return StepResult::fail(e),
        };

        // 5. Propagate outputs; step fails when the function failed.
        let mut result = StepResult {
            success: output.success(),
            stdout: format!("{log}{}", output.stdout),
            stderr: output.stderr.clone(),
            ..StepResult::default()
        };
        result = result
            .with_output("stdout", &output.stdout)
            .with_output("stderr", &output.stderr)
            .with_output("ran_as", &output.ran_as)
            .with_output("node", &output.node)
            .with_output(
                "runtime_secs",
                &format!("{:.6}", output.runtime().as_secs_f64()),
            );

        // 6. Optional provenance capture (never flips the step's outcome).
        if inputs.capture_environment {
            let capture_task = {
                let mut cloud = self.cloud.lock();
                let now = cloud.now();
                cloud.submit_shell(&token, &endpoint, "gc-capture-env", now)
            };
            if let Ok(t) = capture_task {
                if let Ok(cap) = self.wait_for(ctx.driver, t) {
                    if cap.success() {
                        result = result.with_artifact("environment.txt", cap.stdout.clone());
                    }
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    // The action's behaviour is exercised end-to-end through the Federation
    // in `tests/` (it needs hosting, sites and endpoints wired together);
    // unit tests here cover the pieces that do not need the world.
    use super::*;
    use hpcci_auth::AuthService;
    use hpcci_ci::action::NullDriver;
    use std::collections::BTreeMap;

    fn bare_action() -> CorrectAction {
        let auth = Arc::new(Mutex::new(AuthService::new()));
        CorrectAction::new(Arc::new(Mutex::new(CloudService::new(auth))))
    }

    #[test]
    fn schema_violation_fails_fast() {
        let action = bare_action();
        let mut driver = NullDriver::new();
        let mut ctx = StepContext {
            repo: "o/r".into(),
            branch: "main".into(),
            commit: "c".into(),
            inputs: BTreeMap::new(),
            env: BTreeMap::new(),
            driver: &mut driver,
        };
        let r = action.run(&mut ctx);
        assert!(!r.success);
        assert!(r.stderr.contains("client_id"));
    }

    #[test]
    fn bad_credentials_fail_with_auth_error() {
        let action = bare_action();
        let mut driver = NullDriver::new();
        let inputs: BTreeMap<String, String> = [
            ("client_id", "client-000001"),
            ("client_secret", "wrong"),
            ("endpoint_uuid", "ep"),
            ("shell_cmd", "tox"),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
        let mut ctx = StepContext {
            repo: "o/r".into(),
            branch: "main".into(),
            commit: "c".into(),
            inputs,
            env: BTreeMap::new(),
            driver: &mut driver,
        };
        let r = action.run(&mut ctx);
        assert!(!r.success);
        assert!(r.stderr.contains("authentication failed"), "{}", r.stderr);
    }
}
