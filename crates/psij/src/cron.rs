//! The baseline: PSI/J's existing cron-based multi-site CI (§6.2).
//!
//! "PSI/J currently provides a mechanism for CI across different HPC that
//! relies on cron jobs for automated, periodic execution of the test cases.
//! The security relies on authenticated users deploying the cron job in
//! their local accounts. … it is not able to map a contributor or developer
//! to a specific local account. PSI/J's cron job publishes test results back
//! to the community via a public dashboard."
//!
//! Implemented faithfully so the CORRECT-vs-cron comparison (Table 4 row,
//! security property tests, overhead benches) is executable.

use hpcci_cluster::{Cred, NodeRole};
use hpcci_faas::exec::SharedSite;
use hpcci_sim::{Advance, DetRng, EventQueue, SimDuration, SimTime};

/// Which code the cron job may pull (§6.2's three options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullPolicy {
    /// 1) main branch only.
    Main,
    /// 2) stable and core branches.
    StableAndCore,
    /// 3) PR branches tagged by a core developer.
    TaggedPullRequests,
}

impl PullPolicy {
    /// Does the policy allow running `branch`, given whether a core
    /// developer has tagged it?
    pub fn allows(&self, branch: &str, tagged_by_core_dev: bool) -> bool {
        match self {
            PullPolicy::Main => branch == "main",
            PullPolicy::StableAndCore => branch == "main" || branch == "stable" || branch == "core",
            PullPolicy::TaggedPullRequests => {
                branch == "main" || branch == "stable" || branch == "core" || tagged_by_core_dev
            }
        }
    }
}

/// One row of the public dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardEntry {
    pub site: String,
    pub branch: String,
    pub at: SimTime,
    pub passed: bool,
    pub summary: String,
}

/// A cron-based CI deployment at one site: a periodic job running in the
/// deploying user's account that pulls code and runs the suite.
pub struct CronCi {
    site: SharedSite,
    /// The local account the deploying user installed the crontab in. Every
    /// run executes as this user — *whoever* authored the code being tested
    /// (the un-mapped-identity weakness CORRECT fixes).
    pub local_user: String,
    pub policy: PullPolicy,
    period: SimDuration,
    command: String,
    branch: String,
    events: EventQueue<()>,
    dashboard: Vec<DashboardEntry>,
    rng: DetRng,
    now: SimTime,
}

impl CronCi {
    pub fn new(
        site: SharedSite,
        local_user: &str,
        policy: PullPolicy,
        period: SimDuration,
        command: &str,
    ) -> CronCi {
        let mut events = EventQueue::new();
        events.push(SimTime::ZERO + period, ());
        CronCi {
            site,
            local_user: local_user.to_string(),
            policy,
            period,
            command: command.to_string(),
            branch: "main".to_string(),
            events,
            dashboard: Vec::new(),
            rng: DetRng::seed_from_u64(0xc407),
            now: SimTime::ZERO,
        }
    }

    /// Point the cron job at a branch (subject to the pull policy).
    pub fn set_branch(&mut self, branch: &str, tagged_by_core_dev: bool) -> bool {
        if self.policy.allows(branch, tagged_by_core_dev) {
            self.branch = branch.to_string();
            true
        } else {
            false
        }
    }

    /// The public dashboard (§6.2).
    pub fn dashboard(&self) -> &[DashboardEntry] {
        &self.dashboard
    }

    fn fire(&mut self, at: SimTime) {
        let mut runtime = self.site.lock();
        let account = match runtime.site.account(&self.local_user) {
            Ok(a) => a.clone(),
            Err(e) => {
                self.dashboard.push(DashboardEntry {
                    site: runtime.site.id.to_string(),
                    branch: self.branch.clone(),
                    at,
                    passed: false,
                    summary: e.to_string(),
                });
                return;
            }
        };
        let site_name = runtime.site.id.to_string();
        let node = runtime
            .site
            .login_node()
            .map(|n| n.hostname.clone())
            .unwrap_or_default();
        let cred = Cred::of(&account);
        let out = runtime.execute(
            &self.command,
            &account,
            &cred,
            NodeRole::Login,
            &node,
            at,
            &mut self.rng,
            None,
        );
        self.dashboard.push(DashboardEntry {
            site: site_name,
            branch: self.branch.clone(),
            at,
            passed: out.result.is_ok(),
            summary: if out.result.is_ok() {
                out.stdout.lines().last().unwrap_or("").to_string()
            } else {
                out.stderr.lines().next().unwrap_or("").to_string()
            },
        });
    }
}

impl Advance for CronCi {
    fn next_event(&self) -> Option<SimTime> {
        self.events.next_time()
    }

    fn advance_to(&mut self, t: SimTime) {
        while let Some((at, ())) = self.events.pop_due(t) {
            self.now = at;
            self.fire(at);
            self.events.push(at + self.period, ());
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::Site;
    use hpcci_faas::{ExecOutcome, SiteRuntime};

    fn cron_at_site(pass: bool) -> CronCi {
        let mut rt = SiteRuntime::new(Site::purdue_anvil()).with_scheduler(128);
        rt.site.add_account("x-vhayot", "CIS230030");
        rt.commands.register("pytest", move |_| {
            if pass {
                ExecOutcome::ok("6 passed", 10.0)
            } else {
                ExecOutcome::fail("ERROR: No matching distribution found for typeguard>=3.0.1", 2.0)
            }
        });
        let site = hpcci_faas::exec::shared(rt);
        CronCi::new(
            site,
            "x-vhayot",
            PullPolicy::TaggedPullRequests,
            SimDuration::from_hours(24),
            "pytest tests/",
        )
    }

    #[test]
    fn cron_fires_periodically_and_publishes() {
        let mut cron = cron_at_site(true);
        cron.advance_to(SimTime::from_secs(3 * 24 * 3600));
        assert_eq!(cron.dashboard().len(), 3);
        assert!(cron.dashboard().iter().all(|e| e.passed));
        assert_eq!(cron.dashboard()[0].site, "purdue-anvil");
    }

    #[test]
    fn failures_reach_the_dashboard() {
        let mut cron = cron_at_site(false);
        cron.advance_to(SimTime::from_secs(24 * 3600));
        assert_eq!(cron.dashboard().len(), 1);
        assert!(!cron.dashboard()[0].passed);
        assert!(cron.dashboard()[0].summary.contains("typeguard"));
    }

    #[test]
    fn pull_policies() {
        assert!(PullPolicy::Main.allows("main", false));
        assert!(!PullPolicy::Main.allows("stable", false));
        assert!(PullPolicy::StableAndCore.allows("stable", false));
        assert!(!PullPolicy::StableAndCore.allows("pr/41", true));
        assert!(PullPolicy::TaggedPullRequests.allows("pr/41", true));
        assert!(!PullPolicy::TaggedPullRequests.allows("pr/41", false));
    }

    #[test]
    fn branch_switch_respects_policy() {
        let mut cron = cron_at_site(true);
        assert!(cron.set_branch("pr/7", true));
        assert!(!cron.set_branch("pr/8", false));
        assert_eq!(cron.branch, "pr/7", "rejected switch leaves branch unchanged");
    }

    #[test]
    fn cron_runs_as_the_deploying_user_regardless_of_author() {
        // The weakness: the code author's identity never reaches the site;
        // everything runs as the crontab owner.
        let cron = cron_at_site(true);
        assert_eq!(cron.local_user, "x-vhayot");
    }
}
