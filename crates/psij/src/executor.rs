//! The executor abstraction: one API over local and batch execution.

use crate::spec::PsijJobSpec;
use hpcci_cluster::Uid;
use hpcci_scheduler::{BatchScheduler, JobId, JobPayload, JobSpec, JobState};
use hpcci_sim::{Advance, SimDuration, SimTime};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// PSI/J's portable job states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsijJobState {
    New,
    Queued,
    Active,
    Completed,
    Failed,
    Canceled,
}

impl PsijJobState {
    pub fn is_final(&self) -> bool {
        matches!(
            self,
            PsijJobState::Completed | PsijJobState::Failed | PsijJobState::Canceled
        )
    }
}

/// Errors from executors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PsijError {
    UnknownJob(u64),
    InvalidState(u64),
    Scheduler(String),
}

impl fmt::Display for PsijError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsijError::UnknownJob(id) => write!(f, "unknown psij job {id}"),
            PsijError::InvalidState(id) => write!(f, "invalid state for psij job {id}"),
            PsijError::Scheduler(e) => write!(f, "scheduler error: {e}"),
        }
    }
}

impl std::error::Error for PsijError {}

/// A submitted job handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PsijJobHandle(pub u64);

enum Backend {
    /// Direct execution on the node running the executor: job `i` completes
    /// at its recorded end time.
    Local(Vec<(SimTime, bool, bool)>), // (ends_at, success, cancelled)
    /// Batch execution through the shared scheduler.
    Slurm {
        scheduler: Arc<Mutex<BatchScheduler>>,
        user: Uid,
        allocation: String,
        jobs: Vec<JobId>,
    },
}

/// One executor instance ("local" or "slurm"), mirroring
/// `psij.JobExecutor.get_instance(name)`.
pub struct JobExecutor {
    backend: Backend,
}

impl JobExecutor {
    /// The `local` executor: forks on the current (login) node.
    pub fn local() -> JobExecutor {
        JobExecutor {
            backend: Backend::Local(Vec::new()),
        }
    }

    /// The `slurm` executor bound to a site scheduler and local account.
    pub fn slurm(scheduler: Arc<Mutex<BatchScheduler>>, user: Uid, allocation: &str) -> JobExecutor {
        JobExecutor {
            backend: Backend::Slurm {
                scheduler,
                user,
                allocation: allocation.to_string(),
                jobs: Vec::new(),
            },
        }
    }

    /// Submit a job; returns immediately with a handle.
    pub fn submit(&mut self, spec: &PsijJobSpec, now: SimTime) -> Result<PsijJobHandle, PsijError> {
        match &mut self.backend {
            Backend::Local(jobs) => {
                let ends = now + spec.simulated_runtime;
                jobs.push((ends, spec.simulated_success, false));
                Ok(PsijJobHandle(jobs.len() as u64 - 1))
            }
            Backend::Slurm {
                scheduler,
                user,
                allocation,
                jobs,
            } => {
                let sched_spec = JobSpec {
                    name: spec.name.clone(),
                    user: *user,
                    allocation: allocation.clone(),
                    partition: "compute".to_string(),
                    nodes: 1,
                    cores_per_node: spec.process_count,
                    walltime: spec.duration,
                    payload: JobPayload::Fixed {
                        duration: spec.simulated_runtime,
                        success: spec.simulated_success,
                    },
                };
                let id = scheduler
                    .lock()
                    .submit(sched_spec, now)
                    .map_err(|e| PsijError::Scheduler(e.to_string()))?;
                jobs.push(id);
                Ok(PsijJobHandle(jobs.len() as u64 - 1))
            }
        }
    }

    /// Poll a job's portable state.
    pub fn state(&mut self, handle: PsijJobHandle, now: SimTime) -> Result<PsijJobState, PsijError> {
        match &mut self.backend {
            Backend::Local(jobs) => {
                let (ends, success, cancelled) = *jobs
                    .get(handle.0 as usize)
                    .ok_or(PsijError::UnknownJob(handle.0))?;
                Ok(if cancelled {
                    PsijJobState::Canceled
                } else if now < ends {
                    PsijJobState::Active
                } else if success {
                    PsijJobState::Completed
                } else {
                    PsijJobState::Failed
                })
            }
            Backend::Slurm { scheduler, jobs, .. } => {
                let id = *jobs
                    .get(handle.0 as usize)
                    .ok_or(PsijError::UnknownJob(handle.0))?;
                let mut sched = scheduler.lock();
                if sched.now() < now {
                    sched.advance_to(now);
                }
                let state = sched
                    .state(id)
                    .map_err(|e| PsijError::Scheduler(e.to_string()))?;
                Ok(match state {
                    JobState::Pending { .. } => PsijJobState::Queued,
                    JobState::Running { .. } => PsijJobState::Active,
                    JobState::Completed { success: true, .. } => PsijJobState::Completed,
                    JobState::Completed { success: false, .. } | JobState::TimedOut { .. } => {
                        PsijJobState::Failed
                    }
                    JobState::Cancelled { .. } => PsijJobState::Canceled,
                    // A preempted job lost its node; PSI/J reports it failed
                    // so the caller can resubmit.
                    JobState::Preempted { .. } => PsijJobState::Failed,
                })
            }
        }
    }

    /// Cancel a job.
    pub fn cancel(&mut self, handle: PsijJobHandle, now: SimTime) -> Result<(), PsijError> {
        match &mut self.backend {
            Backend::Local(jobs) => {
                let job = jobs
                    .get_mut(handle.0 as usize)
                    .ok_or(PsijError::UnknownJob(handle.0))?;
                if now >= job.0 {
                    return Err(PsijError::InvalidState(handle.0));
                }
                job.2 = true;
                Ok(())
            }
            Backend::Slurm { scheduler, jobs, .. } => {
                let id = *jobs
                    .get(handle.0 as usize)
                    .ok_or(PsijError::UnknownJob(handle.0))?;
                scheduler
                    .lock()
                    .cancel(id, now)
                    .map_err(|e| PsijError::Scheduler(e.to_string()))
            }
        }
    }

    /// Block (advance virtual time) until the job is final; returns the
    /// final state and the completion time.
    pub fn wait(
        &mut self,
        handle: PsijJobHandle,
        mut now: SimTime,
        deadline: SimDuration,
    ) -> Result<(PsijJobState, SimTime), PsijError> {
        let limit = now + deadline;
        loop {
            let state = self.state(handle, now)?;
            if state.is_final() {
                return Ok((state, now));
            }
            if now >= limit {
                return Err(PsijError::InvalidState(handle.0));
            }
            // Advance to the scheduler's next event, or tick forward.
            now = match &self.backend {
                Backend::Local(jobs) => jobs[handle.0 as usize].0.min(limit),
                Backend::Slurm { scheduler, .. } => scheduler
                    .lock()
                    .next_event()
                    .map(|t| t.min(limit))
                    .unwrap_or(limit),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::NodeId;

    fn shared_sched() -> Arc<Mutex<BatchScheduler>> {
        Arc::new(Mutex::new(BatchScheduler::with_compute_partition(
            (0..2).map(NodeId).collect(),
            8,
        )))
    }

    #[test]
    fn local_executor_lifecycle() {
        let mut ex = JobExecutor::local();
        let spec = PsijJobSpec::new("j", "/bin/true").running_for(SimDuration::from_secs(3));
        let h = ex.submit(&spec, SimTime::ZERO).unwrap();
        assert_eq!(ex.state(h, SimTime::from_secs(1)).unwrap(), PsijJobState::Active);
        let (state, at) = ex.wait(h, SimTime::from_secs(1), SimDuration::from_mins(1)).unwrap();
        assert_eq!(state, PsijJobState::Completed);
        assert_eq!(at, SimTime::from_secs(3));
    }

    #[test]
    fn local_executor_failure_and_cancel() {
        let mut ex = JobExecutor::local();
        let fail = ex
            .submit(
                &PsijJobSpec::new("f", "/bin/false").failing().running_for(SimDuration::from_secs(1)),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(ex.state(fail, SimTime::from_secs(2)).unwrap(), PsijJobState::Failed);

        let cancelme = ex
            .submit(
                &PsijJobSpec::new("c", "/bin/sleep").running_for(SimDuration::from_secs(100)),
                SimTime::ZERO,
            )
            .unwrap();
        ex.cancel(cancelme, SimTime::from_secs(1)).unwrap();
        assert_eq!(ex.state(cancelme, SimTime::from_secs(2)).unwrap(), PsijJobState::Canceled);
        // Cancelling a finished job is an error.
        assert!(ex.cancel(fail, SimTime::from_secs(5)).is_err());
    }

    #[test]
    fn slurm_executor_queues_then_runs() {
        let sched = shared_sched();
        let mut ex = JobExecutor::slurm(sched.clone(), Uid(1001), "alloc");
        // Fill the machine: 2 nodes x 8 cores with two 8-core jobs.
        let long = PsijJobSpec::new("long", "burn")
            .with_processes(8)
            .running_for(SimDuration::from_secs(50));
        let _a = ex.submit(&long, SimTime::ZERO).unwrap();
        let _b = ex.submit(&long, SimTime::ZERO).unwrap();
        let c = ex.submit(&long, SimTime::ZERO).unwrap();
        assert_eq!(ex.state(c, SimTime::ZERO).unwrap(), PsijJobState::Queued);
        let (state, at) = ex.wait(c, SimTime::ZERO, SimDuration::from_mins(5)).unwrap();
        assert_eq!(state, PsijJobState::Completed);
        assert_eq!(at, SimTime::from_secs(100));
    }

    #[test]
    fn slurm_executor_walltime_failure() {
        let sched = shared_sched();
        let mut ex = JobExecutor::slurm(sched, Uid(1001), "alloc");
        let spec = PsijJobSpec::new("overrun", "burn")
            .with_duration(SimDuration::from_secs(10))
            .running_for(SimDuration::from_secs(100));
        let h = ex.submit(&spec, SimTime::ZERO).unwrap();
        let (state, _) = ex.wait(h, SimTime::ZERO, SimDuration::from_mins(5)).unwrap();
        assert_eq!(state, PsijJobState::Failed, "timeout maps to Failed");
    }

    #[test]
    fn unknown_handles_error() {
        let mut ex = JobExecutor::local();
        assert!(matches!(
            ex.state(PsijJobHandle(7), SimTime::ZERO),
            Err(PsijError::UnknownJob(7))
        ));
    }
}
