//! The PSI/J CI test suite and its federation command handler.
//!
//! §6.2 runs "the recommended pytest command" on Purdue Anvil's login node
//! through CORRECT. The run in the paper *failed* — a dependency error in
//! the PSI/J codebase — and Fig. 5 shows exactly how the failure surfaced
//! (error in the Actions UI, full stdout in an artifact). We reproduce both
//! modes: with the site's `psij` environment complete the suite passes; with
//! a missing requirement the handler emits a Fig.-5-shaped failure.

use crate::executor::{JobExecutor, PsijJobState};
use crate::spec::PsijJobSpec;
use hpcci_cluster::Uid;
use hpcci_faas::{CommandRegistry, ExecOutcome};
use hpcci_scheduler::BatchScheduler;
use hpcci_sim::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// Requirements the suite needs installed (PSI/J's `requirements.txt`).
pub fn required_packages() -> Vec<&'static str> {
    vec!["psutil>=5.9", "pystache>=0.6.0", "typeguard>=3.0.1"]
}

/// Outcome of one suite test.
#[derive(Debug, Clone, PartialEq)]
pub struct PsijTestOutcome {
    pub name: &'static str,
    pub passed: bool,
    pub ref_secs: f64,
}

/// Run the executor test suite against a (possibly absent) scheduler.
/// These are real tests of the real executor code.
pub fn run_psij_suite(scheduler: Option<Arc<Mutex<BatchScheduler>>>) -> Vec<PsijTestOutcome> {
    let mut outcomes = Vec::new();
    let mut push = |name: &'static str, passed: bool, ref_secs: f64| {
        outcomes.push(PsijTestOutcome { name, passed, ref_secs });
    };

    // --- local executor tests (always runnable) ---
    {
        let mut ex = JobExecutor::local();
        let h = ex
            .submit(
                &PsijJobSpec::new("t", "/bin/date").running_for(SimDuration::from_secs(2)),
                SimTime::ZERO,
            )
            .unwrap();
        let ok = matches!(
            ex.wait(h, SimTime::ZERO, SimDuration::from_mins(1)),
            Ok((PsijJobState::Completed, _))
        );
        push("test_local_submit_wait", ok, 2.5);
    }
    {
        let mut ex = JobExecutor::local();
        let h = ex
            .submit(
                &PsijJobSpec::new("f", "/bin/false")
                    .failing()
                    .running_for(SimDuration::from_secs(1)),
                SimTime::ZERO,
            )
            .unwrap();
        let ok = matches!(
            ex.wait(h, SimTime::ZERO, SimDuration::from_mins(1)),
            Ok((PsijJobState::Failed, _))
        );
        push("test_local_failure_detected", ok, 1.5);
    }
    {
        let mut ex = JobExecutor::local();
        let h = ex
            .submit(
                &PsijJobSpec::new("c", "/bin/sleep").running_for(SimDuration::from_secs(60)),
                SimTime::ZERO,
            )
            .unwrap();
        let cancel_ok = ex.cancel(h, SimTime::from_secs(1)).is_ok();
        let state_ok = ex.state(h, SimTime::from_secs(2)) == Ok(PsijJobState::Canceled);
        push("test_local_cancel", cancel_ok && state_ok, 1.0);
    }

    // --- batch executor tests (need the site scheduler) ---
    match scheduler {
        Some(sched) => {
            {
                let mut ex = JobExecutor::slurm(sched.clone(), Uid(9001), "ci-alloc");
                let h = ex
                    .submit(
                        &PsijJobSpec::new("b", "hostname").running_for(SimDuration::from_secs(3)),
                        SimTime::ZERO,
                    )
                    .unwrap();
                let ok = matches!(
                    ex.wait(h, SimTime::ZERO, SimDuration::from_mins(5)),
                    Ok((PsijJobState::Completed, _))
                );
                push("test_batch_submit_wait", ok, 6.0);
            }
            {
                let mut ex = JobExecutor::slurm(sched.clone(), Uid(9001), "ci-alloc");
                let h = ex
                    .submit(
                        &PsijJobSpec::new("w", "burn")
                            .with_duration(SimDuration::from_secs(5))
                            .running_for(SimDuration::from_secs(60)),
                        SimTime::ZERO,
                    )
                    .unwrap();
                let ok = matches!(
                    ex.wait(h, SimTime::ZERO, SimDuration::from_mins(5)),
                    Ok((PsijJobState::Failed, _))
                );
                push("test_batch_walltime", ok, 8.0);
            }
            {
                let mut ex = JobExecutor::slurm(sched, Uid(9001), "ci-alloc");
                let h = ex
                    .submit(
                        &PsijJobSpec::new("c", "burn").running_for(SimDuration::from_secs(60)),
                        SimTime::ZERO,
                    )
                    .unwrap();
                let ok = ex.cancel(h, SimTime::from_secs(1)).is_ok()
                    && ex.state(h, SimTime::from_secs(2)) == Ok(PsijJobState::Canceled);
                push("test_batch_cancel", ok, 4.0);
            }
        }
        None => {
            push("test_batch_submit_wait", false, 0.1);
            push("test_batch_walltime", false, 0.1);
            push("test_batch_cancel", false, 0.1);
        }
    }
    outcomes
}

/// Install the PSI/J `pytest` handler at a site. The handler first resolves
/// the suite's requirements against the named software environment — a
/// missing requirement reproduces Fig. 5's collection error — then runs the
/// real executor tests against the site's scheduler.
pub fn install_psij_pytest(
    commands: &mut CommandRegistry,
    env_name: &str,
    scheduler: Option<Arc<Mutex<BatchScheduler>>>,
) {
    let env_name = env_name.to_string();
    commands.register("pytest", move |env| {
        // Dependency resolution (pip install -r requirements.txt).
        let mut stdout = String::new();
        match env.site.envs.get(&env_name) {
            Ok(software) => {
                for (line, req) in required_packages().iter().enumerate() {
                    if software.satisfies(req) {
                        stdout.push_str(&format!(
                            "Requirement already satisfied: {req} in /home/{}/miniconda3/envs/{}/lib/python3.12/site-packages (from -r requirements.txt (line {}))\n",
                            env.account.username,
                            env_name,
                            line + 1
                        ));
                    } else {
                        // Fig. 5's failure shape: the error is reported back to
                        // the runner and the full output is preserved.
                        stdout.push_str(&format!(
                            "ERROR: Could not find a version that satisfies the requirement {req} (from -r requirements.txt (line {}))\n",
                            line + 1
                        ));
                        let stderr = format!(
                            "ERROR: No matching distribution found for {req}\nFAILED tests/ - collection error: dependency resolution failed"
                        );
                        return ExecOutcome {
                            stdout,
                            stderr: stderr.clone(),
                            result: Err(stderr),
                            work: hpcci_cluster::WorkUnits::secs(3.0),
                        };
                    }
                }
            }
            Err(_) => {
                return ExecOutcome::fail(
                    format!("conda: environment `{env_name}` not found"),
                    0.5,
                );
            }
        }

        // Run the real suite against the site scheduler.
        let outcomes = run_psij_suite(scheduler.clone());
        let mut total_work = 2.0; // collection + fixtures
        let (mut passed, mut failed) = (0, 0);
        stdout.push_str("\n============================= test session starts ==============================\n");
        for o in &outcomes {
            total_work += o.ref_secs;
            if o.passed {
                passed += 1;
                stdout.push_str(&format!("tests/test_executors.py::{} PASSED\n", o.name));
            } else {
                failed += 1;
                stdout.push_str(&format!("tests/test_executors.py::{} FAILED\n", o.name));
            }
        }
        stdout.push_str(&format!(
            "========================= {passed} passed, {failed} failed =========================\n"
        ));
        if failed == 0 {
            ExecOutcome::ok(stdout, total_work)
        } else {
            let stderr = format!("{failed} test(s) failed");
            ExecOutcome {
                stdout,
                stderr: stderr.clone(),
                result: Err(stderr),
                work: hpcci_cluster::WorkUnits::secs(total_work),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::{Cred, NodeId, NodeRole, Site};
    use hpcci_faas::SiteRuntime;
    use hpcci_sim::DetRng;

    fn sched() -> Arc<Mutex<BatchScheduler>> {
        Arc::new(Mutex::new(BatchScheduler::with_compute_partition(
            (0..4).map(NodeId).collect(),
            8,
        )))
    }

    #[test]
    fn suite_passes_with_scheduler() {
        let outcomes = run_psij_suite(Some(sched()));
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!(o.passed, "{} failed", o.name);
        }
    }

    #[test]
    fn suite_batch_tests_fail_without_scheduler() {
        let outcomes = run_psij_suite(None);
        let failed: Vec<_> = outcomes.iter().filter(|o| !o.passed).collect();
        assert_eq!(failed.len(), 3);
        assert!(failed.iter().all(|o| o.name.starts_with("test_batch")));
    }

    fn runtime_with_env(complete: bool) -> SiteRuntime {
        let mut rt = SiteRuntime::new(Site::purdue_anvil()).with_scheduler(128);
        let env = rt.site.envs.create("psij");
        env.install("psij-python", "0.9.9");
        env.install("psutil", "5.9.8");
        env.install("pystache", "0.6.8");
        if complete {
            env.install("typeguard", "3.0.2");
        }
        let sched = rt.scheduler.clone();
        install_psij_pytest(&mut rt.commands, "psij", sched);
        rt.site.add_account("x-vhayot", "CIS230030");
        rt
    }

    fn run(rt: &mut SiteRuntime) -> ExecOutcome {
        let account = rt.site.account("x-vhayot").unwrap().clone();
        let cred = Cred::of(&account);
        let mut rng = DetRng::seed_from_u64(1);
        rt.execute(
            "pytest tests/",
            &account,
            &cred,
            NodeRole::Login,
            "anvil-login-1",
            SimTime::ZERO,
            &mut rng,
            None,
        )
    }

    #[test]
    fn complete_environment_passes() {
        let mut rt = runtime_with_env(true);
        let out = run(&mut rt);
        assert!(out.result.is_ok(), "{}", out.stderr);
        assert!(out.stdout.contains("6 passed, 0 failed"));
        assert!(out.stdout.contains("Requirement already satisfied: psutil>=5.9"));
    }

    #[test]
    fn missing_dependency_reproduces_fig5_failure() {
        let mut rt = runtime_with_env(false);
        let out = run(&mut rt);
        assert!(out.result.is_err());
        assert!(out.stderr.contains("typeguard"), "{}", out.stderr);
        assert!(out.stderr.contains("FAILED"));
        // The satisfied requirements are still echoed, like the Fig. 5 log.
        assert!(out.stdout.contains("Requirement already satisfied"));
    }
}
