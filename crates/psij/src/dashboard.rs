//! The PSI/J community testing dashboard (§6.2): "PSI/J's cron job publishes
//! test results back to the community via a public dashboard." Aggregates
//! [`crate::cron::CronCi`] deployments across sites into the site × run
//! matrix the project publishes, and renders the status page.

use crate::cron::{CronCi, DashboardEntry};
use hpcci_sim::SimTime;
use std::collections::BTreeMap;

/// The aggregated multi-site dashboard.
#[derive(Debug, Default)]
pub struct MultiSiteDashboard {
    entries: Vec<DashboardEntry>,
}

impl MultiSiteDashboard {
    pub fn new() -> Self {
        MultiSiteDashboard::default()
    }

    /// Pull every published entry from a site's cron deployment.
    pub fn collect(&mut self, cron: &CronCi) {
        for e in cron.dashboard() {
            if !self.entries.contains(e) {
                self.entries.push(e.clone());
            }
        }
        self.entries.sort_by_key(|e| (e.at, e.site.clone()));
    }

    pub fn entries(&self) -> &[DashboardEntry] {
        &self.entries
    }

    /// Latest result per site — the front-page status row.
    pub fn latest_per_site(&self) -> BTreeMap<String, &DashboardEntry> {
        let mut latest: BTreeMap<String, &DashboardEntry> = BTreeMap::new();
        for e in &self.entries {
            match latest.get(&e.site) {
                Some(existing) if existing.at >= e.at => {}
                _ => {
                    latest.insert(e.site.clone(), e);
                }
            }
        }
        latest
    }

    /// Sites whose most recent run failed (the triage list).
    pub fn failing_sites(&self) -> Vec<String> {
        self.latest_per_site()
            .into_iter()
            .filter(|(_, e)| !e.passed)
            .map(|(s, _)| s)
            .collect()
    }

    /// Pass rate over a window ending at `now` (fraction in [0, 1]).
    pub fn pass_rate_since(&self, since: SimTime, now: SimTime) -> f64 {
        let window: Vec<_> = self
            .entries
            .iter()
            .filter(|e| e.at >= since && e.at <= now)
            .collect();
        if window.is_empty() {
            return 1.0;
        }
        window.iter().filter(|e| e.passed).count() as f64 / window.len() as f64
    }

    /// Render the public status page.
    pub fn render(&self) -> String {
        let mut out = String::from("PSI/J community test dashboard\n\n");
        out.push_str(&format!("{:<18}{:<10}{:<14}{}\n", "site", "status", "branch", "last run"));
        for (site, e) in self.latest_per_site() {
            out.push_str(&format!(
                "{:<18}{:<10}{:<14}{}\n",
                site,
                if e.passed { "passing" } else { "FAILING" },
                e.branch,
                e.at
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cron::PullPolicy;
    use hpcci_cluster::Site;
    use hpcci_faas::{ExecOutcome, SiteRuntime};
    use hpcci_sim::{Advance, SimDuration};

    fn cron_for(site: Site, pass: bool) -> CronCi {
        let mut rt = SiteRuntime::new(site).with_scheduler(64);
        rt.site.add_account("ci-user", "alloc");
        rt.commands.register("pytest", move |_| {
            if pass {
                ExecOutcome::ok("6 passed", 5.0)
            } else {
                ExecOutcome::fail("2 failed", 5.0)
            }
        });
        CronCi::new(
            hpcci_faas::exec::shared(rt),
            "ci-user",
            PullPolicy::Main,
            SimDuration::from_hours(24),
            "pytest tests/",
        )
    }

    #[test]
    fn aggregates_multiple_sites() {
        let mut anvil = cron_for(Site::purdue_anvil(), true);
        let mut expanse = cron_for(Site::sdsc_expanse(), false);
        let t = SimTime::from_secs(3 * 24 * 3600);
        anvil.advance_to(t);
        expanse.advance_to(t);

        let mut dash = MultiSiteDashboard::new();
        dash.collect(&anvil);
        dash.collect(&expanse);
        assert_eq!(dash.entries().len(), 6);
        assert_eq!(dash.failing_sites(), vec!["sdsc-expanse"]);
        let page = dash.render();
        assert!(page.contains("purdue-anvil"));
        assert!(page.contains("passing"));
        assert!(page.contains("FAILING"));
        assert!((dash.pass_rate_since(SimTime::ZERO, t) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn collect_is_idempotent_and_latest_wins() {
        let mut anvil = cron_for(Site::purdue_anvil(), true);
        anvil.advance_to(SimTime::from_secs(2 * 24 * 3600));
        let mut dash = MultiSiteDashboard::new();
        dash.collect(&anvil);
        dash.collect(&anvil);
        assert_eq!(dash.entries().len(), 2, "no duplicates");
        let latest = dash.latest_per_site();
        assert_eq!(latest["purdue-anvil"].at, SimTime::from_secs(2 * 24 * 3600));
    }

    #[test]
    fn empty_window_pass_rate_defaults_green() {
        let dash = MultiSiteDashboard::new();
        assert_eq!(dash.pass_rate_since(SimTime::ZERO, SimTime::from_secs(1)), 1.0);
        assert!(dash.failing_sites().is_empty());
    }
}
