//! # hpcci-psij — a portable job-submission interface (§6.2's workload)
//!
//! A Rust analogue of PSI/J, "a Python library designed to increase the
//! portability of software — particularly workflow systems — across
//! different HPC systems" by abstracting over schedulers. Built directly on
//! `hpcci-scheduler`, so its tests genuinely exercise a deployed scheduler —
//! the reason PSI/J "must be tested directly on HPC sites".
//!
//! * [`spec::PsijJobSpec`] — executable + resource request, scheduler-
//!   agnostic;
//! * [`executor::JobExecutor`] — the abstraction layer, with a `local`
//!   executor (fork on the login node) and a `slurm` executor (submit
//!   through the batch scheduler);
//! * [`suite`] — the PSI/J CI test suite CORRECT runs on Anvil, with the
//!   dependency fault of Fig. 5 injectable via the site's software
//!   environment;
//! * [`cron`] — the **baseline**: PSI/J's existing cron-job CI with its
//!   three code-pull policies and public dashboard (reproduced so the paper's
//!   CORRECT-vs-cron comparison is executable).

pub mod cron;
pub mod dashboard;
pub mod executor;
pub mod spec;
pub mod suite;

pub use cron::{CronCi, DashboardEntry, PullPolicy};
pub use dashboard::MultiSiteDashboard;
pub use executor::{JobExecutor, PsijError, PsijJobHandle, PsijJobState};
pub use spec::PsijJobSpec;
pub use suite::{install_psij_pytest, required_packages, run_psij_suite, PsijTestOutcome};
