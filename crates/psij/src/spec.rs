//! Scheduler-agnostic job specifications (PSI/J's `JobSpec`).

use hpcci_sim::SimDuration;

/// A portable job description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsijJobSpec {
    pub name: String,
    pub executable: String,
    pub arguments: Vec<String>,
    /// Total processes (ranks).
    pub process_count: u32,
    /// Wall-clock limit.
    pub duration: SimDuration,
    /// Expected run duration for simulated execution (what the job "does").
    pub simulated_runtime: SimDuration,
    /// Whether the simulated payload exits successfully.
    pub simulated_success: bool,
}

impl PsijJobSpec {
    pub fn new(name: &str, executable: &str) -> PsijJobSpec {
        PsijJobSpec {
            name: name.to_string(),
            executable: executable.to_string(),
            arguments: Vec::new(),
            process_count: 1,
            duration: SimDuration::from_mins(10),
            simulated_runtime: SimDuration::from_secs(5),
            simulated_success: true,
        }
    }

    pub fn with_args(mut self, args: &[&str]) -> Self {
        self.arguments = args.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_processes(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.process_count = n;
        self
    }

    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    pub fn running_for(mut self, d: SimDuration) -> Self {
        self.simulated_runtime = d;
        self
    }

    pub fn failing(mut self) -> Self {
        self.simulated_success = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let spec = PsijJobSpec::new("hello", "/bin/echo")
            .with_args(&["hello", "world"])
            .with_processes(4)
            .with_duration(SimDuration::from_mins(30))
            .running_for(SimDuration::from_secs(9))
            .failing();
        assert_eq!(spec.arguments.len(), 2);
        assert_eq!(spec.process_count, 4);
        assert!(!spec.simulated_success);
        assert_eq!(spec.simulated_runtime, SimDuration::from_secs(9));
    }
}
