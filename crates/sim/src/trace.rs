//! Structured simulation trace.
//!
//! Every substrate appends [`TraceEvent`]s to a shared [`Trace`]. The trace
//! serves two purposes: it is the raw material for provenance records
//! (§5 of the paper argues provenance + re-execution substitutes for resource
//! access), and it regenerates the paper's Fig. 2 system-overview as a
//! component/message timeline.
//!
//! ## Allocation discipline
//!
//! Component and kind names repeat millions of times across a long run
//! (`"faas.cloud"`, `"task.submit"`, …), so [`TraceEvent`] stores them as
//! interned [`Sym`]s rather than `String`s: a `&'static str` is wrapped for
//! free, and owned strings are deduplicated through the trace's [`Interner`]
//! so each distinct name is allocated exactly once per trace. Only `detail`
//! — genuinely free-form — stays a `String`.

use crate::time::SimTime;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// An interned string: either a `'static` literal (zero-cost) or a shared,
/// deduplicated allocation handed out by an [`Interner`]. Dereferences to
/// `str`; equality, ordering and hashing are by content.
#[derive(Clone)]
pub enum Sym {
    /// Literal fast path: no allocation, no interner consult.
    Static(&'static str),
    /// Interned allocation, shared by every event using the same name.
    Shared(Arc<str>),
}

impl Sym {
    pub fn as_str(&self) -> &str {
        match self {
            Sym::Static(s) => s,
            Sym::Shared(s) => s,
        }
    }
}

impl std::ops::Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for Sym {}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl std::borrow::Borrow<str> for Sym {
    /// Lets `Sym`-keyed maps be probed with a plain `&str` — no temporary
    /// `Sym` (and no allocation) per lookup. Sound because `Eq`/`Ord`/`Hash`
    /// are all by content, exactly like `str`'s.
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Sym {
    /// A standalone shared symbol — one allocation, no interner. For cold
    /// paths and tests; hot paths should intern once and clone the `Sym`.
    fn from(s: &str) -> Sym {
        Sym::Shared(Arc::from(s))
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::Shared(Arc::from(s))
    }
}

impl From<&Sym> for Sym {
    /// Cheap: clones the handle (a pointer bump for `Shared`), never the text.
    fn from(s: &Sym) -> Sym {
        s.clone()
    }
}

/// Deduplicating string cache: each distinct name is allocated once and
/// every subsequent intern of the same text reuses the `Arc`.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: BTreeSet<Arc<str>>,
    hits: u64,
    misses: u64,
}

impl Interner {
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`: returns a [`Sym`] sharing the single allocation for this
    /// text (allocating it on first sight).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(existing) = self.strings.get(s) {
            self.hits += 1;
            return Sym::Shared(existing.clone());
        }
        self.misses += 1;
        let arc: Arc<str> = Arc::from(s);
        self.strings.insert(arc.clone());
        Sym::Shared(arc)
    }

    /// Distinct strings held.
    pub fn unique(&self) -> usize {
        self.strings.len()
    }

    /// Interns that reused an existing allocation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    fn absorb(&mut self, other: Interner) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.strings.extend(other.strings);
    }
}

/// Conversion into an interned [`Sym`]. `&'static str` takes the zero-cost
/// literal path; owned strings go through the interner.
pub trait IntoSym {
    fn into_sym(self, interner: &mut Interner) -> Sym;
}

impl IntoSym for &'static str {
    fn into_sym(self, _interner: &mut Interner) -> Sym {
        Sym::Static(self)
    }
}

impl IntoSym for String {
    fn into_sym(self, interner: &mut Interner) -> Sym {
        interner.intern(&self)
    }
}

impl IntoSym for &String {
    fn into_sym(self, interner: &mut Interner) -> Sym {
        interner.intern(self)
    }
}

impl IntoSym for Sym {
    fn into_sym(self, _interner: &mut Interner) -> Sym {
        self
    }
}

impl IntoSym for &Sym {
    fn into_sym(self, _interner: &mut Interner) -> Sym {
        self.clone()
    }
}

/// One traced occurrence in the federation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub at_us: u64,
    /// Emitting component, e.g. `"faas.mep.anvil"` or `"ci.runner.hosted-3"`.
    pub component: Sym,
    /// Short machine-readable kind, e.g. `"task.submit"`.
    pub kind: Sym,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl TraceEvent {
    pub fn at(&self) -> SimTime {
        SimTime::from_micros(self.at_us)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:<24} {:<20} {}",
            self.at(),
            self.component,
            self.kind,
            self.detail
        )
    }
}

/// Allocation accounting for the benchmark harness: how many name strings a
/// trace actually allocated versus how many a naïve `String`-per-field trace
/// would have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAllocStats {
    /// Events recorded.
    pub events: u64,
    /// Distinct interned names (each cost exactly one allocation).
    pub unique_interned: usize,
    /// Interns satisfied by an existing allocation.
    pub interner_hits: u64,
    /// Names that took the `&'static str` fast path (no allocation at all).
    pub static_syms: u64,
}

impl TraceAllocStats {
    /// Name allocations a pre-interning trace would have performed
    /// (component + kind per event).
    pub fn naive_allocs(&self) -> u64 {
        2 * self.events
    }

    /// Allocations avoided by interning and the static fast path.
    pub fn saved_allocs(&self) -> u64 {
        self.naive_allocs().saturating_sub(self.unique_interned as u64)
    }
}

/// An append-only event log. Cheap to clone handles are not provided here on
/// purpose: owners thread `&mut Trace` (or wrap it in a lock at the
/// federation layer) so ownership of the log is always explicit.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    interner: Interner,
    static_syms: u64,
    /// Opt-in rolling cap: when set, the oldest half of the log is folded
    /// into `fold_hash` and dropped whenever the live window reaches the
    /// cap, so a million-task run holds O(cap) events instead of O(run).
    cap: Option<usize>,
    /// Events folded out of the live window so far.
    folded: u64,
    /// Running FNV-1a digest over the rendered lines of folded events.
    fold_hash: u64,
    /// Scratch line buffer for folding — rendering a folded event reuses
    /// this allocation instead of `to_string()`-ing per event.
    fold_scratch: String,
    /// Detail buffers recycled from folded events (rolling mode only): hot
    /// recorders take one via [`Trace::detail_buf`], build the detail in
    /// place, and hand it back through [`Trace::record`], so steady-state
    /// detail strings stop allocating once the window has filled once.
    detail_pool: Vec<String>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }

    /// Intern a name against this trace's interner without recording an
    /// event — lets hot components pre-compute their [`Sym`] once and pass
    /// it to every subsequent [`Trace::record`] for free.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.interner.intern(s)
    }

    /// An empty `String` for building the next event's detail in: recycled
    /// from a folded-out event when one is available (rolling mode), fresh
    /// otherwise. Passing the built string to [`Trace::record`] moves it
    /// into the event, so the buffer's capacity keeps cycling through the
    /// window instead of being reallocated per event.
    pub fn detail_buf(&mut self) -> String {
        self.detail_pool.pop().unwrap_or_default()
    }

    /// Append an event.
    pub fn record(
        &mut self,
        at: SimTime,
        component: impl IntoSym,
        kind: impl IntoSym,
        detail: impl Into<String>,
    ) {
        let component = component.into_sym(&mut self.interner);
        let kind = kind.into_sym(&mut self.interner);
        self.static_syms += matches!(component, Sym::Static(_)) as u64
            + matches!(kind, Sym::Static(_)) as u64;
        self.events.push(TraceEvent {
            at_us: at.as_micros(),
            component,
            kind,
            detail: detail.into(),
        });
        if let Some(cap) = self.cap {
            if self.events.len() >= cap.max(2) {
                self.fold_oldest(cap.max(2) / 2);
            }
        }
    }

    /// Switch this trace into rolling mode with a live window of at most
    /// `cap` events: once the window fills, the oldest half is folded into a
    /// running digest (see [`Trace::rolling_digest`]) and dropped, bounding
    /// memory for million-task runs. Folding is a pure function of the
    /// recorded lines, so two identical runs fold to identical digests.
    ///
    /// Rolling traces are for leaf drivers (benchmarks, soak runs) that
    /// never [`Trace::merge`] the log into another trace; the golden-trace
    /// and parallel-DES paths keep the default unbounded mode.
    pub fn set_rolling(&mut self, cap: usize) {
        self.cap = Some(cap.max(2));
        if self.fold_hash == 0 {
            self.fold_hash = FNV_OFFSET;
        }
    }

    /// Events folded out of the live window so far (0 outside rolling mode).
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Total events ever recorded: folded plus still live.
    pub fn recorded(&self) -> u64 {
        self.folded + self.events.len() as u64
    }

    /// FNV-1a digest over the rendered lines of every folded event, then
    /// every live event — a deterministic fingerprint of the whole log that
    /// is insensitive to where the fold boundaries happened to land.
    pub fn rolling_digest(&self) -> u64 {
        let mut h = if self.fold_hash == 0 { FNV_OFFSET } else { self.fold_hash };
        let mut line = String::new();
        for e in &self.events {
            h = fold_line(h, e, &mut line);
        }
        h
    }

    fn fold_oldest(&mut self, n: usize) {
        let n = n.min(self.events.len());
        let mut line = std::mem::take(&mut self.fold_scratch);
        for mut e in self.events.drain(..n) {
            self.fold_hash = fold_line(self.fold_hash, &e, &mut line);
            // Recycle the detail allocation for a future `detail_buf` call.
            e.detail.clear();
            self.detail_pool.push(e.detail);
        }
        self.fold_scratch = line;
        self.folded += n as u64;
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Allocation accounting for the benchmark harness.
    pub fn alloc_stats(&self) -> TraceAllocStats {
        TraceAllocStats {
            events: self.events.len() as u64,
            unique_interned: self.interner.unique(),
            interner_hits: self.interner.hits(),
            static_syms: self.static_syms,
        }
    }

    /// Events whose kind matches `kind` exactly.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind.as_str() == kind)
    }

    /// Events emitted by components whose name starts with `prefix`.
    pub fn of_component<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.component.starts_with(prefix))
    }

    /// Merge another trace into this one, keeping global timestamp order.
    /// Stable: within equal timestamps, `self`'s events precede `other`'s.
    ///
    /// Both traces are appended in time order in practice, so this is a
    /// linear two-run merge — with an O(1) fast path when the runs don't
    /// overlap at all. Should either log ever be out of order (a caller
    /// recorded into the past), it falls back to a stable sort so the
    /// result is identical either way.
    pub fn merge(&mut self, other: Trace) {
        let sorted = |events: &[TraceEvent]| events.windows(2).all(|w| w[0].at_us <= w[1].at_us);
        self.static_syms += other.static_syms;
        self.interner.absorb(other.interner);
        if !sorted(&self.events) || !sorted(&other.events) {
            // Degenerate input: preserve the historical extend-then-stable-
            // sort semantics exactly (even when `other` is empty, an
            // out-of-order self must come out sorted).
            self.events.extend(other.events);
            self.events.sort_by_key(|e| e.at_us);
            return;
        }
        if other.events.is_empty() {
            return;
        }
        match self.events.last() {
            // Fast path: `other` begins at or after our last event.
            Some(last) if last.at_us <= other.events[0].at_us => {
                self.events.extend(other.events);
            }
            None => self.events = other.events,
            Some(_) => {
                let ours = std::mem::take(&mut self.events);
                self.events = Vec::with_capacity(ours.len() + other.events.len());
                let mut a = ours.into_iter().peekable();
                let mut b = other.events.into_iter().peekable();
                while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
                    // `<=` keeps self's events first within equal stamps.
                    if x.at_us <= y.at_us {
                        let e = a.next().expect("peeked");
                        self.events.push(e);
                    } else {
                        let e = b.next().expect("peeked");
                        self.events.push(e);
                    }
                }
                self.events.extend(a);
                self.events.extend(b);
            }
        }
    }

    /// Render the whole trace as text, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// Fold one event's rendered line (with trailing newline) into an FNV-1a
/// accumulator — the same bytes [`Trace::render`] would have contributed.
/// Renders through the caller's scratch buffer so folding a million events
/// performs no per-event allocation.
fn fold_line(mut h: u64, e: &TraceEvent, line: &mut String) -> u64 {
    use std::fmt::Write;
    line.clear();
    write!(line, "{e}").expect("write! to String cannot fail");
    for b in line.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= b'\n' as u64;
    h.wrapping_mul(FNV_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), "ci.runner", "step.start", "run tox");
        t.record(SimTime::from_secs(2), "faas.cloud", "task.submit", "tid=1");
        t.record(SimTime::from_secs(3), "faas.cloud", "task.done", "tid=1");
        t
    }

    #[test]
    fn records_and_filters() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_kind("task.submit").count(), 1);
        assert_eq!(t.of_component("faas").count(), 2);
        assert_eq!(t.of_component("ci.runner").count(), 1);
    }

    #[test]
    fn merge_keeps_time_order() {
        let mut a = sample();
        let mut b = Trace::new();
        b.record(SimTime::from_millis(1500), "sched", "job.start", "jid=9");
        a.merge(b);
        let times: Vec<u64> = a.events().iter().map(|e| e.at_us).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn merge_is_stable_within_equal_timestamps() {
        let mut a = Trace::new();
        a.record(SimTime::from_secs(1), "a", "k", "a1");
        a.record(SimTime::from_secs(2), "a", "k", "a2");
        let mut b = Trace::new();
        b.record(SimTime::from_secs(1), "b", "k", "b1");
        b.record(SimTime::from_secs(2), "b", "k", "b2");
        a.merge(b);
        let details: Vec<&str> = a.events().iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn merge_handles_empty_and_disjoint_runs() {
        let mut a = sample();
        a.merge(Trace::new());
        assert_eq!(a.len(), 3);
        let mut empty = Trace::new();
        empty.merge(sample());
        assert_eq!(empty.len(), 3);
        // Disjoint: all of b after all of a (exercise the fast path).
        let mut b = Trace::new();
        b.record(SimTime::from_secs(10), "late", "k", "x");
        a.merge(b);
        assert_eq!(a.events().last().unwrap().detail, "x");
    }

    #[test]
    fn merge_unsorted_falls_back_to_stable_sort() {
        let mut a = Trace::new();
        a.record(SimTime::from_secs(5), "a", "k", "late");
        a.record(SimTime::from_secs(1), "a", "k", "early");
        let mut b = Trace::new();
        b.record(SimTime::from_secs(3), "b", "k", "mid");
        a.merge(b);
        let times: Vec<u64> = a.events().iter().map(|e| e.at_us).collect();
        assert_eq!(
            times,
            vec![1_000_000, 3_000_000, 5_000_000],
            "unsorted input still merges into time order"
        );
    }

    #[test]
    fn render_contains_all_lines() {
        let t = sample();
        let s = t.render();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("task.submit"));
        assert!(s.contains("run tox"));
    }

    #[test]
    fn serde_roundtrip() {
        // Trace participates in provenance records, which serialize.
        let t = sample();
        let e = &t.events()[0];
        let cloned = e.clone();
        assert_eq!(*e, cloned);
        assert_eq!(e.at(), SimTime::from_secs(1));
    }

    #[test]
    fn interner_dedupes_owned_names() {
        let mut t = Trace::new();
        for i in 0..100 {
            t.record(
                SimTime::from_secs(i),
                format!("faas.ep.{}", i % 4),
                "task.deliver",
                format!("tid={i}"),
            );
        }
        let stats = t.alloc_stats();
        assert_eq!(stats.events, 100);
        assert_eq!(stats.unique_interned, 4, "four endpoint names interned once each");
        assert_eq!(stats.static_syms, 100, "kind literal takes the static path");
        assert_eq!(stats.interner_hits, 96);
        assert!(stats.saved_allocs() >= 196);
        // Events sharing a name share the allocation.
        let a = &t.events()[0].component;
        let b = &t.events()[4].component;
        match (a, b) {
            (Sym::Shared(x), Sym::Shared(y)) => assert!(Arc::ptr_eq(x, y)),
            other => panic!("expected shared syms, got {other:?}"),
        }
    }

    #[test]
    fn rolling_mode_bounds_memory_and_keeps_a_stable_digest() {
        let fill = |rolling: Option<usize>| {
            let mut t = Trace::new();
            if let Some(cap) = rolling {
                t.set_rolling(cap);
            }
            for i in 0..1_000u64 {
                t.record(SimTime::from_micros(i), "faas.cloud", "task.submit", format!("tid={i}"));
            }
            t
        };
        let bounded = fill(Some(64));
        assert!(bounded.len() < 64, "live window stays under the cap");
        assert_eq!(bounded.recorded(), 1_000);
        assert_eq!(bounded.folded() + bounded.len() as u64, 1_000);
        // The rolling digest covers the whole log and is independent of
        // where the fold boundaries landed.
        let unbounded = fill(None);
        assert_eq!(unbounded.len(), 1_000);
        assert_eq!(unbounded.folded(), 0);
        assert_eq!(bounded.rolling_digest(), unbounded.rolling_digest());
        assert_eq!(bounded.rolling_digest(), fill(Some(16)).rolling_digest());
        // And it actually depends on the contents.
        let mut other = fill(Some(64));
        other.record(SimTime::from_secs(9), "faas.cloud", "task.submit", "tid=x");
        assert_ne!(other.rolling_digest(), bounded.rolling_digest());
    }

    #[test]
    fn sym_compares_and_displays_by_content() {
        let mut interner = Interner::new();
        let a = interner.intern("faas.cloud");
        let b = Sym::Static("faas.cloud");
        assert_eq!(a, b);
        assert_eq!(a, *"faas.cloud");
        assert_eq!(format!("{a:>12}"), format!("{:>12}", "faas.cloud"));
        assert!(a.starts_with("faas"));
        assert_eq!(interner.hits(), 0);
        let _again = interner.intern("faas.cloud");
        assert_eq!(interner.hits(), 1);
        assert_eq!(interner.unique(), 1);
    }

    #[test]
    fn pre_interned_syms_record_for_free() {
        let mut t = Trace::new();
        let component = t.intern("faas.ep.hot");
        t.record(SimTime::ZERO, &component, "task.deliver", "tid=1");
        t.record(SimTime::from_secs(1), component, "task.deliver", "tid=2");
        let stats = t.alloc_stats();
        assert_eq!(stats.unique_interned, 1);
        assert_eq!(t.of_component("faas.ep.hot").count(), 2);
    }
}
