//! Structured simulation trace.
//!
//! Every substrate appends [`TraceEvent`]s to a shared [`Trace`]. The trace
//! serves two purposes: it is the raw material for provenance records
//! (§5 of the paper argues provenance + re-execution substitutes for resource
//! access), and it regenerates the paper's Fig. 2 system-overview as a
//! component/message timeline.

use crate::time::SimTime;
use std::fmt;

/// One traced occurrence in the federation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub at_us: u64,
    /// Emitting component, e.g. `"faas.mep.anvil"` or `"ci.runner.hosted-3"`.
    pub component: String,
    /// Short machine-readable kind, e.g. `"task.submit"`.
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl TraceEvent {
    pub fn at(&self) -> SimTime {
        SimTime::from_micros(self.at_us)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:<24} {:<20} {}",
            self.at(),
            self.component,
            self.kind,
            self.detail
        )
    }
}

/// An append-only event log. Cheap to clone handles are not provided here on
/// purpose: owners thread `&mut Trace` (or wrap it in a lock at the
/// federation layer) so ownership of the log is always explicit.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn record(
        &mut self,
        at: SimTime,
        component: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.events.push(TraceEvent {
            at_us: at.as_micros(),
            component: component.into(),
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events whose kind matches `kind` exactly.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events emitted by components whose name starts with `prefix`.
    pub fn of_component<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.component.starts_with(prefix))
    }

    /// Merge another trace into this one, keeping global timestamp order.
    /// Stable: within equal timestamps, `self`'s events precede `other`'s.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.at_us);
    }

    /// Render the whole trace as text, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::from_secs(1), "ci.runner", "step.start", "run tox");
        t.record(SimTime::from_secs(2), "faas.cloud", "task.submit", "tid=1");
        t.record(SimTime::from_secs(3), "faas.cloud", "task.done", "tid=1");
        t
    }

    #[test]
    fn records_and_filters() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_kind("task.submit").count(), 1);
        assert_eq!(t.of_component("faas").count(), 2);
        assert_eq!(t.of_component("ci.runner").count(), 1);
    }

    #[test]
    fn merge_keeps_time_order() {
        let mut a = sample();
        let mut b = Trace::new();
        b.record(SimTime::from_millis(1500), "sched", "job.start", "jid=9");
        a.merge(b);
        let times: Vec<u64> = a.events().iter().map(|e| e.at_us).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn render_contains_all_lines() {
        let t = sample();
        let s = t.render();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("task.submit"));
        assert!(s.contains("run tox"));
    }

    #[test]
    fn serde_roundtrip() {
        // Trace participates in provenance records, which serialize.
        let t = sample();
        let e = &t.events()[0];
        let cloned = e.clone();
        assert_eq!(*e, cloned);
        assert_eq!(e.at(), SimTime::from_secs(1));
    }
}
