//! Deterministic randomness for the federation.
//!
//! A self-contained xoshiro256++ generator (seeded via SplitMix64) plus the
//! distributions the site performance models need. Lognormal/normal sampling
//! is implemented with Box–Muller on top of the uniform source. No external
//! RNG crate is used, so the stream is fully pinned by this file: the same
//! seed yields the same sequence on every platform and toolchain.

/// A deterministic RNG stream. Two `DetRng`s built from the same seed yield
/// identical sequences; [`DetRng::fork`] derives an independent child stream
/// so components can consume randomness without perturbing each other.
#[derive(Clone, Debug)]
pub struct DetRng {
    /// xoshiro256++ state.
    s: [u64; 4],
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// The raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child stream tagged by `label`. Children with
    /// different labels are decorrelated; the parent stream is advanced by
    /// exactly one `u64`.
    pub fn fork(&mut self, label: &str) -> DetRng {
        let base = self.next_u64();
        // FNV-1a over the label mixes the tag into the child seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        DetRng::seed_from_u64(base ^ h)
    }

    /// Uniform in `[0, 1)` (53 bits of precision).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        // Lemire's multiply-shift maps the full 64-bit output onto the range
        // with negligible bias for the simulation's small ranges.
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller (caching the paired variate).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] so ln(u1) is finite.
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Lognormal: `exp(N(mu, sigma))`. `mu`/`sigma` are the parameters of the
    /// underlying normal, as is conventional.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// A multiplicative noise factor centred on 1.0 with relative spread
    /// `rel_sigma` — the canonical "system variability" model for run-to-run
    /// timing jitter (§2.1 of the paper discusses the sources).
    pub fn jitter(&mut self, rel_sigma: f64) -> f64 {
        if rel_sigma <= 0.0 {
            return 1.0;
        }
        // Lognormal with median 1.0; clamp the tails so a single unlucky
        // sample cannot dominate a simulated measurement.
        self.lognormal(0.0, rel_sigma).clamp(0.5, 2.0)
    }

    /// Exponential with the given mean (inter-arrival times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit();
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(0, (i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let mut fa = a.fork("scheduler");
        let mut fb = b.fork("scheduler");
        assert_eq!(fa.unit().to_bits(), fb.unit().to_bits());

        let mut c = DetRng::seed_from_u64(7);
        let mut fc = c.fork("faas");
        // Different label => (overwhelmingly likely) different stream.
        assert_ne!(fa.unit().to_bits(), fc.unit().to_bits());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = DetRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn jitter_stays_in_clamp() {
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let j = rng.jitter(0.3);
            assert!((0.5..=2.0).contains(&j));
        }
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = DetRng::seed_from_u64(3);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn range_bounds() {
        let mut rng = DetRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = DetRng::seed_from_u64(6);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
