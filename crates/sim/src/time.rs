//! Virtual time: instants and durations in whole microseconds.
//!
//! A newtype pair rather than `std::time` types so that (a) arithmetic is
//! explicit and saturating where it must be, and (b) a `SimTime` can never be
//! confused with a wall-clock instant anywhere in the federation.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of virtual time, measured in microseconds since the start of
/// the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (None on overflow).
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    /// Negative inputs clamp to zero (durations are non-negative).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be scaled negative");
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_hours(1).as_micros(), 3_600_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
        assert_eq!(
            SimTime::from_secs(1).since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(3000));
        assert_eq!(d * 3, SimDuration::from_secs(6));
        assert_eq!(d / 4, SimDuration::from_millis(500));
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.0000015),
            SimDuration::from_micros(2)
        );
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::FAR_FUTURE + SimDuration::from_secs(1),
            SimTime::FAR_FUTURE
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert!(SimTime::FAR_FUTURE.checked_add(SimDuration::from_micros(1)).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12µs");
        assert_eq!(format!("{}", SimDuration::from_micros(2_500)), "2.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "t+1.500000s");
    }
}
