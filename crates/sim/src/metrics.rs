//! Summary statistics for the benchmark harness.
//!
//! The paper reports per-test runtimes (Fig. 4) and makes qualitative
//! overhead claims (§7.3); the bench binaries aggregate simulated samples
//! with these helpers.

use crate::time::SimDuration;
use std::cell::RefCell;

/// Accumulates scalar samples and reports summary statistics.
///
/// Percentile queries need the samples in order; the sorted copy is built
/// lazily on the first query after a push and reused until the next push
/// dirties it, so a report issuing several quantile queries sorts once.
#[derive(Debug, Default, Clone)]
pub struct Summary {
    samples: Vec<f64>,
    /// Lazily-sorted copy of `samples`; empty-and-stale until a percentile
    /// query rebuilds it. Interior-mutable so queries stay `&self`.
    sorted: RefCell<Vec<f64>>,
    sorted_stale: std::cell::Cell<bool>,
}

impl Summary {
    pub fn new() -> Self {
        Summary::default()
    }

    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.samples.push(v);
        self.sorted_stale.set(true);
    }

    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.samples.len() as f64)
            .sqrt()
    }

    /// Percentile by linear interpolation, `p` in `[0, 100]`. Sorts lazily:
    /// the first query after a push rebuilds the sorted copy in place,
    /// subsequent queries reuse it.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sorted.borrow_mut();
        if self.sorted_stale.get() {
            sorted.clear();
            sorted.extend_from_slice(&self.samples);
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted_stale.set(false);
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = rank - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// One-line report: `n=.. mean=.. sd=.. min=.. p50=.. p95=.. max=..`.
    pub fn report(&self) -> String {
        format!(
            "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} p95={:.4} max={:.4}",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.median(),
            self.percentile(95.0),
            self.max()
        )
    }
}

/// Render a set of labeled series as a fixed-width text table — the bench
/// binaries print paper figures in this form.
pub fn render_table(title: &str, columns: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<36}", ""));
    for c in columns {
        out.push_str(&format!("{c:>14}"));
    }
    out.push('\n');
    for (label, vals) in rows {
        out.push_str(&format!("{label:<36}"));
        for v in vals {
            out.push_str(&format!("{v:>14.4}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.median() - 3.0).abs() < 1e-12);
        assert!((s.std_dev() - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let mut s = Summary::new();
        for v in [0.0, 10.0] {
            s.push(v);
        }
        assert!((s.percentile(25.0) - 2.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(100.0), 10.0);
    }

    #[test]
    fn percentile_stays_correct_across_interleaved_pushes() {
        // The lazily-sorted copy must be rebuilt after any push, including
        // pushes that land out of order relative to earlier samples.
        let mut s = Summary::new();
        s.push(10.0);
        s.push(30.0);
        assert_eq!(s.median(), 20.0);
        assert_eq!(s.percentile(100.0), 30.0);
        s.push(0.0); // earlier than everything already sorted
        assert_eq!(s.median(), 10.0);
        assert_eq!(s.percentile(0.0), 0.0);
        let report = s.report();
        assert!(report.contains("p50=10.0000"), "{report}");
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn durations_convert_to_seconds() {
        let mut s = Summary::new();
        s.push_duration(SimDuration::from_millis(1500));
        assert!((s.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_cells() {
        let rows = vec![
            ("test_a".to_string(), vec![1.0, 2.0]),
            ("test_b".to_string(), vec![3.0, 4.0]),
        ];
        let t = render_table("Fig. 4", &["chameleon", "faster"], &rows);
        assert!(t.contains("Fig. 4"));
        assert!(t.contains("chameleon"));
        assert!(t.contains("test_b"));
        assert!(t.contains("4.0000"));
    }
}
