//! A stable timestamped event queue, implemented as a hierarchical timing
//! wheel.
//!
//! The queue must pop events in exact `(timestamp, insertion order)` order or
//! the federation's behaviour would depend on container internals — the
//! golden-trace suite pins this. The previous implementation was a
//! `BinaryHeap` with explicit sequence numbers; every push and pop paid
//! `O(log n)` comparisons against the whole pending set even though the
//! simulator's access pattern is strongly time-local (events fire near the
//! cursor, new events land a bounded latency ahead).
//!
//! The wheel (tokio-timer style) exploits that locality:
//!
//! * **Levels.** Six levels of 64 slots each. An event's level is the highest
//!   bit position (in 6-bit groups) where its timestamp differs from the
//!   wheel cursor, so level 0 holds the cursor's current 64 µs window with
//!   one exact timestamp per slot, and each higher level covers 64× the span
//!   of the one below (level 5 spans ~19 virtual hours). Pushes are O(1)
//!   appends; an entry cascades down at most [`LEVELS`] times over its life.
//! * **Sorted overflow.** Events further than the wheel span from the cursor
//!   (long walltimes, `FAR_FUTURE` sentinels) sit in a `BTreeMap` keyed by
//!   timestamp and are promoted wholesale when the cursor reaches them.
//! * **Ready batch.** When the cursor reaches a level-0 slot, the whole slot
//!   — every event due at that exact instant, in insertion order — is
//!   promoted into a `VecDeque`, so same-timestamp bursts drain with O(1)
//!   pops and no re-probing between them (batched same-timestamp dispatch).
//! * **Past heap.** The generic API allows pushing behind the cursor (the
//!   simulator never does on its hot path); such entries go to a small
//!   binary heap ordered by `(time, seq)` so exact semantics hold anyway.
//!
//! FIFO-within-timestamp holds structurally: equal timestamps always map to
//! the same slot vector, appends preserve arrival order, and cascades move
//! whole vectors in order into empty lower slots. The cached global minimum
//! makes `next_time` O(1), which the hot loop probes far more often than it
//! pops.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; the wheel spans `2^(SLOT_BITS * LEVELS)` µs
/// (~19.1 virtual hours) from the cursor before the overflow map takes over.
const LEVELS: usize = 6;
/// First timestamp delta (xor-distance from the cursor) the wheel cannot
/// index; at or beyond it events go to the sorted overflow level.
const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Entry in the past-push fallback heap; ordered by `(at, seq)` reversed so
/// the `BinaryHeap` max-heap pops earliest-first.
struct PastEntry<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for PastEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for PastEntry<E> {}
impl<E> PartialOrd for PastEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for PastEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The wheel's slot storage: one insertion-ordered vector per (level, slot).
type SlotArray<E> = [[Vec<(u64, E)>; SLOTS]; LEVELS];

/// A priority queue of events keyed by [`SimTime`], FIFO within a timestamp.
pub struct EventQueue<E> {
    /// Wheel cursor: placements are computed relative to it, and it only
    /// moves forward (to the window of the entry being popped).
    cursor: u64,
    /// `levels[l][s]`: events whose timestamp differs from the cursor in bit
    /// group `l` with slot index `s`, in insertion order. Level 0 slots hold
    /// exactly one timestamp each.
    /// Boxed so the queue stays pointer-sized-ish inline: 6×64 `Vec`
    /// headers are ~9 KB, far too large to embed in every component.
    levels: Box<SlotArray<E>>,
    /// Per-level slot-occupancy bitmaps (bit `s` set ⇔ `levels[l][s]` is
    /// non-empty); `next_time` and cascades find slots via `trailing_zeros`.
    occupied: [u64; LEVELS],
    /// The promoted current-instant batch: every queued event at exactly
    /// `ready_at`, in insertion order.
    ready: VecDeque<E>,
    ready_at: u64,
    /// Events pushed behind the cursor's level-0 window (never on the sim
    /// hot path); exact `(time, seq)` order preserved by the heap.
    past: BinaryHeap<PastEntry<E>>,
    /// Far-future events beyond the wheel span, sorted by timestamp; each
    /// vector is in insertion order.
    overflow: BTreeMap<u64, Vec<E>>,
    /// Cached earliest pending timestamp across every structure.
    next_min: Option<u64>,
    next_seq: u64,
    len: usize,
    /// Spare slot vector rotated through cascades so refiling a slot never
    /// drops (and later re-grows) its heap allocation.
    cascade_scratch: Vec<(u64, E)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            cursor: 0,
            levels: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occupied: [0; LEVELS],
            ready: VecDeque::new(),
            ready_at: 0,
            past: BinaryHeap::new(),
            overflow: BTreeMap::new(),
            next_min: None,
            next_seq: 0,
            len: 0,
            cascade_scratch: Vec::new(),
        }
    }

    /// Start of the cursor's level-0 window (low [`SLOT_BITS`] cleared).
    #[inline]
    fn window_start(&self) -> u64 {
        self.cursor & !(SLOTS as u64 - 1)
    }

    /// `(level, slot)` of timestamp `at` relative to the current cursor.
    /// Caller guarantees `window_start() <= at` and `at ^ cursor < WHEEL_SPAN`.
    #[inline]
    fn locate(&self, at: u64) -> (usize, usize) {
        let x = at ^ self.cursor;
        if x < SLOTS as u64 {
            (0, (at & (SLOTS as u64 - 1)) as usize)
        } else {
            let level = ((63 - x.leading_zeros()) / SLOT_BITS) as usize;
            (level, ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize)
        }
    }

    /// File one event into the structure that owns its timestamp. Does not
    /// touch `len` or `next_min` — callers maintain those.
    fn place(&mut self, at: u64, event: E) {
        if at < self.window_start() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.past.push(PastEntry { at, seq, event });
            return;
        }
        if at ^ self.cursor >= WHEEL_SPAN {
            self.overflow.entry(at).or_default().push(event);
            return;
        }
        let (level, slot) = self.locate(at);
        self.levels[level][slot].push((at, event));
        self.occupied[level] |= 1 << slot;
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let at = at.as_micros();
        self.place(at, event);
        self.len += 1;
        if self.next_min.is_none_or(|m| at < m) {
            self.next_min = Some(at);
        }
    }

    /// Earliest pending timestamp in the wheel levels + overflow (ignores
    /// `ready` and `past`). Lower levels always precede higher ones, and the
    /// wheel always precedes the overflow, so the scan stops at the first
    /// non-empty structure.
    fn wheel_min(&self) -> Option<u64> {
        if self.occupied[0] != 0 {
            return Some(self.window_start() | self.occupied[0].trailing_zeros() as u64);
        }
        for level in 1..LEVELS {
            if self.occupied[level] != 0 {
                let slot = self.occupied[level].trailing_zeros() as usize;
                let min = self.levels[level][slot]
                    .iter()
                    .map(|(at, _)| *at)
                    .min()
                    .expect("occupied slot is non-empty");
                return Some(min);
            }
        }
        self.overflow.keys().next().copied()
    }

    /// Recompute the cached global minimum after the previous minimum was
    /// consumed.
    fn recompute_min(&mut self) {
        let mut min = self.past.peek().map(|e| e.at);
        if !self.ready.is_empty() && min.is_none_or(|m| self.ready_at < m) {
            min = Some(self.ready_at);
        }
        if let Some(w) = self.wheel_min() {
            if min.is_none_or(|m| w < m) {
                min = Some(w);
            }
        }
        self.next_min = min;
    }

    /// Move the cursor forward to the structure holding timestamp `t` and
    /// promote `t`'s whole slot into the ready batch. `t` must be the wheel
    /// (or overflow) minimum.
    fn promote(&mut self, t: u64) {
        debug_assert!(self.ready.is_empty());
        loop {
            if self.occupied.iter().all(|&o| o == 0) {
                // The wheel is drained: jump the cursor to the overflow head
                // and pull everything within the new span back in.
                debug_assert_eq!(self.overflow.keys().next().copied(), Some(t));
                self.cursor = t;
                while let Some((&at, _)) = self.overflow.iter().next() {
                    if at ^ self.cursor >= WHEEL_SPAN {
                        break;
                    }
                    let batch = self.overflow.remove(&at).expect("peeked key exists");
                    let (level, slot) = self.locate(at);
                    self.occupied[level] |= 1 << slot;
                    let slot_vec = &mut self.levels[level][slot];
                    slot_vec.extend(batch.into_iter().map(|e| (at, e)));
                }
            }
            let (level, slot) = self.locate(t);
            debug_assert!(self.occupied[level] & (1 << slot) != 0, "minimum not indexed");
            if level == 0 {
                // One exact timestamp per level-0 slot: promote it wholesale,
                // in insertion order, as the current-instant batch.
                let slot_vec = &mut self.levels[0][slot];
                self.occupied[0] &= !(1 << slot);
                self.ready_at = t;
                self.ready.extend(slot_vec.drain(..).map(|(at, e)| {
                    debug_assert_eq!(at, t, "level-0 slot mixes timestamps");
                    e
                }));
                return;
            }
            // Cascade: advance the cursor to this slot's window and refile
            // its entries one level (or more) down. Lower levels are empty —
            // `t` is the minimum — so refiling into them preserves order.
            // Rotate the slot's vector through the scratch spare so the
            // allocation survives the refile instead of being dropped.
            let mut entries = std::mem::replace(
                &mut self.levels[level][slot],
                std::mem::take(&mut self.cascade_scratch),
            );
            self.occupied[level] &= !(1 << slot);
            let shift = SLOT_BITS * level as u32;
            let span_mask = !((1u64 << (shift + SLOT_BITS)) - 1);
            self.cursor = (self.cursor & span_mask) | ((slot as u64) << shift);
            for (at, e) in entries.drain(..) {
                debug_assert!(at >= self.cursor);
                let (l, s) = self.locate(at);
                debug_assert!(l < level, "cascade must move entries down");
                self.levels[l][s].push((at, e));
                self.occupied[l] |= 1 << s;
            }
            self.cascade_scratch = entries;
        }
    }

    /// Timestamp of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.next_min.map(SimTime::from_micros)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        let t = self.next_min?;
        if t > now.as_micros() {
            return None;
        }
        // Fast path: the promoted current-instant batch.
        if !self.ready.is_empty() && self.ready_at == t {
            let event = self.ready.pop_front().expect("checked non-empty");
            self.len -= 1;
            if self.ready.is_empty() {
                self.recompute_min();
            }
            return Some((SimTime::from_micros(t), event));
        }
        // A push behind the cursor window: the fallback heap owns the
        // minimum. (A wheel entry at the same timestamp cannot coexist —
        // the cursor only passes `t` once nothing at or before `t` remains.)
        if self.past.peek().is_some_and(|e| e.at == t) {
            let e = self.past.pop().expect("peeked entry pops");
            self.len -= 1;
            self.recompute_min();
            return Some((SimTime::from_micros(t), e.event));
        }
        self.promote(t);
        let event = self.ready.pop_front().expect("promoted batch is non-empty");
        self.len -= 1;
        if self.ready.is_empty() {
            self.recompute_min();
        }
        Some((SimTime::from_micros(t), event))
    }

    /// Drain every event due at or before `now`, in timestamp-then-insertion
    /// order, into a `Vec` (convenient when handling events needs `&mut self`
    /// of the owner).
    pub fn drain_due(&mut self, now: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        self.drain_due_into(now, &mut out);
        out
    }

    /// [`Self::drain_due`] into a caller-owned buffer: hot loops reuse one
    /// allocation across steps instead of building a fresh `Vec` per step.
    /// The buffer is **not** cleared — due events are appended — so callers
    /// that recycle it must `clear()` between steps.
    pub fn drain_due_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(pair) = self.pop_due(now) {
            out.push(pair);
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn clear(&mut self) {
        for level in self.levels.iter_mut() {
            for slot in level.iter_mut() {
                slot.clear();
            }
        }
        self.occupied = [0; LEVELS];
        self.ready.clear();
        self.past.clear();
        self.overflow.clear();
        self.cursor = 0;
        self.next_min = None;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let drained: Vec<_> = q
            .drain_due(SimTime::from_secs(10))
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_equal_timestamps() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let drained: Vec<_> = q.drain_due(t).into_iter().map(|(_, e)| e).collect();
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "later");
        assert!(q.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(5)));
        let (at, e) = q.pop_due(SimTime::from_secs(5)).unwrap();
        assert_eq!((at, e), (SimTime::from_secs(5), "later"));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_due_into_reuses_buffer() {
        let mut q = EventQueue::new();
        let mut buf: Vec<(SimTime, &str)> = Vec::with_capacity(8);
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        q.drain_due_into(SimTime::from_secs(1), &mut buf);
        assert_eq!(buf.len(), 1);
        let cap = buf.capacity();
        buf.clear();
        q.drain_due_into(SimTime::from_secs(5), &mut buf);
        assert_eq!(buf, vec![(SimTime::from_secs(2), "b")]);
        assert_eq!(buf.capacity(), cap, "no reallocation for a smaller drain");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1u8);
        q.push(SimTime::ZERO, 2u8);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.next_time().is_none());
    }

    #[test]
    fn far_future_overflow_promotes_in_order() {
        let mut q = EventQueue::new();
        // Beyond the 2^36 µs wheel span: lives in the sorted overflow level.
        let far_a = SimTime::from_secs(200_000);
        let far_b = SimTime::from_secs(300_000);
        q.push(far_b, "far-b");
        q.push(far_a, "far-a2");
        q.push(SimTime::from_secs(1), "near");
        q.push(far_a, "far-a3");
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1)));
        let drained: Vec<_> = q
            .drain_due(SimTime::FAR_FUTURE)
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(drained, vec!["near", "far-a2", "far-a3", "far-b"]);
    }

    #[test]
    fn push_behind_cursor_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(100), "late");
        // Advance the cursor far forward by popping.
        let (at, _) = q.pop_due(SimTime::from_secs(100)).unwrap();
        assert_eq!(at, SimTime::from_secs(100));
        // Now push behind the cursor: exact semantics must hold anyway.
        q.push(SimTime::from_secs(1), "early");
        q.push(SimTime::from_secs(200), "future");
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1)));
        let (at, e) = q.pop_due(SimTime::from_secs(500)).unwrap();
        assert_eq!((at, e), (SimTime::from_secs(1), "early"));
        let (at, e) = q.pop_due(SimTime::from_secs(500)).unwrap();
        assert_eq!((at, e), (SimTime::from_secs(200), "future"));
        assert!(q.is_empty());
    }

    #[test]
    fn same_timestamp_batch_survives_interleaved_pushes() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1500);
        q.push(t, 0);
        q.push(t, 1);
        // Pop one (promotes the batch), then push more at the same instant:
        // they must drain after the already-promoted entries.
        assert_eq!(q.pop_due(t).map(|(_, e)| e), Some(0));
        q.push(t, 2);
        q.push(t, 3);
        let rest: Vec<_> = q.drain_due(t).into_iter().map(|(_, e)| e).collect();
        assert_eq!(rest, vec![1, 2, 3]);
    }

    #[test]
    fn sim_like_workload_stays_ordered() {
        // Mimics the federation wire: bursts submitted at one instant with
        // per-target latencies, handlers scheduling follow-ups.
        let mut q = EventQueue::new();
        let mut seq = 0u32;
        for i in 0..64u64 {
            q.push(SimTime::from_micros(50_000 + (i % 16) * 7), seq);
            seq += 1;
        }
        let mut popped = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some((at, e)) = q.pop_due(SimTime::FAR_FUTURE) {
            assert!(at >= now, "time went backwards");
            now = at;
            popped.push((at, e));
            if popped.len() < 200 && e % 3 == 0 {
                q.push(now + crate::time::SimDuration::from_millis(3000), seq);
                seq += 1;
            }
        }
        // Equal timestamps popped in push order.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated at {}", w[0].0);
            }
        }
    }
}
