//! A stable timestamped event queue.
//!
//! `std::collections::BinaryHeap` alone is not enough for a deterministic
//! simulator: events at equal timestamps must pop in insertion order or the
//! federation's behaviour would depend on heap internals. Each entry therefore
//! carries a monotonically increasing sequence number that breaks ties.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of events keyed by [`SimTime`], FIFO within a timestamp.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.next_time()? <= now {
            let e = self.heap.pop().expect("peeked entry must pop");
            Some((e.at, e.event))
        } else {
            None
        }
    }

    /// Drain every event due at or before `now`, in timestamp-then-insertion
    /// order, into a `Vec` (convenient when handling events needs `&mut self`
    /// of the owner).
    pub fn drain_due(&mut self, now: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        self.drain_due_into(now, &mut out);
        out
    }

    /// [`Self::drain_due`] into a caller-owned buffer: hot loops reuse one
    /// allocation across steps instead of building a fresh `Vec` per step.
    /// The buffer is **not** cleared — due events are appended — so callers
    /// that recycle it must `clear()` between steps.
    pub fn drain_due_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(pair) = self.pop_due(now) {
            out.push(pair);
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let drained: Vec<_> = q
            .drain_due(SimTime::from_secs(10))
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_within_equal_timestamps() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let drained: Vec<_> = q.drain_due(t).into_iter().map(|(_, e)| e).collect();
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "later");
        assert!(q.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(5)));
        let (at, e) = q.pop_due(SimTime::from_secs(5)).unwrap();
        assert_eq!((at, e), (SimTime::from_secs(5), "later"));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_due_into_reuses_buffer() {
        let mut q = EventQueue::new();
        let mut buf: Vec<(SimTime, &str)> = Vec::with_capacity(8);
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        q.drain_due_into(SimTime::from_secs(1), &mut buf);
        assert_eq!(buf.len(), 1);
        let cap = buf.capacity();
        buf.clear();
        q.drain_due_into(SimTime::from_secs(5), &mut buf);
        assert_eq!(buf, vec![(SimTime::from_secs(2), "b")]);
        assert_eq!(buf.capacity(), cap, "no reallocation for a smaller drain");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1u8);
        q.push(SimTime::ZERO, 2u8);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.next_time().is_none());
    }
}
