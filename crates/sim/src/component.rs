//! The cooperative component protocol.
//!
//! The federation is a tree of components (schedulers, endpoints, CI engines)
//! that each keep an internal [`crate::EventQueue`]. A driver repeatedly asks
//! the tree for the earliest pending event and advances every component to
//! that instant. Components never see time move backwards, and components
//! with no pending work are never woken spuriously.

use crate::time::SimTime;

/// A simulation component that can be advanced through virtual time.
///
/// Implementations must uphold two contracts:
///
/// 1. `advance_to(t)` processes *all* internal events with timestamp `<= t`
///    and leaves the component's notion of "now" at `t`.
/// 2. `next_event()` returns the timestamp of the earliest internal event
///    still pending, or `None` when the component is quiescent. It must not
///    return a time earlier than the last `advance_to` instant.
pub trait Advance {
    /// Earliest pending internal event, if any.
    fn next_event(&self) -> Option<SimTime>;

    /// Process all events due at or before `t`.
    fn advance_to(&mut self, t: SimTime);

    /// Advance to the next pending event instant at or before `deadline` and
    /// process everything due there; returns that instant, or `None` if the
    /// component is quiescent or its next event lies beyond the deadline.
    ///
    /// Semantically this is exactly `next_event()` + `advance_to(t)`, and the
    /// provided implementation is that pair. Components with an internal
    /// next-event index should override it: a `&mut` entry point lets them
    /// refresh the index once and reuse it for both the probe and the
    /// advance, instead of answering the read-only probe with an exhaustive
    /// scan (see `CloudService` in `hpcci-faas`).
    fn step_next(&mut self, deadline: SimTime) -> Option<SimTime> {
        let next = self.next_event()?;
        if next > deadline {
            return None;
        }
        self.advance_to(next);
        Some(next)
    }
}

/// Advance a set of components until every one of them is quiescent, or until
/// `deadline` is reached, whichever comes first. Returns the virtual time at
/// which the drive stopped.
///
/// The loop advances *all* components to each step time, because processing
/// an event in one component routinely enqueues work in another (a scheduler
/// finishing a job wakes the FaaS endpoint polling it).
pub fn drive_until(components: &mut [&mut dyn Advance], deadline: SimTime) -> SimTime {
    if let [component] = components {
        // Single-component fast path: `step_next` lets the component refresh
        // its own next-event index once per step instead of answering a
        // read-only `next_event` probe with an exhaustive scan.
        let mut now = SimTime::ZERO;
        while let Some(step) = component.step_next(deadline) {
            debug_assert!(step >= now, "time went backwards: {step} < {now}");
            now = step;
        }
        if component.next_event().is_some() {
            // Pending work beyond the deadline: land exactly on it.
            component.advance_to(deadline);
            return deadline;
        }
        return now;
    }
    let mut now = SimTime::ZERO;
    loop {
        let next = components.iter().filter_map(|c| c.next_event()).min();
        let Some(step) = next else {
            return now;
        };
        if step > deadline {
            for c in components.iter_mut() {
                c.advance_to(deadline);
            }
            return deadline;
        }
        debug_assert!(step >= now, "time went backwards: {step} < {now}");
        now = step;
        for c in components.iter_mut() {
            c.advance_to(now);
        }
    }
}

/// [`drive_until`] with no deadline.
pub fn drive(components: &mut [&mut dyn Advance]) -> SimTime {
    drive_until(components, SimTime::FAR_FUTURE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::time::SimDuration;

    /// Test component: every event at t schedules a follow-up at t+period,
    /// up to a budget.
    struct Ticker {
        queue: EventQueue<u32>,
        period: SimDuration,
        remaining: u32,
        fired: Vec<SimTime>,
        now: SimTime,
    }

    impl Ticker {
        fn new(start: SimTime, period: SimDuration, count: u32) -> Self {
            let mut queue = EventQueue::new();
            if count > 0 {
                queue.push(start, 0);
            }
            Ticker {
                queue,
                period,
                remaining: count,
                fired: Vec::new(),
                now: SimTime::ZERO,
            }
        }
    }

    impl Advance for Ticker {
        fn next_event(&self) -> Option<SimTime> {
            self.queue.next_time()
        }
        fn advance_to(&mut self, t: SimTime) {
            while let Some((at, _)) = self.queue.pop_due(t) {
                self.fired.push(at);
                self.remaining -= 1;
                if self.remaining > 0 {
                    self.queue.push(at + self.period, 0);
                }
            }
            self.now = t;
        }
    }

    #[test]
    fn drives_to_quiescence() {
        let mut a = Ticker::new(SimTime::from_secs(1), SimDuration::from_secs(2), 3);
        let mut b = Ticker::new(SimTime::from_secs(2), SimDuration::from_secs(3), 2);
        let end = drive(&mut [&mut a, &mut b]);
        assert_eq!(a.fired.len(), 3);
        assert_eq!(b.fired.len(), 2);
        // Last events: a at 1,3,5; b at 2,5 -> quiescent at 5.
        assert_eq!(end, SimTime::from_secs(5));
        assert_eq!(
            a.fired,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(3),
                SimTime::from_secs(5)
            ]
        );
    }

    #[test]
    fn respects_deadline() {
        let mut a = Ticker::new(SimTime::from_secs(1), SimDuration::from_secs(1), 100);
        let end = drive_until(&mut [&mut a], SimTime::from_secs(4));
        assert_eq!(end, SimTime::from_secs(4));
        assert_eq!(a.fired.len(), 4); // t = 1, 2, 3, 4
        assert!(a.next_event().unwrap() > SimTime::from_secs(4));
    }

    #[test]
    fn empty_component_set_is_quiescent_at_zero() {
        let end = drive(&mut []);
        assert_eq!(end, SimTime::ZERO);
    }
}
