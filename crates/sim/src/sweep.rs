//! Parallel scenario sweeps.
//!
//! The federation kernel is intentionally single-threaded: determinism comes
//! from one event loop consuming one seeded RNG stream. Scenario *sweeps* —
//! the same experiment replayed over a list of seeds or configurations — are
//! embarrassingly parallel at the federation boundary, because each
//! federation owns all of its state. [`sweep`] runs a fleet of such
//! self-contained jobs over a fixed worker pool:
//!
//! * each job runs on exactly one worker thread, so every federation inside
//!   it stays sequential and bit-reproducible from its seed;
//! * results are written back by submission index, so the output order (and
//!   anything derived from it, e.g. a digest over all runs) is independent
//!   of worker scheduling — a parallel sweep is bit-identical to a serial
//!   one.

use crossbeam::{channel, thread};

/// A sensible worker count for sweeps: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimum estimated simulation events per job for a parallel sweep to pay
/// for itself. Below this, worker spawn + channel traffic costs more than
/// the work it distributes (small scenarios showed
/// `fig4_parallel_secs > fig4_serial_secs`), so [`sweep_estimated`] runs
/// the reference serial path instead.
pub const SWEEP_MIN_EVENTS_PER_JOB: u64 = 2_048;

/// [`sweep`] with a min-work gate: callers pass an estimate of the
/// simulation events one job will dispatch (any rough per-scenario figure —
/// tasks x steps, or a measured count from a previous run), and jobs whose
/// estimate falls below [`SWEEP_MIN_EVENTS_PER_JOB`] run inline regardless
/// of `threads`. Results are identical either way; only wall-clock differs.
pub fn sweep_estimated<F, R>(jobs: Vec<F>, threads: usize, est_events_per_job: u64) -> Vec<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    sweep_estimated_with(jobs, threads, est_events_per_job, SWEEP_MIN_EVENTS_PER_JOB).results
}

/// A sweep's results plus whether the min-work gate forced the serial path —
/// so callers can log the degradation instead of silently losing their
/// parallelism.
pub struct SweepOutcome<R> {
    /// Job results, in submission order.
    pub results: Vec<R>,
    /// The per-job estimate fell below the gate and a requested parallel
    /// sweep ran serially instead.
    pub gated_serial: bool,
}

/// [`sweep_estimated`] with the min-work gate as a parameter
/// ([`SWEEP_MIN_EVENTS_PER_JOB`] is the default): heavyweight callers such
/// as the peak-day bench can lower (or zero) the gate when they know the
/// per-job cost model doesn't apply. Returns a [`SweepOutcome`] so the
/// caller can log when the gate forces serial execution.
pub fn sweep_estimated_with<F, R>(
    jobs: Vec<F>,
    threads: usize,
    est_events_per_job: u64,
    min_events_per_job: u64,
) -> SweepOutcome<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let gated_serial = est_events_per_job < min_events_per_job && threads > 1 && jobs.len() > 1;
    let effective = if est_events_per_job < min_events_per_job {
        1
    } else {
        threads
    };
    SweepOutcome {
        results: sweep(jobs, effective),
        gated_serial,
    }
}

/// Run every job and return their results in submission order.
///
/// With `threads <= 1` (or fewer than two jobs) the jobs run inline on the
/// caller's thread — the reference serial sweep. Otherwise `threads` workers
/// pull jobs from a shared queue; a job panicking propagates the panic after
/// the remaining workers are joined.
pub fn sweep<F, R>(jobs: Vec<F>, threads: usize) -> Vec<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let n = jobs.len();
    let workers = threads.min(n);
    let (job_tx, job_rx) = channel::unbounded();
    let (result_tx, result_rx) = channel::unbounded();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|scope| {
        for indexed in jobs.into_iter().enumerate() {
            if job_tx.send(indexed).is_err() {
                unreachable!("job receiver outlives the send loop");
            }
        }
        drop(job_tx);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            scope.spawn(move |_| {
                while let Ok((idx, job)) = job_rx.recv() {
                    let out: R = job();
                    if result_tx.send((idx, out)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx);
        for _ in 0..n {
            let (idx, out) = result_rx
                .recv()
                .expect("a sweep worker died before finishing its jobs");
            results[idx] = Some(out);
        }
    })
    .expect("sweep scope");
    results
        .into_iter()
        .map(|r| r.expect("every index produced exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(seed: u64) -> u64 {
        // A seed-dependent pure function standing in for a federation run.
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<_> = (0..32u64).map(|s| move || (s, busy(s))).collect();
        let out = sweep(jobs, 4);
        let seeds: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seeds, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sweep_matches_serial_bit_for_bit() {
        let serial = sweep((0..16u64).map(|s| move || busy(s)).collect::<Vec<_>>(), 1);
        let parallel = sweep((0..16u64).map(|s| move || busy(s)).collect::<Vec<_>>(), 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_job_and_zero_threads_run_inline() {
        assert_eq!(sweep(vec![|| 7u8], 0), vec![7]);
        assert_eq!(sweep(Vec::<fn() -> u8>::new(), 4), Vec::<u8>::new());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = sweep((0..3u64).map(|s| move || s + 1).collect::<Vec<_>>(), 64);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn tiny_jobs_sweep_serially_and_identically() {
        let small = sweep_estimated(
            (0..8u64).map(|s| move || busy(s)).collect::<Vec<_>>(),
            8,
            SWEEP_MIN_EVENTS_PER_JOB - 1,
        );
        let big = sweep_estimated(
            (0..8u64).map(|s| move || busy(s)).collect::<Vec<_>>(),
            8,
            SWEEP_MIN_EVENTS_PER_JOB,
        );
        let reference = sweep((0..8u64).map(|s| move || busy(s)).collect::<Vec<_>>(), 1);
        assert_eq!(small, reference);
        assert_eq!(big, reference);
    }

    #[test]
    fn tunable_gate_reports_forced_serial_and_respects_overrides() {
        let jobs = || (0..8u64).map(|s| move || busy(s)).collect::<Vec<_>>();
        let reference = sweep(jobs(), 1);
        // Below the gate: serial, and the outcome says so.
        let gated = sweep_estimated_with(jobs(), 8, 100, 2_048);
        assert!(gated.gated_serial);
        assert_eq!(gated.results, reference);
        // Caller lowers the gate: the same estimate now sweeps in parallel.
        let open = sweep_estimated_with(jobs(), 8, 100, 10);
        assert!(!open.gated_serial);
        assert_eq!(open.results, reference);
        // Serial requests and single jobs never count as gated.
        assert!(!sweep_estimated_with(jobs(), 1, 100, 2_048).gated_serial);
        assert!(!sweep_estimated_with(vec![|| 1u8], 8, 100, 2_048).gated_serial);
    }
}
