//! Lookahead derivation for conservative parallel simulation.
//!
//! Conservative synchronized parallel DES is only correct when every domain
//! can prove that no event from outside will arrive earlier than the point
//! it is about to advance to. The proof comes from *lookahead*: a lower
//! bound on the delay any cross-domain interaction must incur. In the
//! federation model the natural lookahead sources are
//!
//! * **cross-site network latency** — every cloud→endpoint delivery and
//!   every endpoint→cloud return crosses the WAN, paying at least the
//!   site's one-way latency;
//! * **the scheduler wait floor** — work routed through a batch scheduler
//!   waits at least the scheduler's minimum dispatch delay;
//! * **pilot warm-up** — a pilot-job endpoint cannot run anything before
//!   its first block turns active.
//!
//! The federation's topology makes the bound far stronger than generic
//! conservative DES: within one coordinator window `[now, deadline]` every
//! inbound (cloud→domain) event is *already committed* to the wire before
//! the window opens — submissions happen outside the drive — and outbound
//! (domain→cloud) returns mutate only coordinator state, never another
//! domain. [`Window::horizon`] encodes exactly that argument: with positive
//! lookahead on every inbound link the safe horizon is the whole window;
//! with any zero-lookahead link (a shared batch scheduler couples its
//! tenants at the same instant) the horizon collapses to `now` and the
//! caller must fall back to a single domain.

use crate::time::{SimDuration, SimTime};

/// Per-domain lookahead summary: the minimum delay any event crossing into
/// the domain from outside must incur.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookahead {
    /// Minimum inbound link delay across every link into the domain.
    pub min_inbound: SimDuration,
    /// True when a link into the domain has no delay floor at all — e.g.
    /// a batch scheduler shared with components outside the domain, whose
    /// job-end events re-time the domain at the very instant they happen.
    pub zero_coupled: bool,
}

impl Lookahead {
    /// Lookahead of a domain whose only inbound links are pre-committed
    /// wire messages with a one-way latency of at least `min_inbound`.
    pub fn wire(min_inbound: SimDuration) -> Self {
        Lookahead {
            min_inbound,
            zero_coupled: false,
        }
    }

    /// Lookahead of a domain coupled to the outside at zero delay.
    pub fn zero() -> Self {
        Lookahead {
            min_inbound: SimDuration::ZERO,
            zero_coupled: true,
        }
    }

    /// Fold two lookaheads: the combined domain is only as safe as its
    /// weakest link.
    pub fn fold(self, other: Lookahead) -> Lookahead {
        Lookahead {
            min_inbound: self.min_inbound.min(other.min_inbound),
            zero_coupled: self.zero_coupled || other.zero_coupled,
        }
    }
}

/// One coordinator window over which domains may advance independently.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    pub now: SimTime,
    pub deadline: SimTime,
}

impl Window {
    pub fn new(now: SimTime, deadline: SimTime) -> Self {
        Window { now, deadline }
    }

    /// The instant up to which every domain may advance without hearing
    /// from any other domain.
    ///
    /// * All inbound events are committed before the window opens and every
    ///   future inbound event pays `lookahead.min_inbound`, so a domain with
    ///   positive lookahead is safe through the entire window.
    /// * A zero-coupled domain has no such guarantee at any instant past
    ///   `now`: the horizon degenerates and the caller must serialize.
    pub fn horizon(&self, lookahead: Lookahead) -> SimTime {
        if lookahead.zero_coupled {
            self.now
        } else {
            self.deadline
        }
    }

    /// Does the window admit any parallel progress at all under `lookahead`?
    pub fn admits_parallelism(&self, lookahead: Lookahead) -> bool {
        self.horizon(lookahead) > self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_lookahead_extends_horizon_to_the_window_end() {
        let w = Window::new(SimTime::from_secs(10), SimTime::from_secs(500));
        let la = Lookahead::wire(SimDuration::from_millis(12));
        assert_eq!(w.horizon(la), SimTime::from_secs(500));
        assert!(w.admits_parallelism(la));
    }

    #[test]
    fn zero_lookahead_collapses_to_now() {
        let w = Window::new(SimTime::from_secs(10), SimTime::from_secs(500));
        let la = Lookahead::zero();
        assert_eq!(w.horizon(la), SimTime::from_secs(10));
        assert!(!w.admits_parallelism(la));
    }

    #[test]
    fn fold_keeps_the_weakest_link() {
        let a = Lookahead::wire(SimDuration::from_millis(40));
        let b = Lookahead::wire(SimDuration::from_millis(3));
        let folded = a.fold(b);
        assert_eq!(folded.min_inbound, SimDuration::from_millis(3));
        assert!(!folded.zero_coupled);
        let z = folded.fold(Lookahead::zero());
        assert!(z.zero_coupled);
    }

    #[test]
    fn empty_window_admits_nothing() {
        let w = Window::new(SimTime::from_secs(7), SimTime::from_secs(7));
        assert!(!w.admits_parallelism(Lookahead::wire(SimDuration::from_secs(1))));
    }
}
