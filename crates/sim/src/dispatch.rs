//! Indexed event dispatch.
//!
//! A container component (the FaaS cloud over its endpoints, a MEP over its
//! forked UEP pairs) implements [`crate::Advance`] by aggregating the next
//! event over its children. Done naïvely that is an O(children) deep rescan
//! on **every** simulation step — and the federation's hot loop pays it
//! twice, once in `next_event` and again inside `advance_to`.
//!
//! [`NextEventCache`] replaces the rescan with a per-child cached next-event
//! time plus a dirty bit. The owner marks a child dirty whenever it touches
//! it (advances it, enqueues into it, hands out `&mut`); a refresh pass
//! recomputes only the dirty children. Between touches, `min()`/`due()` are
//! shallow scans over a flat `Vec<Option<SimTime>>` — no child is asked
//! anything, no heap walked, no lock taken.
//!
//! Children whose next event can shift *without the owner touching them* —
//! e.g. pilot-job endpoints sharing one batch scheduler, where another
//! tenant's job end re-times everyone — cannot be cached soundly by dirty
//! bits alone. Mark those slots **volatile**: they are re-probed on every
//! refresh and excluded from [`NextEventCache::min_stable`], so owners with
//! only `&self` can combine the stable minimum with fresh probes of the
//! (few) volatile slots.
//!
//! The cache is purely an index: it never reorders events and never makes a
//! child observable earlier or later than the rescan would. Replays from a
//! seed stay bit-identical (the golden-trace suite pins this).

use crate::time::SimTime;

/// Dispatch-cache effectiveness counters, kept as plain fields so counting
/// costs a few integer adds inside work [`NextEventCache::refresh`] is
/// already doing. Harvested (not sampled) by the observability layer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// `refresh` calls that had work to do (some slot dirty or volatile).
    pub refreshes: u64,
    /// `refresh` calls that returned immediately: nothing dirty, nothing
    /// volatile — the cache absorbed the whole rescan.
    pub hot_hits: u64,
    /// Children actually re-probed across all refreshes.
    pub probes: u64,
    /// The subset of probes forced by volatile slots rather than dirty bits.
    pub volatile_probes: u64,
}

impl CacheStats {
    /// Merge another cache's counters (containers nesting caches).
    pub fn absorb(&mut self, other: CacheStats) {
        self.refreshes += other.refreshes;
        self.hot_hits += other.hot_hits;
        self.probes += other.probes;
        self.volatile_probes += other.volatile_probes;
    }
}

/// Per-child cached next-event times with dirty-bit invalidation.
#[derive(Debug, Default, Clone)]
pub struct NextEventCache {
    times: Vec<Option<SimTime>>,
    dirty: Vec<bool>,
    volatile: Vec<bool>,
    volatile_slots: Vec<usize>,
    dirty_count: usize,
    min: Option<SimTime>,
    min_stable: Option<SimTime>,
    stats: CacheStats,
}

impl NextEventCache {
    pub fn new() -> Self {
        NextEventCache::default()
    }

    /// Add a slot for a new child; it starts dirty. Returns the slot index.
    pub fn register(&mut self) -> usize {
        self.times.push(None);
        self.dirty.push(true);
        self.volatile.push(false);
        self.dirty_count += 1;
        self.times.len() - 1
    }

    /// Flag a slot whose child's next event can change behind the owner's
    /// back (shared mutable state with siblings). Volatile slots are
    /// re-probed on every [`Self::refresh`].
    pub fn set_volatile(&mut self, slot: usize, volatile: bool) {
        if self.volatile[slot] == volatile {
            return;
        }
        self.volatile[slot] = volatile;
        if volatile {
            // Insert at the sorted position: the list stays ascending
            // without re-sorting the whole vector on registration churn.
            let pos = self
                .volatile_slots
                .binary_search(&slot)
                .expect_err("slot was not volatile");
            self.volatile_slots.insert(pos, slot);
        } else {
            if let Ok(pos) = self.volatile_slots.binary_search(&slot) {
                self.volatile_slots.remove(pos);
            }
            self.mark_dirty(slot);
        }
    }

    /// Slots flagged volatile, ascending. Owners with only `&self` probe
    /// these fresh and combine with [`Self::min_stable`].
    pub fn volatile_slots(&self) -> &[usize] {
        &self.volatile_slots
    }

    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Invalidate one child's cached time (owner touched it).
    pub fn mark_dirty(&mut self, slot: usize) {
        if !self.dirty[slot] {
            self.dirty[slot] = true;
            self.dirty_count += 1;
        }
    }

    /// Invalidate every slot (bulk state change of unknown extent).
    pub fn mark_all_dirty(&mut self) {
        for d in &mut self.dirty {
            *d = true;
        }
        self.dirty_count = self.times.len();
    }

    pub fn any_dirty(&self) -> bool {
        self.dirty_count > 0
    }

    /// Recompute every dirty or volatile slot by asking `probe(slot)` for
    /// the child's current next-event time; clean stable slots are not
    /// consulted.
    pub fn refresh(&mut self, mut probe: impl FnMut(usize) -> Option<SimTime>) {
        if self.dirty_count == 0 && self.volatile_slots.is_empty() {
            self.stats.hot_hits += 1;
            return;
        }
        self.stats.refreshes += 1;
        for (slot, dirty) in self.dirty.iter_mut().enumerate() {
            if *dirty || self.volatile[slot] {
                self.stats.probes += 1;
                self.stats.volatile_probes += (!*dirty) as u64;
                self.times[slot] = probe(slot);
                *dirty = false;
            }
        }
        self.dirty_count = 0;
        // Fold the minima once here so min()/min_stable() are O(1) in the
        // hot loop instead of rescanning the slot vector per call.
        let mut min = None;
        let mut min_stable = None;
        for (slot, t) in self.times.iter().enumerate() {
            let Some(t) = *t else { continue };
            if min.is_none_or(|m| t < m) {
                min = Some(t);
            }
            if !self.volatile[slot] && min_stable.is_none_or(|m| t < m) {
                min_stable = Some(t);
            }
        }
        self.min = min;
        self.min_stable = min_stable;
    }

    /// Cached time for one slot (meaningful only when refreshed).
    pub fn get(&self, slot: usize) -> Option<SimTime> {
        debug_assert!(!self.dirty[slot], "reading a dirty slot");
        self.times[slot]
    }

    /// Earliest cached next event across all children. Callers must refresh
    /// first (which also re-probes volatile slots); a debug assert enforces
    /// it.
    pub fn min(&self) -> Option<SimTime> {
        debug_assert!(self.dirty_count == 0, "min() over dirty cache");
        self.min
    }

    /// Earliest cached next event across **stable** (non-volatile) children
    /// only. Safe for `&self` owners between refreshes: stable slots cannot
    /// have moved since the last refresh, while volatile slots must be
    /// probed fresh (see [`Self::volatile_slots`]).
    pub fn min_stable(&self) -> Option<SimTime> {
        debug_assert!(self.dirty_count == 0, "min_stable() over dirty cache");
        self.min_stable
    }

    /// Effectiveness counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Slots whose cached next event is due at or before `t`, ascending.
    pub fn due(&self, t: SimTime) -> impl Iterator<Item = usize> + '_ {
        debug_assert!(self.dirty_count == 0, "due() over dirty cache");
        self.times
            .iter()
            .enumerate()
            .filter(move |(_, cached)| cached.is_some_and(|at| at <= t))
            .map(|(slot, _)| slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_refreshes_dirty_slots_only() {
        let mut cache = NextEventCache::new();
        let a = cache.register();
        let b = cache.register();
        assert!(cache.any_dirty());
        let mut probes = Vec::new();
        cache.refresh(|slot| {
            probes.push(slot);
            Some(SimTime::from_secs(slot as u64 + 1))
        });
        assert_eq!(probes, vec![a, b]);
        assert_eq!(cache.min(), Some(SimTime::from_secs(1)));

        // Only the dirty slot is re-probed.
        cache.mark_dirty(b);
        probes.clear();
        cache.refresh(|slot| {
            probes.push(slot);
            Some(SimTime::from_secs(10))
        });
        assert_eq!(probes, vec![b]);
        assert_eq!(cache.get(a), Some(SimTime::from_secs(1)));
        assert_eq!(cache.get(b), Some(SimTime::from_secs(10)));
    }

    #[test]
    fn min_and_due_skip_quiescent_children() {
        let mut cache = NextEventCache::new();
        for _ in 0..4 {
            cache.register();
        }
        cache.refresh(|slot| match slot {
            0 => None,
            1 => Some(SimTime::from_secs(5)),
            2 => Some(SimTime::from_secs(2)),
            _ => Some(SimTime::from_secs(9)),
        });
        assert_eq!(cache.min(), Some(SimTime::from_secs(2)));
        let due: Vec<usize> = cache.due(SimTime::from_secs(5)).collect();
        assert_eq!(due, vec![1, 2]);
        assert_eq!(cache.due(SimTime::from_secs(1)).count(), 0);
    }

    #[test]
    fn all_quiescent_is_none() {
        let mut cache = NextEventCache::new();
        cache.register();
        cache.register();
        cache.refresh(|_| None);
        assert_eq!(cache.min(), None);
        assert_eq!(cache.due(SimTime::FAR_FUTURE).count(), 0);
    }

    #[test]
    fn mark_all_dirty_invalidates_every_slot() {
        let mut cache = NextEventCache::new();
        cache.register();
        cache.register();
        cache.refresh(|_| Some(SimTime::ZERO));
        cache.mark_all_dirty();
        let mut probed = 0;
        cache.refresh(|_| {
            probed += 1;
            None
        });
        assert_eq!(probed, 2);
        assert_eq!(cache.min(), None);
    }

    #[test]
    fn volatile_slots_reprobe_every_refresh() {
        let mut cache = NextEventCache::new();
        let stable = cache.register();
        let shared = cache.register();
        cache.set_volatile(shared, true);
        assert_eq!(cache.volatile_slots(), &[shared]);

        let mut t = 5u64;
        cache.refresh(|slot| match slot {
            s if s == stable => Some(SimTime::from_secs(3)),
            _ => Some(SimTime::from_secs(t)),
        });
        assert_eq!(cache.min(), Some(SimTime::from_secs(3)));
        assert_eq!(cache.min_stable(), Some(SimTime::from_secs(3)));

        // The shared child's time moved without any mark_dirty; a refresh
        // still picks it up, and min_stable never trusted the stale value.
        t = 1;
        let mut probed = Vec::new();
        cache.refresh(|slot| {
            probed.push(slot);
            Some(SimTime::from_secs(t))
        });
        assert_eq!(probed, vec![shared], "only the volatile slot re-probed");
        assert_eq!(cache.min(), Some(SimTime::from_secs(1)));
        assert_eq!(cache.min_stable(), Some(SimTime::from_secs(3)));

        // Clearing volatility folds the slot back into dirty tracking.
        cache.set_volatile(shared, false);
        assert!(cache.any_dirty());
        cache.refresh(|_| Some(SimTime::from_secs(8)));
        assert_eq!(cache.min_stable(), Some(SimTime::from_secs(3)));
        assert_eq!(cache.min(), Some(SimTime::from_secs(3)));
        assert!(cache.volatile_slots().is_empty());
    }

    #[test]
    fn stats_count_refreshes_probes_and_hot_hits() {
        let mut cache = NextEventCache::new();
        let a = cache.register();
        let b = cache.register();
        cache.refresh(|_| Some(SimTime::from_secs(1))); // 2 dirty probes
        cache.refresh(|_| None); // nothing to do: hot hit
        cache.set_volatile(b, true);
        cache.refresh(|_| Some(SimTime::from_secs(2))); // b re-probed (volatile only)
        cache.mark_dirty(a);
        cache.refresh(|_| Some(SimTime::from_secs(3))); // a dirty + b volatile
        let stats = cache.stats();
        assert_eq!(stats.hot_hits, 1);
        assert_eq!(stats.refreshes, 3);
        assert_eq!(stats.probes, 5);
        assert_eq!(stats.volatile_probes, 2);
        let mut total = CacheStats::default();
        total.absorb(stats);
        total.absorb(stats);
        assert_eq!(total.probes, 10);
    }

    #[test]
    fn double_mark_dirty_is_idempotent() {
        let mut cache = NextEventCache::new();
        let a = cache.register();
        cache.refresh(|_| None);
        cache.mark_dirty(a);
        cache.mark_dirty(a);
        assert!(cache.any_dirty());
        cache.refresh(|_| Some(SimTime::ZERO));
        assert_eq!(cache.min(), Some(SimTime::ZERO));
    }
}
