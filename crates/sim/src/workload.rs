//! Multi-tenant workload engine: seeded arrival processes and a tenant model.
//!
//! This module is the typed replacement for the ad-hoc integer traffic knobs
//! that used to live in the scenario runner (`pushes`/`gap_secs`/
//! `burstiness_pct` interpreted by a private gap sampler). It provides:
//!
//! * [`ArrivalProcess`] — the open-loop arrival laws the federation can be
//!   driven by: the historical bursty process (kept bit-compatible with the
//!   old sampler), Poisson, a two-state Markov-modulated Poisson process,
//!   a diurnal (time-of-day modulated) process, and trace replay;
//! * [`ArrivalGen`] — the stateful, deterministic gap stream: one seeded
//!   [`DetRng`] in, one `u64` microsecond gap out per arrival;
//! * [`TenantMix`] / [`TenantModel`] — tens of thousands of users and repos
//!   with Zipf-distributed activity, held in ID-dense `Vec`-backed sharded
//!   storage (the `Vec<Task>` template from the faas hot path);
//! * [`Workload`] — the builder tying a process, an arrival budget, and a
//!   tenant mix together; this is what `FederationBuilder::workload(..)`
//!   accepts and what the scenario DSL's `[traffic]` table lowers onto.
//!
//! ## RNG fork naming
//!
//! Arrival gaps are drawn from `DetRng::seed_from_u64(seed).fork("scen-traffic")`
//! — the exact fork the historical scenario driver used — so every existing
//! scenario digest is unchanged by the migration. Tenant sampling uses the
//! fresh fork label `"workload-tenants"`, so adding tenants to a run never
//! perturbs its arrival timeline.

use crate::rng::DetRng;
use crate::time::SimTime;

/// Fork label of the arrival-gap RNG stream. Preserved verbatim from the
/// historical scenario traffic driver so legacy scenario digests are
/// byte-identical under the typed engine.
pub const ARRIVAL_FORK_LABEL: &str = "scen-traffic";

/// Fork label of the tenant-sampling RNG stream (disjoint from arrivals).
pub const TENANT_FORK_LABEL: &str = "workload-tenants";

/// Hourly arrival-rate weights of the diurnal process, in percent of the
/// mean rate (index = virtual hour of day). Shaped like a GitHub traffic
/// day: a pre-dawn trough, a steep morning ramp, a midday peak, and a long
/// evening decay. Integer weights keep the modulation bit-reproducible.
pub const DIURNAL_WEIGHTS: [u64; 24] = [
    55, 45, 40, 38, 40, 50, 70, 95, 120, 140, 155, 165, 180, 175, 165, 155, 145, 135, 125, 115,
    100, 85, 70, 60,
];

/// An open-loop arrival law: each variant defines the distribution of the
/// microsecond gap between consecutive arrivals. Sampling is performed by
/// [`ArrivalGen`]; all variants are deterministic functions of the seeded
/// RNG stream they are driven with.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// The historical scenario process: nominal gap with up to 25% uniform
    /// jitter, compressed to an eighth of the nominal gap in a burst. The
    /// sampler consumes the RNG stream exactly as the legacy `next_gap_us`
    /// did, so old documents produce byte-identical timelines.
    Bursty {
        /// Nominal gap between arrivals, in seconds.
        gap_secs: u64,
        /// Probability (percent) that an arrival lands inside a burst.
        burstiness_pct: u32,
    },
    /// Memoryless arrivals: gaps are exponential with the given mean.
    Poisson {
        /// Mean gap between arrivals, in microseconds.
        mean_gap_us: u64,
    },
    /// Two-state Markov-modulated Poisson process: gaps are exponential
    /// with the slow or fast mean, and the state toggles with probability
    /// `switch_pct` percent at every arrival.
    Mmpp {
        /// Mean gap in the quiet state, in microseconds.
        slow_gap_us: u64,
        /// Mean gap in the bursty state, in microseconds.
        fast_gap_us: u64,
        /// Per-arrival state-toggle probability, in percent.
        switch_pct: u32,
    },
    /// Time-of-day modulated Poisson arrivals: the instantaneous mean gap is
    /// the nominal mean scaled by the [`DIURNAL_WEIGHTS`] entry for the
    /// current virtual hour, with `peak_pct` controlling the amplitude of
    /// the modulation (0 = flat Poisson, 100 = the full weight table).
    Diurnal {
        /// Nominal (all-day) mean gap between arrivals, in microseconds.
        mean_gap_us: u64,
        /// Length of the modulated day, in seconds (86 400 for a real day).
        day_secs: u64,
        /// Modulation amplitude, in percent of the weight table's swing.
        peak_pct: u32,
    },
    /// Replay a recorded gap sequence, cycling when it runs out. Consumes
    /// no randomness at all.
    Trace {
        /// The gap sequence, in microseconds. Must be non-empty.
        gaps_us: Vec<u64>,
    },
}

impl ArrivalProcess {
    /// A short stable name for labels and trace details.
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Mmpp { .. } => "mmpp",
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::Trace { .. } => "trace",
        }
    }
}

/// The deterministic arrival-gap stream: an [`ArrivalProcess`] plus the
/// seeded RNG and whatever per-process state sampling needs (MMPP mode,
/// trace cursor, diurnal phase). Two generators built from equal inputs
/// yield byte-identical gap sequences.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    rng: DetRng,
    process: ArrivalProcess,
    /// Virtual microseconds accumulated so far (diurnal phase).
    elapsed_us: u64,
    /// MMPP: currently in the fast state?
    fast: bool,
    /// Trace replay cursor.
    cursor: usize,
}

impl ArrivalGen {
    pub fn new(rng: DetRng, process: ArrivalProcess) -> Self {
        ArrivalGen {
            rng,
            process,
            elapsed_us: 0,
            fast: false,
            cursor: 0,
        }
    }

    /// The process this generator samples from.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// The historical bursty gap sampler: an eighth of the nominal gap in a
    /// burst, the nominal gap plus up to 25% uniform jitter otherwise.
    /// Byte-compatible with the pre-engine scenario-layer sampler (same draw
    /// order, same integer arithmetic).
    fn bursty_gap_us(rng: &mut DetRng, gap_secs: u64, burstiness_pct: u32) -> u64 {
        let base = gap_secs.saturating_mul(1_000_000).max(8);
        if rng.chance(burstiness_pct as f64 / 100.0) {
            base / 8
        } else {
            base + rng.range_u64(0, base / 4 + 1)
        }
    }

    /// Draw the gap before the next arrival, in microseconds. Every arm
    /// returns at least 1 µs except `Bursty` (whose legacy arithmetic — with
    /// its ≥ 1 µs floor of `base/8` — is preserved bit-for-bit) and `Trace`
    /// (which replays recorded gaps verbatim, zeros included).
    pub fn next_gap_us(&mut self) -> u64 {
        let gap = match &self.process {
            ArrivalProcess::Bursty {
                gap_secs,
                burstiness_pct,
            } => Self::bursty_gap_us(&mut self.rng, *gap_secs, *burstiness_pct),
            ArrivalProcess::Poisson { mean_gap_us } => {
                (self.rng.exponential((*mean_gap_us).max(1) as f64) as u64).max(1)
            }
            ArrivalProcess::Mmpp {
                slow_gap_us,
                fast_gap_us,
                switch_pct,
            } => {
                if self.rng.chance(*switch_pct as f64 / 100.0) {
                    self.fast = !self.fast;
                }
                let mean = if self.fast { *fast_gap_us } else { *slow_gap_us };
                (self.rng.exponential(mean.max(1) as f64) as u64).max(1)
            }
            ArrivalProcess::Diurnal {
                mean_gap_us,
                day_secs,
                peak_pct,
            } => {
                let day_us = (*day_secs).max(1) * 1_000_000;
                let hour = ((self.elapsed_us % day_us) * 24 / day_us) as usize;
                let w = DIURNAL_WEIGHTS[hour] as i64;
                // Rate in percent of nominal: 100 at amplitude 0, the full
                // weight at amplitude 100. Floored at 10% so the mean gap
                // never explodes past 10x nominal.
                let rate_pct = (100 + (*peak_pct as i64) * (w - 100) / 100).max(10) as u64;
                let mean = ((*mean_gap_us).max(1) * 100 / rate_pct).max(1);
                (self.rng.exponential(mean as f64) as u64).max(1)
            }
            ArrivalProcess::Trace { gaps_us } => {
                if gaps_us.is_empty() {
                    1
                } else {
                    let g = gaps_us[self.cursor % gaps_us.len()];
                    self.cursor += 1;
                    g
                }
            }
        };
        self.elapsed_us = self.elapsed_us.saturating_add(gap);
        gap
    }

    /// Virtual time elapsed over all gaps drawn so far.
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed_us
    }

    /// Draw `n` gaps into a vector (convenience for batched scheduling).
    pub fn take_gaps(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_gap_us()).collect()
    }

    /// Absolute arrival instants for `n` arrivals starting at `start`: the
    /// first arrival lands at `start` itself (matching the historical
    /// driver, whose round 0 slept no gap), each later one after the next
    /// sampled gap.
    pub fn arrival_times(&mut self, n: usize, start: SimTime) -> Vec<SimTime> {
        let mut at = start;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if i > 0 {
                at += crate::time::SimDuration::from_micros(self.next_gap_us());
            }
            out.push(at);
        }
        out
    }
}

/// Declared tenant population: how many users and repos the workload spreads
/// over, and how skewed the activity distribution is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantMix {
    /// Distinct users pushing to the federation.
    pub users: u32,
    /// Distinct repositories receiving pushes.
    pub repos: u32,
    /// Zipf exponent ×100 (100 = classic 1/rank, 0 = uniform).
    pub zipf_x100: u32,
}

impl Default for TenantMix {
    fn default() -> Self {
        TenantMix {
            users: 1,
            repos: 1,
            zipf_x100: 100,
        }
    }
}

impl TenantMix {
    pub fn new(users: u32, repos: u32) -> Self {
        TenantMix {
            users: users.max(1),
            repos: repos.max(1),
            zipf_x100: 100,
        }
    }

    /// Set the Zipf exponent ×100 (builder style).
    pub fn zipf_x100(mut self, z: u32) -> Self {
        self.zipf_x100 = z;
        self
    }
}

/// Number of shards tenant counters are spread over. A power of two so the
/// shard of an id is a mask, not a division.
pub const TENANT_SHARDS: usize = 64;

/// ID-dense sharded counters: entity `id`'s count lives in shard
/// `id % TENANT_SHARDS` at index `id / TENANT_SHARDS`. All storage is plain
/// `Vec<u64>` (the dense `Vec<Task>` template from the faas hot path): O(1)
/// reads and writes, no per-entity allocation, and a fixed memory budget of
/// exactly one `u64` per declared entity regardless of run length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedCounts {
    shards: Vec<Vec<u64>>,
    len: u32,
    total: u64,
}

impl ShardedCounts {
    pub fn new(len: u32) -> Self {
        let per = (len as usize).div_ceil(TENANT_SHARDS);
        ShardedCounts {
            shards: (0..TENANT_SHARDS).map(|_| vec![0u64; per]).collect(),
            len,
            total: 0,
        }
    }

    /// Declared entity count.
    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn increment(&mut self, id: u32) {
        self.shards[id as usize % TENANT_SHARDS][id as usize / TENANT_SHARDS] += 1;
        self.total += 1;
    }

    #[inline]
    pub fn count(&self, id: u32) -> u64 {
        self.shards[id as usize % TENANT_SHARDS][id as usize / TENANT_SHARDS]
    }

    /// Sum over all entities.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Entities with at least one count.
    pub fn active(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.iter().filter(|&&c| c > 0).count() as u64)
            .sum()
    }

    /// `(id, count)` of the busiest entity (lowest id wins ties).
    pub fn hottest(&self) -> (u32, u64) {
        let mut best = (0u32, 0u64);
        for id in 0..self.len {
            let c = self.count(id);
            if c > best.1 {
                best = (id, c);
            }
        }
        best
    }
}

/// The materialized tenant population: integer Zipf CDF tables for repo and
/// user activity, plus sharded per-repo / per-user arrival counters.
#[derive(Clone, Debug)]
pub struct TenantModel {
    mix: TenantMix,
    /// Cumulative integer Zipf weights over repos (ranked by id).
    repo_cdf: Vec<u64>,
    /// Cumulative integer Zipf weights over users (ranked by id).
    user_cdf: Vec<u64>,
    /// Arrivals per repo, sharded.
    pub repo_arrivals: ShardedCounts,
    /// Arrivals per user, sharded.
    pub user_arrivals: ShardedCounts,
}

/// Integer cumulative Zipf weight table: entity at rank `i` (0-based) gets
/// weight `⌊SCALE / (i+1)^s⌋ + 1` (the `+1` keeps every entity reachable).
fn zipf_cdf(n: u32, s_x100: u32) -> Vec<u64> {
    let s = s_x100 as f64 / 100.0;
    let mut cum = 0u64;
    (0..n)
        .map(|i| {
            let w = (1.0e9 / ((i + 1) as f64).powf(s)) as u64 + 1;
            cum += w;
            cum
        })
        .collect()
}

impl TenantModel {
    pub fn new(mix: &TenantMix) -> Self {
        TenantModel {
            mix: *mix,
            repo_cdf: zipf_cdf(mix.repos.max(1), mix.zipf_x100),
            user_cdf: zipf_cdf(mix.users.max(1), mix.zipf_x100),
            repo_arrivals: ShardedCounts::new(mix.repos.max(1)),
            user_arrivals: ShardedCounts::new(mix.users.max(1)),
        }
    }

    pub fn mix(&self) -> &TenantMix {
        &self.mix
    }

    fn pick(cdf: &[u64], rng: &mut DetRng) -> u32 {
        let total = *cdf.last().expect("cdf non-empty");
        let x = rng.range_u64(0, total);
        cdf.partition_point(|&c| c <= x) as u32
    }

    /// Sample the `(user, repo)` of the next arrival and record it in the
    /// sharded counters. Two draws from `rng` per call, always in
    /// user-then-repo order, so tenant streams are byte-reproducible.
    pub fn sample(&mut self, rng: &mut DetRng) -> (u32, u32) {
        let user = Self::pick(&self.user_cdf, rng);
        let repo = Self::pick(&self.repo_cdf, rng);
        self.user_arrivals.increment(user);
        self.repo_arrivals.increment(repo);
        (user, repo)
    }

    /// Total arrivals recorded.
    pub fn arrivals(&self) -> u64 {
        self.repo_arrivals.total()
    }
}

/// A complete workload declaration: the arrival law, how many arrivals to
/// drive, and the tenant population they are attributed to. Built once and
/// handed to `FederationBuilder::workload(..)`; drivers then obtain the
/// deterministic generators via [`Workload::arrival_gen`] /
/// [`Workload::tenant_rng`].
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    pub process: ArrivalProcess,
    /// Arrivals (trigger rounds / pushes) to drive. 0 = caller-controlled.
    pub arrivals: u64,
    pub tenants: TenantMix,
}

impl Workload {
    pub fn new(process: ArrivalProcess) -> Self {
        Workload {
            process,
            arrivals: 0,
            tenants: TenantMix::default(),
        }
    }

    /// Set the arrival budget (builder style).
    pub fn arrivals(mut self, n: u64) -> Self {
        self.arrivals = n;
        self
    }

    /// Set the tenant mix (builder style).
    pub fn tenants(mut self, mix: TenantMix) -> Self {
        self.tenants = mix;
        self
    }

    /// The arrival-gap generator for a world seed. Forks
    /// [`ARRIVAL_FORK_LABEL`] exactly as the historical scenario driver did,
    /// so legacy timelines are unchanged.
    pub fn arrival_gen(&self, seed: u64) -> ArrivalGen {
        ArrivalGen::new(
            DetRng::seed_from_u64(seed).fork(ARRIVAL_FORK_LABEL),
            self.process.clone(),
        )
    }

    /// The tenant-sampling RNG for a world seed (disjoint stream from the
    /// arrival gaps — see [`TENANT_FORK_LABEL`]).
    pub fn tenant_rng(&self, seed: u64) -> DetRng {
        DetRng::seed_from_u64(seed).fork(TENANT_FORK_LABEL)
    }

    /// Materialize the tenant population.
    pub fn tenant_model(&self) -> TenantModel {
        TenantModel::new(&self.tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> DetRng {
        DetRng::seed_from_u64(seed).fork(ARRIVAL_FORK_LABEL)
    }

    /// The legacy sampler, verbatim, as it stood in the scenario runner.
    fn legacy_next_gap_us(rng: &mut DetRng, gap_secs: u64, burstiness_pct: u32) -> u64 {
        let base = gap_secs.saturating_mul(1_000_000).max(8);
        if rng.chance(burstiness_pct as f64 / 100.0) {
            base / 8
        } else {
            base + rng.range_u64(0, base / 4 + 1)
        }
    }

    #[test]
    fn bursty_is_bit_compatible_with_the_legacy_sampler() {
        for (seed, gap, burst) in [(7u64, 300u64, 0u32), (42, 749, 35), (9, 0, 100), (1, 60, 50)] {
            let mut gen = ArrivalGen::new(
                rng(seed),
                ArrivalProcess::Bursty {
                    gap_secs: gap,
                    burstiness_pct: burst,
                },
            );
            let mut legacy = rng(seed);
            for i in 0..64 {
                assert_eq!(
                    gen.next_gap_us(),
                    legacy_next_gap_us(&mut legacy, gap, burst),
                    "seed {seed} gap {gap} burst {burst} draw {i}"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_gap_sequence_for_every_process() {
        let processes = vec![
            ArrivalProcess::Bursty {
                gap_secs: 120,
                burstiness_pct: 40,
            },
            ArrivalProcess::Poisson { mean_gap_us: 90 },
            ArrivalProcess::Mmpp {
                slow_gap_us: 500,
                fast_gap_us: 20,
                switch_pct: 10,
            },
            ArrivalProcess::Diurnal {
                mean_gap_us: 250,
                day_secs: 3600,
                peak_pct: 80,
            },
            ArrivalProcess::Trace {
                gaps_us: vec![5, 0, 17, 3],
            },
        ];
        for p in processes {
            let a: Vec<u64> = ArrivalGen::new(rng(11), p.clone()).take_gaps(256);
            let b: Vec<u64> = ArrivalGen::new(rng(11), p.clone()).take_gaps(256);
            assert_eq!(a, b, "{} not deterministic", p.kind());
        }
    }

    #[test]
    fn trace_replay_cycles_and_consumes_no_randomness() {
        let mut gen = ArrivalGen::new(
            rng(3),
            ArrivalProcess::Trace {
                gaps_us: vec![10, 20, 30],
            },
        );
        assert_eq!(gen.take_gaps(7), vec![10, 20, 30, 10, 20, 30, 10]);
        // Empty traces degrade to a 1 µs metronome instead of stalling.
        let mut empty = ArrivalGen::new(rng(3), ArrivalProcess::Trace { gaps_us: vec![] });
        assert_eq!(empty.take_gaps(3), vec![1, 1, 1]);
    }

    #[test]
    fn diurnal_peak_hours_arrive_faster_than_the_trough() {
        // One modulated hour per 150 ms of virtual time keeps the test fast.
        let mut gen = ArrivalGen::new(
            rng(5),
            ArrivalProcess::Diurnal {
                mean_gap_us: 400,
                day_secs: 4,
                peak_pct: 100,
            },
        );
        // Bucket the mean sampled gap by hour-of-day.
        let mut sums = [0u64; 24];
        let mut counts = [0u64; 24];
        for _ in 0..20_000 {
            let day_us = 4_000_000u64;
            let hour = ((gen.elapsed_us() % day_us) * 24 / day_us) as usize;
            sums[hour] += gen.next_gap_us();
            counts[hour] += 1;
        }
        let mean = |h: usize| sums[h] / counts[h].max(1);
        // Hour 12 carries weight 180, hour 3 weight 38: peak gaps must be
        // decisively shorter than trough gaps.
        assert!(
            mean(12) * 2 < mean(3),
            "peak mean {} vs trough mean {}",
            mean(12),
            mean(3)
        );
    }

    #[test]
    fn arrival_times_start_at_zero_gap() {
        let mut gen = ArrivalGen::new(
            rng(8),
            ArrivalProcess::Trace {
                gaps_us: vec![100, 200],
            },
        );
        let at = gen.arrival_times(4, SimTime::from_micros(50));
        let us: Vec<u64> = at.iter().map(|t| t.as_micros()).collect();
        assert_eq!(us, vec![50, 150, 350, 450]);
    }

    #[test]
    fn sharded_counts_are_dense_and_exact() {
        let mut c = ShardedCounts::new(1000);
        for id in (0..1000).step_by(3) {
            c.increment(id);
            c.increment(id);
        }
        assert_eq!(c.count(0), 2);
        assert_eq!(c.count(1), 0);
        assert_eq!(c.count(999), 2);
        assert_eq!(c.total(), 2 * 334);
        assert_eq!(c.active(), 334);
        assert_eq!(c.hottest(), (0, 2));
        assert_eq!(c.len(), 1000);
    }

    #[test]
    fn zipf_tenants_skew_towards_low_ids() {
        let mix = TenantMix::new(10_000, 2_000).zipf_x100(110);
        let mut model = TenantModel::new(&mix);
        let mut trng = Workload::new(ArrivalProcess::Poisson { mean_gap_us: 1 })
            .tenants(mix)
            .tenant_rng(42);
        for _ in 0..50_000 {
            model.sample(&mut trng);
        }
        assert_eq!(model.arrivals(), 50_000);
        let (hot_repo, hot_count) = model.repo_arrivals.hottest();
        assert!(hot_repo < 10, "hottest repo should be low-ranked, got {hot_repo}");
        let avg = 50_000 / 2_000;
        assert!(
            hot_count > 20 * avg,
            "zipf head not heavy enough: {hot_count} vs avg {avg}"
        );
        // The tail is still reachable.
        assert!(model.repo_arrivals.active() > 500);
    }

    #[test]
    fn tenant_sampling_is_deterministic_and_disjoint_from_arrivals() {
        let mix = TenantMix::new(100, 50);
        let w = Workload::new(ArrivalProcess::Poisson { mean_gap_us: 10 }).tenants(mix);
        let draw = |seed: u64| {
            let mut m = w.tenant_model();
            let mut r = w.tenant_rng(seed);
            (0..200).map(|_| m.sample(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        // Arrival gaps are unaffected by whether tenants were sampled.
        let gaps_a: Vec<u64> = w.arrival_gen(7).take_gaps(32);
        let _ = draw(7);
        let gaps_b: Vec<u64> = w.arrival_gen(7).take_gaps(32);
        assert_eq!(gaps_a, gaps_b);
    }
}
