//! Deterministic fault injection.
//!
//! A [`FaultPlan`] schedules typed faults at virtual times; components
//! consult a shared [`FaultInjector`] handle at their existing event
//! boundaries (task delivery, scheduler passes, token introspection,
//! artifact upload) and apply the fault's effect themselves. The injector
//! never touches any component RNG stream and never mutates component state
//! on a negative consult, so an **empty plan is a guaranteed no-op**: traces
//! and figure outputs are bit-identical to a run without an injector.
//!
//! Faults are one-shot: a consult that matches a due fault consumes it.
//! Every injection and recovery is recorded as a [`TraceEvent`](crate::trace::TraceEvent) in the
//! injector's own trace (`fault.inject` / `fault.recover` kinds), keeping
//! the chaos log separate from the functional trace.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The typed faults the federation knows how to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The endpoint's worker processes die: queued and running tasks are
    /// lost (reported as infrastructure failures), the endpoint stops.
    EndpointCrash { endpoint: String },
    /// A multi-user endpoint fails to fork the user endpoint process for
    /// one submission (transient: the next submission forks fine).
    MepForkFailure { endpoint: String, user: String },
    /// The scheduler drains one node: running jobs on it are preempted;
    /// fixed jobs are requeued, pilots are left to their provider's
    /// re-request path.
    NodeDrain { scheduler: String },
    /// The WAN path to an endpoint drops; wire messages are delayed until
    /// the partition heals.
    WanPartition { endpoint: String, heal_after: SimDuration },
    /// The bearer token presented at the next introspection expires
    /// immediately (mid-run); a freshly issued token is unaffected.
    TokenExpiry,
    /// The artifact store corrupts the named artifact's payload on write.
    ArtifactCorruption { name: String },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::EndpointCrash { endpoint } => write!(f, "endpoint-crash {endpoint}"),
            FaultKind::MepForkFailure { endpoint, user } => {
                write!(f, "mep-fork-failure {endpoint} user={user}")
            }
            FaultKind::NodeDrain { scheduler } => write!(f, "node-drain {scheduler}"),
            FaultKind::WanPartition { endpoint, heal_after } => {
                write!(f, "wan-partition {endpoint} heal_after={heal_after}")
            }
            FaultKind::TokenExpiry => write!(f, "token-expiry"),
            FaultKind::ArtifactCorruption { name } => write!(f, "artifact-corruption {name}"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Earliest virtual time the fault may fire. The effect lands at the
    /// first event boundary at or after this time, which keeps injection
    /// deterministic without a dedicated fault clock.
    pub at: SimTime,
    pub kind: FaultKind,
}

/// An ordered schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: injecting it perturbs nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a fault at a virtual time.
    pub fn with_fault(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { at, kind });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }

    pub fn specs(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// A seed-derived chaos schedule: `count` faults over `horizon`, with
    /// kinds and targets drawn from a [`DetRng`] stream forked off `seed`.
    /// Same seed, same plan; different seeds, (overwhelmingly) different
    /// plans — the property the chaos conformance suite pins down.
    pub fn randomized(seed: u64, horizon: SimDuration, count: usize, endpoints: &[&str]) -> Self {
        let mut rng = DetRng::seed_from_u64(seed).fork("fault-plan");
        let mut plan = FaultPlan::none();
        let span = horizon.as_micros().max(1);
        for _ in 0..count {
            let at = SimTime::from_micros(rng.range_u64(0, span));
            let target = if endpoints.is_empty() {
                String::new()
            } else {
                endpoints[rng.range_u64(0, endpoints.len() as u64) as usize].to_string()
            };
            let kind = match rng.range_u64(0, 6) {
                0 => FaultKind::EndpointCrash { endpoint: target },
                1 => FaultKind::MepForkFailure { endpoint: target, user: "any".into() },
                2 => FaultKind::NodeDrain { scheduler: target },
                3 => FaultKind::WanPartition {
                    endpoint: target,
                    heal_after: SimDuration::from_secs(rng.range_u64(10, 300)),
                },
                4 => FaultKind::TokenExpiry,
                _ => FaultKind::ArtifactCorruption { name: target },
            };
            plan.faults.push(FaultSpec { at, kind });
        }
        plan.faults.sort_by_key(|f| f.at);
        plan
    }

    /// Render the schedule one fault per line (stable across runs; used by
    /// determinism tests to compare plans byte-for-byte).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            out.push_str(&format!("[{}] {}\n", f.at, f.kind));
        }
        out
    }
}

struct InjectorState {
    pending: Vec<FaultSpec>,
    /// Active WAN partitions: (endpoint, healed_at).
    partitions: Vec<(String, SimTime)>,
    /// Token strings force-expired by a TokenExpiry fault.
    expired_tokens: Vec<String>,
    /// A token expiry fired and no fresh token has been seen yet.
    awaiting_token_refresh: bool,
    trace: Trace,
}

/// Cloneable handle threaded through the federation. All consults take
/// `&self`; the state sits behind a mutex so read-mostly components (the
/// auth service's introspection path) can consult without `&mut`.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<Mutex<InjectorState>>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            inner: Arc::new(Mutex::new(InjectorState {
                pending: plan.faults,
                partitions: Vec::new(),
                expired_tokens: Vec::new(),
                awaiting_token_refresh: false,
                trace: Trace::new(),
            })),
        }
    }

    /// Faults not yet fired.
    pub fn pending_len(&self) -> usize {
        self.lock().pending.len()
    }

    /// Snapshot of the chaos log (injections and recoveries).
    pub fn trace(&self) -> Trace {
        self.lock().trace.clone()
    }

    /// Append to the chaos log — components use this to record the concrete
    /// effect of a fault and their recovery from it.
    pub fn record(
        &self,
        at: SimTime,
        component: impl crate::trace::IntoSym,
        kind: impl crate::trace::IntoSym,
        detail: impl Into<String>,
    ) {
        self.lock().trace.record(at, component, kind, detail);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        // A poisoned chaos log would mask the panic that poisoned it;
        // recover the guard and keep going.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume one due fault matched by `pick`, recording the injection.
    /// `component` is built lazily — the common consult is a miss, and the
    /// miss path must stay allocation-free.
    fn take_due<F, C>(&self, now: SimTime, component: C, pick: F) -> Option<FaultKind>
    where
        F: Fn(&FaultKind) -> bool,
        C: FnOnce() -> String,
    {
        let mut st = self.lock();
        let idx = st
            .pending
            .iter()
            .position(|f| f.at <= now && pick(&f.kind))?;
        let fault = st.pending.remove(idx);
        st.trace.record(
            now,
            component(),
            "fault.inject",
            format!("{} (scheduled {})", fault.kind, fault.at),
        );
        Some(fault.kind)
    }

    /// Endpoint boundary: should this endpoint crash now?
    pub fn crash_due(&self, endpoint: &str, now: SimTime) -> bool {
        self.take_due(now, || format!("faas.ep.{endpoint}"), |k| {
            matches!(k, FaultKind::EndpointCrash { endpoint: e } if e == endpoint)
        })
        .is_some()
    }

    /// MEP boundary: should forking the UEP for `user` fail this once?
    /// A plan entry with user `"any"` matches every submitter.
    pub fn fork_failure_due(&self, endpoint: &str, user: &str, now: SimTime) -> bool {
        self.take_due(now, || format!("faas.mep.{endpoint}"), |k| {
            matches!(k, FaultKind::MepForkFailure { endpoint: e, user: u }
                if e == endpoint && (u == "any" || u == user))
        })
        .is_some()
    }

    /// Scheduler boundary: should this scheduler drain a node now?
    pub fn drain_due(&self, scheduler: &str, now: SimTime) -> bool {
        self.take_due(now, || format!("sched.{scheduler}"), |k| {
            matches!(k, FaultKind::NodeDrain { scheduler: s } if s == scheduler)
        })
        .is_some()
    }

    /// Cloud wire boundary: if the WAN path to `endpoint` is (or just
    /// became) partitioned, return the heal time; wire events must not be
    /// delivered before it. Heals are detected and logged here too.
    pub fn partition_until(&self, endpoint: &str, now: SimTime) -> Option<SimTime> {
        // Activate any due partition fault for this endpoint.
        if let Some(FaultKind::WanPartition { heal_after, .. }) =
            self.take_due(now, || format!("faas.wan.{endpoint}"), |k| {
                matches!(k, FaultKind::WanPartition { endpoint: e, .. } if e == endpoint)
            })
        {
            let healed = now + heal_after;
            self.lock().partitions.push((endpoint.to_string(), healed));
        }
        let mut st = self.lock();
        let mut healed_now = Vec::new();
        st.partitions.retain(|(e, until)| {
            if e == endpoint && now >= *until {
                healed_now.push(*until);
                false
            } else {
                true
            }
        });
        for until in healed_now {
            st.trace.record(
                now,
                format!("faas.wan.{endpoint}"),
                "fault.recover",
                format!("partition healed (was due {until})"),
            );
        }
        st.partitions
            .iter()
            .filter(|(e, _)| e == endpoint)
            .map(|(_, until)| *until)
            .max()
    }

    /// Auth boundary: is this token force-expired? The first introspection
    /// at or after a due `TokenExpiry` consumes the fault and expires the
    /// token it sees; a later introspection of a *different* token counts
    /// as the refresh recovery.
    pub fn token_expired(&self, token: &str, now: SimTime) -> bool {
        if self
            .take_due(now, || "auth".to_string(), |k| matches!(k, FaultKind::TokenExpiry))
            .is_some()
        {
            let mut st = self.lock();
            st.expired_tokens.push(token.to_string());
            st.awaiting_token_refresh = true;
            return true;
        }
        let mut st = self.lock();
        if st.expired_tokens.iter().any(|t| t == token) {
            return true;
        }
        if st.awaiting_token_refresh {
            st.awaiting_token_refresh = false;
            st.trace
                .record(now, "auth", "fault.recover", "fresh token accepted after forced expiry");
        }
        false
    }

    /// Artifact-store boundary: should this upload be corrupted?
    pub fn corruption_due(&self, name: &str, now: SimTime) -> bool {
        self.take_due(now, || "ci.artifacts".to_string(), |k| {
            matches!(k, FaultKind::ArtifactCorruption { name: n } if n == name)
        })
        .is_some()
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.lock();
        f.debug_struct("FaultInjector")
            .field("pending", &st.pending.len())
            .field("partitions", &st.partitions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_noop() {
        let inj = FaultInjector::new(FaultPlan::none());
        assert!(!inj.crash_due("ep", SimTime::from_secs(100)));
        assert!(!inj.fork_failure_due("ep", "u", SimTime::from_secs(100)));
        assert!(!inj.drain_due("s", SimTime::from_secs(100)));
        assert!(inj.partition_until("ep", SimTime::from_secs(100)).is_none());
        assert!(!inj.token_expired("tok", SimTime::from_secs(100)));
        assert!(!inj.corruption_due("a", SimTime::from_secs(100)));
        assert!(inj.trace().is_empty(), "no consult may log on the empty plan");
    }

    #[test]
    fn faults_are_one_shot_and_time_gated() {
        let plan = FaultPlan::none().with_fault(
            SimTime::from_secs(50),
            FaultKind::EndpointCrash { endpoint: "ep-a".into() },
        );
        let inj = FaultInjector::new(plan);
        assert!(!inj.crash_due("ep-a", SimTime::from_secs(49)), "not due yet");
        assert!(!inj.crash_due("ep-b", SimTime::from_secs(60)), "wrong target");
        assert!(inj.crash_due("ep-a", SimTime::from_secs(60)));
        assert!(!inj.crash_due("ep-a", SimTime::from_secs(70)), "consumed");
        assert_eq!(inj.trace().of_kind("fault.inject").count(), 1);
    }

    #[test]
    fn partition_activates_and_heals() {
        let plan = FaultPlan::none().with_fault(
            SimTime::from_secs(10),
            FaultKind::WanPartition {
                endpoint: "ep".into(),
                heal_after: SimDuration::from_secs(30),
            },
        );
        let inj = FaultInjector::new(plan);
        assert!(inj.partition_until("ep", SimTime::from_secs(5)).is_none());
        let until = inj.partition_until("ep", SimTime::from_secs(10)).unwrap();
        assert_eq!(until, SimTime::from_secs(40));
        assert!(inj.partition_until("ep", SimTime::from_secs(39)).is_some());
        assert!(inj.partition_until("ep", SimTime::from_secs(40)).is_none(), "healed");
        assert_eq!(inj.trace().of_kind("fault.recover").count(), 1);
    }

    #[test]
    fn token_expiry_hits_one_token_and_recovers_on_refresh() {
        let plan = FaultPlan::none().with_fault(SimTime::from_secs(5), FaultKind::TokenExpiry);
        let inj = FaultInjector::new(plan);
        assert!(!inj.token_expired("tok-1", SimTime::from_secs(1)));
        assert!(inj.token_expired("tok-1", SimTime::from_secs(6)), "fault fires");
        assert!(inj.token_expired("tok-1", SimTime::from_secs(7)), "stays expired");
        assert!(!inj.token_expired("tok-2", SimTime::from_secs(8)), "fresh token fine");
        assert_eq!(inj.trace().of_kind("fault.recover").count(), 1);
    }

    #[test]
    fn randomized_plans_are_deterministic_per_seed() {
        let eps = ["ep-a", "ep-b"];
        let a = FaultPlan::randomized(7, SimDuration::from_hours(1), 8, &eps);
        let b = FaultPlan::randomized(7, SimDuration::from_hours(1), 8, &eps);
        assert_eq!(a.render(), b.render());
        let c = FaultPlan::randomized(8, SimDuration::from_hours(1), 8, &eps);
        assert_ne!(a.render(), c.render(), "different seed, different schedule");
        assert_eq!(a.len(), 8);
    }
}
