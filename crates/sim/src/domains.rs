//! Lookahead-domain partitioning for conservative parallel DES.
//!
//! A *domain* is a set of component slots that advance together on one
//! worker thread during a parallel window. The partition must respect
//! affinity: slots that share mutable state (in the federation, endpoints
//! hosted at the same site — one filesystem, one command registry, one
//! batch scheduler) have zero lookahead between each other and must land in
//! the same domain. Between domains the only interactions are timestamped
//! messages with positive lookahead, which is what lets each domain advance
//! independently to the window horizon (see [`crate::horizon`]).
//!
//! The partition is a pure function of `(slot order, affinity keys, worker
//! count)` — no hashing of addresses into buckets that could vary across
//! runs — so two same-seed executions build byte-identical domain layouts,
//! a precondition for the deterministic merge producing byte-identical
//! traces.

/// A deterministic partition of component slots into lookahead domains.
#[derive(Debug, Clone, Default)]
pub struct DomainPlan {
    /// Slots per domain, in the caller-supplied slot order.
    domains: Vec<Vec<usize>>,
    /// Slot → owning domain index.
    domain_of: Vec<usize>,
}

impl DomainPlan {
    /// Partition `slots` (given in their canonical walk order, e.g.
    /// endpoint-name order) into at most `workers` domains.
    ///
    /// `affinity` maps a slot to its affinity-group key: slots with equal
    /// keys are inseparable. Groups are numbered by first appearance in the
    /// slot order and dealt round-robin over the domains, so the layout is
    /// deterministic and independent of the key values themselves (which
    /// may be runtime addresses).
    pub fn partition(
        slots: &[usize],
        workers: usize,
        mut affinity: impl FnMut(usize) -> u64,
    ) -> DomainPlan {
        let workers = workers.max(1);
        let max_slot = slots.iter().copied().max().map_or(0, |s| s + 1);
        let mut domain_of = vec![usize::MAX; max_slot];
        // Affinity key → group index, by first appearance.
        let mut groups: Vec<(u64, usize)> = Vec::new();
        let mut group_of = Vec::with_capacity(slots.len());
        for &slot in slots {
            let key = affinity(slot);
            let gix = match groups.iter().find(|(k, _)| *k == key) {
                Some((_, g)) => *g,
                None => {
                    let g = groups.len();
                    groups.push((key, g));
                    g
                }
            };
            group_of.push(gix);
        }
        let n_domains = workers.min(groups.len().max(1));
        let mut domains = vec![Vec::new(); n_domains];
        for (&slot, &gix) in slots.iter().zip(&group_of) {
            let d = gix % n_domains;
            domains[d].push(slot);
            domain_of[slot] = d;
        }
        domains.retain(|d| !d.is_empty());
        // Renumber after the retain so `domain_of` stays consistent.
        let mut plan = DomainPlan {
            domain_of,
            domains,
        };
        for (d, slots) in plan.domains.iter().enumerate() {
            for &s in slots {
                plan.domain_of[s] = d;
            }
        }
        plan
    }

    /// Number of domains in the plan.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The slots of domain `d`, in canonical slot order.
    pub fn slots(&self, d: usize) -> &[usize] {
        &self.domains[d]
    }

    /// All domains, in domain order.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.domains.iter().map(|d| d.as_slice())
    }

    /// The domain owning `slot`.
    pub fn domain_of(&self, slot: usize) -> usize {
        self.domain_of[slot]
    }
}

/// Counters describing how the parallel drive behaved — harvested into the
/// observability registry as the `sim.domain_*` series. None of them ever
/// influences a committed byte, but since the drive's window-sizing and
/// min-work gates adapt to *measured wall-clock overhead*, the counts
/// themselves are run-dependent: two same-seed executions may split the
/// identical event timeline into different windows (different barrier /
/// fallback tallies) while committing identical traces. Diagnostics, not
/// invariants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Parallel windows executed (each window ends at one barrier where the
    /// domains' event batches are merged back into the committed trace).
    pub barriers: u64,
    /// Domain-window pairs in which a domain had no work at all and sat
    /// idle until the barrier.
    pub stalls: u64,
    /// Windows that fell back to the serial path (ineligible: too little
    /// pending work, a single domain, or zero lookahead).
    pub serial_fallbacks: u64,
    /// Events dispatched by each domain across all parallel windows.
    pub events_per_domain: Vec<u64>,
}

impl DomainStats {
    /// Record one parallel window: `events[d]` is how many events domain
    /// `d` dispatched inside the window.
    pub fn record_window(&mut self, events: &[u64]) {
        self.barriers += 1;
        if self.events_per_domain.len() < events.len() {
            self.events_per_domain.resize(events.len(), 0);
        }
        for (d, &n) in events.iter().enumerate() {
            self.events_per_domain[d] += n;
            if n == 0 {
                self.stalls += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_keeps_affinity_groups_together() {
        // Slots 0..6; slots {0,3} share key 7, {1,4} share key 9, the rest
        // are singletons.
        let slots = [0, 1, 2, 3, 4, 5];
        let keys = [7u64, 9, 11, 7, 9, 13];
        let plan = DomainPlan::partition(&slots, 3, |s| keys[s]);
        assert!(plan.len() <= 3);
        assert_eq!(plan.domain_of(0), plan.domain_of(3), "shared key co-locates");
        assert_eq!(plan.domain_of(1), plan.domain_of(4));
        let total: usize = plan.iter().map(|d| d.len()).sum();
        assert_eq!(total, 6, "every slot lands in exactly one domain");
    }

    #[test]
    fn partition_is_deterministic_and_order_driven() {
        let slots = [4, 2, 7, 1];
        let keys = |s: usize| (s as u64) * 31 + 5; // all distinct
        let a = DomainPlan::partition(&slots, 2, keys);
        let b = DomainPlan::partition(&slots, 2, keys);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Round-robin by first appearance: 4 -> d0, 2 -> d1, 7 -> d0, 1 -> d1.
        assert_eq!(a.slots(0), &[4, 7]);
        assert_eq!(a.slots(1), &[2, 1]);
    }

    #[test]
    fn single_group_degenerates_to_one_domain() {
        let slots = [0, 1, 2];
        let plan = DomainPlan::partition(&slots, 8, |_| 42);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.slots(0), &[0, 1, 2]);
    }

    #[test]
    fn more_workers_than_groups_caps_domain_count() {
        let slots = [0, 1];
        let plan = DomainPlan::partition(&slots, 16, |s| s as u64);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn empty_slot_set_is_fine() {
        let plan = DomainPlan::partition(&[], 4, |_| 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn stats_accumulate_barriers_and_stalls() {
        let mut stats = DomainStats::default();
        stats.record_window(&[10, 0, 3]);
        stats.record_window(&[5, 2, 0]);
        assert_eq!(stats.barriers, 2);
        assert_eq!(stats.stalls, 2);
        assert_eq!(stats.events_per_domain, vec![15, 2, 3]);
    }
}
