//! # hpcci-sim — deterministic discrete-event simulation kernel
//!
//! Every other crate in the `hpcci` federation is built on this kernel. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time in microseconds. All timing
//!   in the federation is virtual, which makes every experiment reproducible
//!   bit-for-bit from a seed — the paper's thesis applied to our own artifact.
//! * [`EventQueue`] — a stable (FIFO-within-timestamp) priority queue of typed
//!   events.
//! * [`DetRng`] — a seeded random-number source with the distributions the
//!   site performance models need (uniform, normal, lognormal via Box–Muller).
//! * [`Advance`] — the cooperative component protocol: components expose the
//!   time of their next internal event and are advanced to a given instant by
//!   a driver ([`drive`], [`drive_until`]).
//! * [`Trace`] — a structured event trace used for provenance records and for
//!   regenerating the paper's system-overview figure.
//! * [`faults`] — deterministic fault injection: a seedable [`FaultPlan`]
//!   delivered through a [`FaultInjector`] handle that components consult at
//!   their event boundaries. An empty plan is a guaranteed no-op.
//! * [`metrics`] — summary statistics helpers for the benchmark harness.
//! * [`domains`] / [`horizon`] — conservative parallel DES support: a
//!   deterministic partition of component slots into lookahead domains, and
//!   the lookahead/horizon derivation that proves how far each domain may
//!   advance before the next barrier.
//! * [`sweep`] — the parallel scenario-sweep runner: a fleet of
//!   self-contained single-threaded jobs over a fixed worker pool, with
//!   results in submission order (a parallel sweep is bit-identical to a
//!   serial one).

pub mod component;
pub mod dispatch;
pub mod domains;
pub mod faults;
pub mod horizon;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod sweep;
pub mod time;
pub mod trace;
pub mod workload;

pub use component::{drive, drive_until, Advance};
pub use dispatch::{CacheStats, NextEventCache};
pub use domains::{DomainPlan, DomainStats};
pub use horizon::{Lookahead, Window};
pub use faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
pub use queue::EventQueue;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Interner, IntoSym, Sym, Trace, TraceAllocStats, TraceEvent};
pub use workload::{
    ArrivalGen, ArrivalProcess, ShardedCounts, TenantMix, TenantModel, Workload,
};
