//! Fixed log-bucketed histograms over `u64` microsecond values.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket *i* (i ≥ 1)
//! holds values whose bit length is *i*, i.e. `[2^(i-1), 2^i - 1]`. Bucketing
//! by bit length makes `observe` a handful of integer ops with no float math,
//! so recording is deterministic across platforms and cheap enough for task
//! completion paths.
//!
//! Quantiles come in two flavors, both integer-only and order-independent:
//! [`Histogram::quantile_upper`] returns the raw upper bound of the bucket
//! holding the requested rank (coarse — for wide buckets every quantile in
//! the bucket collapses onto `2^i - 1`), and [`Histogram::quantile`] adds
//! within-bucket linear interpolation, spreading the bucket's observations
//! uniformly across its span so reported p50/p99 values land *inside* the
//! bucket instead of saturating at its boundary.

/// Number of buckets: one for zero plus one per possible bit length.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log-bucketed histogram of `u64` values (conventionally µs).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: 0 for 0, otherwise its bit length.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket.
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts, indexed by [`bucket_upper`].
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Deterministic quantile estimate: the upper bound of the bucket holding
    /// the observation of rank `ceil(count * q / 100)`, clamped to the
    /// observed max. `q` is an integer percentage in `0..=100`.
    pub fn quantile_upper(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count * q).div_ceil(100)).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Inclusive lower bound of a bucket.
    fn bucket_lower(index: usize) -> u64 {
        match index {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Quantile estimate with within-bucket linear interpolation.
    ///
    /// The bucket holding the observation of rank `ceil(count * q / 100)` is
    /// located as in [`quantile_upper`](Self::quantile_upper), then its `n`
    /// observations are assumed uniformly spread over the bucket span
    /// `[2^(i-1), 2^i - 1]` and the estimate is read off at the rank's
    /// position. This keeps tail quantiles from collapsing onto bucket
    /// boundaries: with wide high buckets, `quantile_upper` reports the same
    /// `2^i - 1` for every quantile that lands in the bucket, while this
    /// estimate moves through the bucket with the rank. The result is
    /// clamped to the observed `[min, max]` and stays integer-only (and thus
    /// bit-identical across platforms and observation orders).
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count * q).div_ceil(100)).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += n;
            if cumulative >= rank {
                let lower = Self::bucket_lower(i);
                let span = bucket_upper(i) - lower;
                // Position of the rank inside this bucket, 1..=n; the n-th
                // observation sits at the bucket's upper bound.
                let pos = rank - before;
                let est = lower + span.saturating_mul(pos) / n;
                return est.clamp(self.min(), self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn observe_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [5u64, 100, 7, 0, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1012);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 900);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10); // bucket 4, upper 15
        }
        h.observe(1000); // bucket 10, upper 1023
        assert_eq!(h.quantile_upper(50), 15);
        assert_eq!(h.quantile_upper(99), 15);
        assert_eq!(h.quantile_upper(100), 1000, "clamped to observed max");
        assert_eq!(Histogram::new().quantile_upper(50), 0);
    }

    #[test]
    fn interpolated_quantiles_land_inside_the_bucket() {
        // The saturation case from the bench: most observations share one
        // wide bucket, so every quantile_upper collapses onto 2^i - 1 while
        // the interpolated estimate moves with the rank.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10); // bucket 4, span [8, 15]
        }
        h.observe(1000); // bucket 10
        assert_eq!(h.quantile_upper(50), 15, "saturated at bucket upper");
        assert_eq!(h.quantile_upper(99), 15, "saturated at bucket upper");
        // rank 50 of 99 in-bucket observations: 8 + 7 * 50 / 99 = 11.
        assert_eq!(h.quantile(50), 11);
        // rank 99 of 99: 8 + 7 * 99 / 99 = 15, inside the observed range.
        assert_eq!(h.quantile(99), 15);
        assert_eq!(h.quantile(100), 1000, "clamped to observed max");

        // Spread within one bucket: 33, 40, 50, 60 all land in [32, 63].
        let mut h = Histogram::new();
        for v in [33u64, 40, 50, 60] {
            h.observe(v);
        }
        assert_eq!(h.quantile(25), 39); // 32 + 31 * 1 / 4
        assert_eq!(h.quantile(50), 47); // 32 + 31 * 2 / 4
        assert_eq!(h.quantile(99), 60); // 32 + 31 * 4 / 4 = 63, clamped to max
        // A single-valued histogram clamps every quantile onto that value.
        let mut h = Histogram::new();
        for _ in 0..4 {
            h.observe(40);
        }
        for q in [1, 50, 99, 100] {
            assert_eq!(h.quantile(q), 40);
        }
        assert_eq!(Histogram::new().quantile(50), 0);
    }

    #[test]
    fn quantiles_are_order_independent() {
        let values = [3u64, 99, 1_000_000, 17, 0, 42, 42, 8191];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in values {
            a.observe(v);
        }
        for v in values.iter().rev() {
            b.observe(*v);
        }
        for q in [0, 10, 50, 90, 99, 100] {
            assert_eq!(a.quantile_upper(q), b.quantile_upper(q));
        }
        assert_eq!(a.buckets(), b.buckets());
    }
}
