//! Per-run telemetry summaries.
//!
//! A [`RunReport`] mirrors the columns of the paper's Table/Fig. 4 evaluation
//! of CORRECT runs: where the run executed, how long it queued, how long it
//! ran, how many bytes of artifacts it produced, and — when it failed —
//! whether the failure was a test failure or infrastructure (the PR-1
//! `failure_kind` distinction). Reports are built from CI engine state at
//! harvest time, so they cost nothing while the simulation runs.

use std::fmt::Write as _;

/// Telemetry summary of one workflow run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Raw run id (`RunId.0` at the federation layer).
    pub run: u64,
    pub repo: String,
    pub workflow: String,
    pub branch: String,
    pub commit: String,
    /// Terminal (or current) status, e.g. `success` / `failure` / `awaiting-approval`.
    pub status: String,
    /// Simulation timestamps of the submit→start→finish lifecycle, in µs.
    pub triggered_at_us: u64,
    pub started_at_us: Option<u64>,
    pub ended_at_us: Option<u64>,
    /// Steps executed and how many of them failed.
    pub steps: u32,
    pub failed_steps: u32,
    /// Total artifact bytes uploaded by the run.
    pub artifact_bytes: u64,
    /// `failure_kind` output of the first step that declared one
    /// (`"infrastructure"` for PR-1 graceful degradation).
    pub failure_kind: Option<String>,
}

impl RunReport {
    /// Approval / scheduling wait: trigger → start, in µs.
    pub fn queue_wait_us(&self) -> Option<u64> {
        self.started_at_us
            .map(|s| s.saturating_sub(self.triggered_at_us))
    }

    /// Execution time: start → end, in µs.
    pub fn duration_us(&self) -> Option<u64> {
        match (self.started_at_us, self.ended_at_us) {
            (Some(s), Some(e)) => Some(e.saturating_sub(s)),
            _ => None,
        }
    }

    /// One human-readable line per field.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run #{} {}:{}@{}", self.run, self.repo, self.workflow, self.branch);
        let _ = writeln!(out, "  commit        {}", self.commit);
        let _ = writeln!(out, "  status        {}", self.status);
        let _ = writeln!(out, "  queue wait    {}", fmt_opt_us(self.queue_wait_us()));
        let _ = writeln!(out, "  duration      {}", fmt_opt_us(self.duration_us()));
        let _ = writeln!(out, "  steps         {} ({} failed)", self.steps, self.failed_steps);
        let _ = writeln!(out, "  artifacts     {} bytes", self.artifact_bytes);
        if let Some(kind) = &self.failure_kind {
            let _ = writeln!(out, "  failure kind  {kind}");
        }
        out
    }

    /// Fixed-column table over several reports (the Fig. 4 shape).
    pub fn render_table(reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5}  {:<28} {:<10} {:>12} {:>12} {:>6} {:>10}  failure",
            "run", "repo:workflow", "status", "queue", "duration", "steps", "art bytes"
        );
        for r in reports {
            let _ = writeln!(
                out,
                "{:>5}  {:<28} {:<10} {:>12} {:>12} {:>6} {:>10}  {}",
                r.run,
                format!("{}:{}", r.repo, r.workflow),
                r.status,
                fmt_opt_us(r.queue_wait_us()),
                fmt_opt_us(r.duration_us()),
                r.steps,
                r.artifact_bytes,
                r.failure_kind.as_deref().unwrap_or("-"),
            );
        }
        out
    }

    /// Deterministic JSON object (integers and escaped strings only).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
        format!(
            "{{\"run\": {}, \"repo\": \"{}\", \"workflow\": \"{}\", \"branch\": \"{}\", \
             \"commit\": \"{}\", \"status\": \"{}\", \"triggered_at_us\": {}, \
             \"started_at_us\": {}, \"ended_at_us\": {}, \"queue_wait_us\": {}, \
             \"duration_us\": {}, \"steps\": {}, \"failed_steps\": {}, \
             \"artifact_bytes\": {}, \"failure_kind\": {}}}",
            self.run,
            esc(&self.repo),
            esc(&self.workflow),
            esc(&self.branch),
            esc(&self.commit),
            esc(&self.status),
            self.triggered_at_us,
            opt(self.started_at_us),
            opt(self.ended_at_us),
            opt(self.queue_wait_us()),
            opt(self.duration_us()),
            self.steps,
            self.failed_steps,
            self.artifact_bytes,
            self.failure_kind
                .as_deref()
                .map_or("null".to_string(), |k| format!("\"{}\"", esc(k))),
        )
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_opt_us(v: Option<u64>) -> String {
    match v {
        None => "-".to_string(),
        Some(us) if us < 1_000 => format!("{us}µs"),
        Some(us) if us < 1_000_000 => format!("{:.3}ms", us as f64 / 1e3),
        Some(us) => format!("{:.3}s", us as f64 / 1e6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            run: 1,
            repo: "vhayot/parsl-docking-tutorial".into(),
            workflow: "docking-ci".into(),
            branch: "main".into(),
            commit: "ab12cd3".into(),
            status: "success".into(),
            triggered_at_us: 1_000_000,
            started_at_us: Some(3_000_000),
            ended_at_us: Some(63_000_000),
            steps: 4,
            failed_steps: 0,
            artifact_bytes: 2048,
            failure_kind: None,
        }
    }

    #[test]
    fn derived_durations() {
        let r = sample();
        assert_eq!(r.queue_wait_us(), Some(2_000_000));
        assert_eq!(r.duration_us(), Some(60_000_000));
        let unstarted = RunReport {
            started_at_us: None,
            ended_at_us: None,
            ..sample()
        };
        assert_eq!(unstarted.queue_wait_us(), None);
        assert_eq!(unstarted.duration_us(), None);
    }

    #[test]
    fn renders_and_serializes() {
        let r = sample();
        let text = r.render();
        assert!(text.contains("run #1"));
        assert!(text.contains("queue wait    2.000s"));
        let json = r.to_json();
        assert!(json.contains("\"queue_wait_us\": 2000000"));
        assert!(json.contains("\"failure_kind\": null"));
        let table = RunReport::render_table(&[r]);
        assert_eq!(table.lines().count(), 2);
        assert!(table.contains("docking-ci"));
    }
}
