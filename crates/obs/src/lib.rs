//! `hpcci-obs`: simulation-time observability for the federation.
//!
//! The paper's evaluation (§VI) reports queue wait, provisioning latency, and
//! per-site CI overhead — quantities a reproduction must be able to *ask* the
//! simulator for. This crate provides a metrics registry (counters, gauges,
//! log-bucketed histograms), span-based structured tracing layered on the
//! simulation [`Trace`], and per-run [`RunReport`] telemetry.
//!
//! ## Determinism rules
//!
//! Everything here records **simulation time only** — there are no wall
//! clocks, no RNG draws, and recording never feeds back into component state,
//! timing, or trace contents. Counters, histogram bucket counts, and gauge
//! high-water marks are order-independent, so two same-seed runs (serial or
//! under the parallel sweep) produce byte-identical snapshots, and golden
//! trace hashes are unchanged whether observability is enabled or disabled.
//!
//! ## Cost discipline
//!
//! An [`Obs`] handle is `Option<Arc<Mutex<Registry>>>`; the disabled handle
//! is `None` and every recording method returns after one branch, with no
//! lock and no allocation. Enabled recording happens at *task/job* frequency
//! (completions, job starts, run boundaries), never per simulation event:
//! per-event quantities stay plain `u64` fields on their components and are
//! harvested into the registry once, at snapshot time.

mod histogram;
mod registry;
mod report;
mod reservoir;
mod snapshot;

pub use histogram::{bucket_upper, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{Registry, SpanId, SpanRec, CORE_COUNTERS, CORE_HISTOGRAMS};
pub use report::RunReport;
pub use reservoir::{Reservoir, RESERVOIR_CAPACITY};
pub use snapshot::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, ReservoirSnapshot};

use hpcci_sim::{IntoSym, SimDuration, SimTime, Sym, Trace};
use parking_lot::Mutex;
use std::sync::Arc;

/// Observability configuration for a federation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    enabled: bool,
}

impl ObsConfig {
    /// Record metrics and spans.
    pub fn enabled() -> Self {
        ObsConfig { enabled: true }
    }

    /// Record nothing; every instrumentation point is a single branch.
    pub fn disabled() -> Self {
        ObsConfig { enabled: false }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Cheaply cloneable handle to a shared metrics registry, or a no-op.
///
/// Components hold a clone and record through it; the federation (or a bench
/// harness) keeps one to snapshot. The `Default` handle is disabled.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl Obs {
    pub fn new(config: ObsConfig) -> Self {
        if config.is_enabled() {
            Obs::enabled()
        } else {
            Obs::disabled()
        }
    }

    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Mutex::new(Registry::new()))),
        }
    }

    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a metric name once so subsequent records are allocation-free.
    /// Disabled handles return a static empty symbol that is never used.
    pub fn intern(&self, name: &str) -> Sym {
        match &self.inner {
            Some(inner) => inner.lock().intern(name),
            None => Sym::Static(""),
        }
    }

    /// Increment a counter by 1.
    pub fn inc(&self, name: impl IntoSym) {
        self.add(name, 1);
    }

    /// Increment a counter.
    pub fn add(&self, name: impl IntoSym, delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().add(name, delta);
    }

    /// Overwrite a counter with an absolute value (harvest path).
    pub fn set_counter(&self, name: impl IntoSym, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().set_counter(name, value);
    }

    /// Set a gauge (tracks last value and high-water mark).
    pub fn gauge_set(&self, name: impl IntoSym, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().gauge_set(name, value);
    }

    /// Record a histogram observation (conventionally µs).
    pub fn observe(&self, name: impl IntoSym, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().observe(name, value);
    }

    /// Record a duration observation in µs.
    pub fn observe_duration(&self, name: impl IntoSym, d: SimDuration) {
        self.observe(name, d.as_micros());
    }

    /// Record into a bounded reservoir sample: exact quantiles on small runs,
    /// O(1) memory per series on million-task runs.
    pub fn sample(&self, name: impl IntoSym, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().sample(name, value);
    }

    /// Open a span at `at`. Disabled handles return [`SpanId::NONE`].
    pub fn span_start(
        &self,
        name: impl IntoSym,
        detail: impl Into<String>,
        at: SimTime,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        inner.lock().span_start(name, detail, at)
    }

    /// [`Obs::span_start`] with a lazily built detail string: disabled
    /// handles never invoke `detail`, so hot paths pay nothing for the
    /// formatting. Use this whenever the detail needs a `format!`.
    pub fn span_start_with(
        &self,
        name: impl IntoSym,
        detail: impl FnOnce() -> String,
        at: SimTime,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        inner.lock().span_start(name, detail(), at)
    }

    /// Close a span. Ignores [`SpanId::NONE`].
    pub fn span_end(&self, id: SpanId, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        inner.lock().span_end(id, at);
    }

    /// Snapshot every registered metric. Disabled handles return an empty
    /// snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.lock().snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Clone of the span trace (`span.start` / `span.end` events).
    pub fn span_trace(&self) -> Trace {
        match &self.inner {
            Some(inner) => inner.lock().trace().clone(),
            None => Trace::default(),
        }
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().spans().len(),
            None => 0,
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let obs = Obs::new(ObsConfig::disabled());
        assert!(!obs.is_enabled());
        obs.inc("faas.tasks_submitted");
        obs.observe("faas.task_latency_us", 99);
        obs.gauge_set("sched.queue_depth", 5);
        let span = obs.span_start("ci.run", "run=1", SimTime::ZERO);
        assert_eq!(span, SpanId::NONE);
        obs.span_end(span, SimTime::from_secs(1));
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.spans, 0);
        assert!(obs.span_trace().is_empty());
    }

    #[test]
    fn enabled_handle_records_and_clones_share_state() {
        let obs = Obs::new(ObsConfig::enabled());
        let clone = obs.clone();
        obs.inc("faas.tasks_submitted");
        clone.add("faas.tasks_submitted", 2);
        clone.observe_duration("faas.task_latency_us", SimDuration::from_millis(3));
        let snap = obs.snapshot();
        assert_eq!(snap.counter("faas.tasks_submitted"), 3);
        assert_eq!(snap.histogram("faas.task_latency_us").unwrap().sum, 3_000);
    }

    #[test]
    fn spans_round_trip_through_handle() {
        let obs = Obs::enabled();
        let id = obs.span_start("ci.run", "run=7", SimTime::from_secs(2));
        obs.span_end(id, SimTime::from_secs(5));
        assert_eq!(obs.span_count(), 1);
        let trace = obs.span_trace();
        assert_eq!(trace.of_kind("span.start").count(), 1);
        assert_eq!(trace.of_kind("span.end").count(), 1);
    }

    #[test]
    fn same_operations_yield_byte_identical_output() {
        let run = || {
            let obs = Obs::enabled();
            obs.add("faas.tasks_submitted", 7);
            let sym = obs.intern("sched.faster.queue_wait_us");
            obs.observe(&sym, 1_234);
            obs.observe(sym, 56_789);
            obs.gauge_set("sched.queue_depth", 4);
            (obs.snapshot().to_json(), obs.snapshot().to_prometheus())
        };
        assert_eq!(run(), run());
    }
}
