//! Deterministic fixed-capacity reservoir samples.
//!
//! The log-bucketed [`crate::histogram::Histogram`] already holds O(1) state
//! per series, but its quantiles are bucket estimates. A [`Reservoir`] keeps
//! a bounded uniform sample of the raw values instead (Vitter's Algorithm R
//! over a self-contained SplitMix64 stream), so million-task runs get
//! *exact-sample* quantiles for a fixed memory budget:
//!
//! * while `seen <= capacity` the reservoir holds **every** observation, so
//!   its quantiles are exact order statistics — on small runs a streaming
//!   snapshot is identical to one computed from the full value list (the
//!   property the workload-engine proptests pin);
//! * past capacity each new value replaces a deterministically-chosen slot
//!   with probability `capacity / seen`, keeping a uniform sample;
//! * the replacement stream is seeded from a fixed constant, never from wall
//!   clock or OS entropy, so two runs feeding identical sequences hold
//!   byte-identical reservoirs.

/// Default number of retained samples per series (8 KiB of `u64`s).
pub const RESERVOIR_CAPACITY: usize = 1024;

/// Fixed seed of the replacement stream. Any constant works; what matters is
/// that it is compiled in, so reservoirs are pure functions of their inputs.
const RESERVOIR_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A bounded, deterministic uniform sample of a `u64` series, with exact
/// count/sum/min/max over everything ever observed.
#[derive(Clone, Debug)]
pub struct Reservoir {
    samples: Vec<u64>,
    capacity: usize,
    seen: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// SplitMix64 state of the replacement stream.
    state: u64,
}

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir::with_capacity(RESERVOIR_CAPACITY)
    }
}

impl Reservoir {
    pub fn new() -> Self {
        Reservoir::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Reservoir {
            samples: Vec::new(),
            capacity: capacity.max(1),
            seen: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            state: RESERVOIR_SEED,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: one add, two xorshift-multiplies.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.seen += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.samples.len() < self.capacity {
            self.samples.push(value);
            return;
        }
        // Algorithm R: keep the new value with probability capacity / seen.
        let j = self.next_u64() % self.seen;
        if (j as usize) < self.capacity {
            self.samples[j as usize] = value;
        }
    }

    /// Observations ever recorded.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Samples currently retained (`min(seen, capacity)`).
    pub fn kept(&self) -> usize {
        self.samples.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Does the reservoir still hold every observation (so quantiles are
    /// exact order statistics rather than sampled estimates)?
    pub fn exact(&self) -> bool {
        self.seen as usize <= self.capacity
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation ever seen (0 when empty) — exact, not sampled.
    pub fn min(&self) -> u64 {
        if self.seen == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation ever seen — exact, not sampled.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The retained samples, unsorted, in slot order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Quantile over the retained sample: the value of rank
    /// `ceil(kept * q / 100)` (1-based) in sorted order, `q` in `0..=100`.
    /// Exact while [`Reservoir::exact`]; a uniform-sample estimate after.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = (n * q).div_ceil(100).clamp(1, n);
        sorted[(rank - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_runs_are_exact() {
        let mut r = Reservoir::with_capacity(16);
        let values = [40u64, 3, 99, 12, 7, 56];
        for v in values {
            r.observe(v);
        }
        assert!(r.exact());
        assert_eq!(r.seen(), 6);
        assert_eq!(r.kept(), 6);
        assert_eq!(r.sum(), values.iter().sum::<u64>());
        assert_eq!((r.min(), r.max()), (3, 99));
        // Exact order statistics: sorted = [3, 7, 12, 40, 56, 99].
        assert_eq!(r.quantile(0), 3);
        assert_eq!(r.quantile(50), 12);
        assert_eq!(r.quantile(100), 99);
    }

    #[test]
    fn overflow_keeps_a_bounded_deterministic_sample() {
        let run = || {
            let mut r = Reservoir::with_capacity(64);
            for i in 0..10_000u64 {
                r.observe(i % 997);
            }
            r
        };
        let a = run();
        let b = run();
        assert!(!a.exact());
        assert_eq!(a.kept(), 64);
        assert_eq!(a.seen(), 10_000);
        assert_eq!(a.samples(), b.samples(), "replacement stream is deterministic");
        assert_eq!(a.quantile(50), b.quantile(50));
        // Exact aggregates survive the sampling.
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 996);
        // The uniform sample lands its median in the right neighborhood.
        let p50 = a.quantile(50);
        assert!((200..800).contains(&p50), "implausible sampled median {p50}");
    }

    #[test]
    fn empty_reservoir_is_all_zeros() {
        let r = Reservoir::new();
        assert_eq!((r.seen(), r.kept()), (0, 0));
        assert_eq!((r.min(), r.max(), r.sum()), (0, 0, 0));
        assert_eq!(r.quantile(50), 0);
        assert!(r.exact());
    }
}
