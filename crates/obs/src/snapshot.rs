//! Point-in-time views of the metrics registry, with deterministic
//! Prometheus-style and JSON renderings.
//!
//! Both renderings iterate `BTreeMap`s and format integers only, so two
//! registries with equal contents produce byte-identical text — the property
//! `tests/obs_metrics.rs` pins across same-seed runs and serial-vs-parallel
//! sweeps.

use crate::histogram::{bucket_upper, Histogram, HISTOGRAM_BUCKETS};
use crate::reservoir::Reservoir;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Last-set and high-water values of a gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    pub last: u64,
    pub max: u64,
}

/// Frozen histogram: counts, extrema, and pre-computed quantile estimates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn of(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(50),
            p90: h.quantile(90),
            p99: h.quantile(99),
            buckets: (0..HISTOGRAM_BUCKETS)
                .filter(|&i| h.buckets()[i] > 0)
                .map(|i| (bucket_upper(i), h.buckets()[i]))
                .collect(),
        }
    }

    /// Mean in the histogram's unit, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Frozen reservoir sample: exact aggregates over everything observed, plus
/// quantiles over the retained (bounded) sample. `exact` says whether the
/// quantiles are true order statistics (the reservoir never overflowed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReservoirSnapshot {
    pub seen: u64,
    pub kept: u64,
    pub exact: bool,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl ReservoirSnapshot {
    pub fn of(r: &Reservoir) -> Self {
        ReservoirSnapshot {
            seen: r.seen(),
            kept: r.kept() as u64,
            exact: r.exact(),
            sum: r.sum(),
            min: r.min(),
            max: r.max(),
            p50: r.quantile(50),
            p90: r.quantile(90),
            p99: r.quantile(99),
        }
    }

    /// Mean over everything ever observed, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.seen).unwrap_or(0)
    }
}

/// A complete, ordered snapshot of every registered metric.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub reservoirs: BTreeMap<String, ReservoirSnapshot>,
    /// Spans recorded (open + closed).
    pub spans: u64,
}

/// Mangle a dotted metric name into a Prometheus-legal identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("hpcci_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a string for embedding in JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<GaugeSnapshot> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    pub fn reservoir(&self, name: &str) -> Option<ReservoirSnapshot> {
        self.reservoirs.get(name).copied()
    }

    /// Prometheus-style text exposition. Deterministic: names are sorted and
    /// every sample is an integer.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {value}");
        }
        for (name, g) in &self.gauges {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", g.last);
            let _ = writeln!(out, "{p}_max {}", g.max);
        }
        for (name, h) in &self.histograms {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} histogram");
            let mut cumulative = 0u64;
            for &(upper, count) in &h.buckets {
                cumulative += count;
                let _ = writeln!(out, "{p}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{p}_sum {}", h.sum);
            let _ = writeln!(out, "{p}_count {}", h.count);
        }
        for (name, r) in &self.reservoirs {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} summary");
            let _ = writeln!(out, "{p}{{quantile=\"0.5\"}} {}", r.p50);
            let _ = writeln!(out, "{p}{{quantile=\"0.9\"}} {}", r.p90);
            let _ = writeln!(out, "{p}{{quantile=\"0.99\"}} {}", r.p99);
            let _ = writeln!(out, "{p}_sum {}", r.sum);
            let _ = writeln!(out, "{p}_count {}", r.seen);
        }
        out
    }

    /// JSON dump. Deterministic: ordered keys, integers only.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
            first = false;
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, g) in &self.gauges {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"last\": {}, \"max\": {}}}",
                json_escape(name),
                g.last,
                g.max
            );
            first = false;
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99
            );
            for (i, (upper, count)) in h.buckets.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{upper}, {count}]");
            }
            out.push_str("]}");
            first = false;
        }
        out.push_str("\n  },\n  \"reservoirs\": {");
        first = true;
        for (name, r) in &self.reservoirs {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"seen\": {}, \"kept\": {}, \"exact\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json_escape(name),
                r.seen,
                r.kept,
                r.exact,
                r.sum,
                r.min,
                r.max,
                r.p50,
                r.p90,
                r.p99
            );
            first = false;
        }
        let _ = write!(out, "\n  }},\n  \"spans\": {}\n}}\n", self.spans);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut h = Histogram::new();
        h.observe(5);
        h.observe(700);
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("faas.tasks_submitted".into(), 42);
        snap.gauges
            .insert("sched.queue_depth".into(), GaugeSnapshot { last: 1, max: 9 });
        snap.histograms
            .insert("faas.task_latency_us".into(), HistogramSnapshot::of(&h));
        snap.spans = 3;
        snap
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE hpcci_faas_tasks_submitted counter"));
        assert!(text.contains("hpcci_faas_tasks_submitted 42"));
        assert!(text.contains("hpcci_sched_queue_depth_max 9"));
        assert!(text.contains("hpcci_faas_task_latency_us_bucket{le=\"7\"} 1"));
        assert!(text.contains("hpcci_faas_task_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hpcci_faas_task_latency_us_sum 705"));
    }

    #[test]
    fn json_dump_is_deterministic() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"faas.tasks_submitted\": 42"));
        assert!(a.contains("\"p50\":"));
        assert!(a.contains("\"spans\": 3"));
    }

    #[test]
    fn lookups() {
        let snap = sample();
        assert_eq!(snap.counter("faas.tasks_submitted"), 42);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("sched.queue_depth").unwrap().max, 9);
        let h = snap.histogram("faas.task_latency_us").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 352);
    }
}
