//! The metrics registry behind an [`crate::Obs`] handle.
//!
//! Names are interned [`Sym`]s: instrumented components pre-intern their
//! per-instance names once (e.g. `sched.faster.queue_wait_us`) and record
//! against the shared allocation thereafter, so the recording hot path never
//! allocates. `&'static str` names bypass the interner entirely.

use crate::histogram::Histogram;
use crate::reservoir::Reservoir;
use crate::snapshot::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, ReservoirSnapshot};
use hpcci_sim::{Interner, IntoSym, SimTime, Sym, Trace};
use std::collections::BTreeMap;

/// Core metric names pre-registered on every enabled registry so snapshots
/// always expose the acceptance-critical series, observed or not.
pub const CORE_HISTOGRAMS: &[&str] = &[
    "ci.step_replay_us",
    "faas.pilot_provision_us",
    "faas.task_exec_us",
    "faas.task_latency_us",
    "sched.backfill_wait_us",
    "sched.queue_wait_us",
];

/// Pre-registered counters (see [`CORE_HISTOGRAMS`]).
pub const CORE_COUNTERS: &[&str] = &[
    "action.failovers",
    "action.infra_failures",
    "action.retries",
    "action.token_refreshes",
    "auth.token_refreshes",
    "auth.tokens_issued",
    "ci.artifact_logical_bytes",
    "ci.artifact_stored_bytes",
    "ci.runs_total",
    "ci.step_cache_hits",
    "ci.step_cache_misses",
    "ci.step_cache_uncacheable",
    "faas.pilot_reprovisions",
    "faas.tasks_completed",
    "faas.tasks_submitted",
    "faults.injected",
    "sim.cache_probes",
    "sim.cache_refresh_hot_hits",
    "sim.cache_refreshes",
    "sim.cache_volatile_probes",
    "sim.events_dispatched",
];

/// Last-set and high-water tracking for a gauge.
#[derive(Clone, Copy, Debug, Default)]
struct Gauge {
    last: u64,
    max: u64,
}

/// One recorded span: a named interval in simulation time.
#[derive(Clone, Debug)]
pub struct SpanRec {
    pub name: Sym,
    pub start: SimTime,
    pub end: Option<SimTime>,
}

/// Identifier returned by `span_start`; `SpanId::NONE` is handed out by
/// disabled handles and ignored by `span_end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(pub usize);

impl SpanId {
    pub const NONE: SpanId = SpanId(usize::MAX);
}

/// The mutable metrics store. Wrapped in `Arc<Mutex<_>>` by [`crate::Obs`];
/// use the handle, not this type, from instrumented code.
#[derive(Default)]
pub struct Registry {
    interner: Interner,
    counters: BTreeMap<Sym, u64>,
    gauges: BTreeMap<Sym, Gauge>,
    histograms: BTreeMap<Sym, Histogram>,
    reservoirs: BTreeMap<Sym, Reservoir>,
    spans: Vec<SpanRec>,
    trace: Trace,
}

impl Registry {
    pub fn new() -> Self {
        let mut r = Registry::default();
        for name in CORE_COUNTERS {
            r.counters.insert(Sym::Static(name), 0);
        }
        for name in CORE_HISTOGRAMS {
            r.histograms.insert(Sym::Static(name), Histogram::new());
        }
        r
    }

    pub fn intern(&mut self, name: &str) -> Sym {
        self.interner.intern(name)
    }

    pub fn add(&mut self, name: impl IntoSym, delta: u64) {
        let sym = name.into_sym(&mut self.interner);
        *self.counters.entry(sym).or_insert(0) += delta;
    }

    /// Overwrite a counter with an absolute value (for counters harvested
    /// from component-local fields at snapshot time).
    pub fn set_counter(&mut self, name: impl IntoSym, value: u64) {
        let sym = name.into_sym(&mut self.interner);
        self.counters.insert(sym, value);
    }

    pub fn gauge_set(&mut self, name: impl IntoSym, value: u64) {
        let sym = name.into_sym(&mut self.interner);
        let g = self.gauges.entry(sym).or_default();
        g.last = value;
        g.max = g.max.max(value);
    }

    pub fn observe(&mut self, name: impl IntoSym, value: u64) {
        let sym = name.into_sym(&mut self.interner);
        self.histograms.entry(sym).or_default().observe(value);
    }

    /// Record into a bounded reservoir sample (see [`Reservoir`]): exact
    /// order-statistic quantiles while small, O(1) memory at any scale.
    pub fn sample(&mut self, name: impl IntoSym, value: u64) {
        let sym = name.into_sym(&mut self.interner);
        self.reservoirs.entry(sym).or_default().observe(value);
    }

    pub fn span_start(&mut self, name: impl IntoSym, detail: impl Into<String>, at: SimTime) -> SpanId {
        let name = name.into_sym(&mut self.interner);
        let id = SpanId(self.spans.len());
        self.trace.record(at, name.clone(), "span.start", detail);
        self.spans.push(SpanRec {
            name,
            start: at,
            end: None,
        });
        id
    }

    pub fn span_end(&mut self, id: SpanId, at: SimTime) {
        if id == SpanId::NONE {
            return;
        }
        if let Some(span) = self.spans.get_mut(id.0) {
            span.end = Some(at);
            let d = at.since(span.start);
            let name = span.name.clone();
            self.trace
                .record(at, name, "span.end", format!("{d}"));
        }
    }

    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, g)| {
                    (
                        k.to_string(),
                        GaugeSnapshot {
                            last: g.last,
                            max: g.max,
                        },
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.to_string(), HistogramSnapshot::of(h)))
                .collect(),
            reservoirs: self
                .reservoirs
                .iter()
                .map(|(k, r)| (k.to_string(), ReservoirSnapshot::of(r)))
                .collect(),
            spans: self.spans.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_metrics_pre_registered() {
        let snap = Registry::new().snapshot();
        for name in CORE_COUNTERS {
            assert!(snap.counters.contains_key(*name), "missing counter {name}");
        }
        for name in CORE_HISTOGRAMS {
            assert!(
                snap.histograms.contains_key(*name),
                "missing histogram {name}"
            );
        }
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let mut r = Registry::new();
        r.add("faas.tasks_submitted", 2);
        r.add("faas.tasks_submitted", 1);
        r.set_counter("sim.events_dispatched", 777);
        r.gauge_set("sched.queue_depth", 5);
        r.gauge_set("sched.queue_depth", 2);
        r.observe("faas.task_latency_us", 1_000);
        let snap = r.snapshot();
        assert_eq!(snap.counter("faas.tasks_submitted"), 3);
        assert_eq!(snap.counter("sim.events_dispatched"), 777);
        let g = snap.gauge("sched.queue_depth").unwrap();
        assert_eq!((g.last, g.max), (2, 5));
        assert_eq!(snap.histogram("faas.task_latency_us").unwrap().count, 1);
    }

    #[test]
    fn interned_names_share_series() {
        let mut r = Registry::new();
        let sym = r.intern("sched.faster.queue_wait_us");
        r.observe(&sym, 10);
        r.observe(sym, 20);
        r.observe("sched.faster.queue_wait_us".to_string(), 30);
        assert_eq!(
            r.snapshot()
                .histogram("sched.faster.queue_wait_us")
                .unwrap()
                .count,
            3
        );
    }

    #[test]
    fn spans_record_into_trace() {
        let mut r = Registry::new();
        let id = r.span_start("ci.run", "run=1", SimTime::from_secs(1));
        r.span_end(id, SimTime::from_secs(4));
        r.span_end(SpanId::NONE, SimTime::from_secs(9));
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.spans()[0].end, Some(SimTime::from_secs(4)));
        assert_eq!(r.trace().of_kind("span.start").count(), 1);
        assert_eq!(r.trace().of_kind("span.end").count(), 1);
        assert_eq!(r.snapshot().spans, 1);
    }
}
