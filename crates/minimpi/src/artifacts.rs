//! The KaMPIng reproducibility artifacts, downscaled (§6.3).
//!
//! The original artifacts are bash scripts run inside a published container.
//! Each artifact here is a real experiment over the minimpi runtime that
//! checks the corresponding KaMPIng claim at laptop scale:
//!
//! * `allreduce` — ergonomic bindings add no measurable overhead vs raw
//!   calls (the headline zero-overhead claim);
//! * `alltoall` — correctness of the owning alltoallv binding;
//! * `sample-sort` — the paper's sorting application: a distributed sample
//!   sort built on the bindings reproduces the sequential sort;
//! * `vector-bool` — the `vector<bool>` special case broadcasts correctly.

use crate::bindings::Kamping;
use crate::comm::{run_mpi, ReduceOp};
use hpcci_faas::{CommandRegistry, ExecOutcome};
use std::time::Instant;

/// The artifact suite, in the order the workflow runs it.
pub const KAMPING_ARTIFACTS: [&str; 4] = ["allreduce", "alltoall", "sample-sort", "vector-bool"];

/// Outcome of one artifact experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactResult {
    pub name: String,
    pub passed: bool,
    pub details: String,
}

/// Run one artifact by name.
pub fn run_artifact(name: &str) -> ArtifactResult {
    match name {
        "allreduce" => allreduce_overhead(),
        "alltoall" => alltoall_correctness(),
        "sample-sort" => sample_sort(),
        "vector-bool" => vector_bool(),
        other => ArtifactResult {
            name: other.to_string(),
            passed: false,
            details: format!("unknown artifact `{other}`"),
        },
    }
}

/// Headline claim: the ergonomic binding computes exactly what the raw call
/// computes, with near-zero overhead. The artifact gates on *correctness*
/// (identical results) and reports the measured wall-clock ratio for the
/// record; the statistical timing comparison lives in the
/// `kamping_overhead` criterion bench, where warm-up and outlier handling
/// make the number meaningful even on a loaded CI machine.
fn allreduce_overhead() -> ArtifactResult {
    const RANKS: usize = 4;
    const LEN: usize = 4096;
    const REPS: usize = 30;

    let (time_raw, raw_results) = {
        let t0 = Instant::now();
        let results = run_mpi(RANKS, |rank| {
            let data = vec![rank.rank as f64; LEN];
            let mut last = Vec::new();
            for _ in 0..REPS {
                last = rank.allreduce_f64(&data, ReduceOp::Sum);
            }
            last
        });
        (t0.elapsed().as_secs_f64(), results)
    };
    let (time_wrapped, wrapped_results) = {
        let t0 = Instant::now();
        let results = run_mpi(RANKS, |rank| {
            let data = vec![rank.rank as f64; LEN];
            let mut k = Kamping::new(rank);
            let mut last = Vec::new();
            for _ in 0..REPS {
                last = k.allreduce_sum(&data);
            }
            last
        });
        (t0.elapsed().as_secs_f64(), results)
    };
    let ratio = time_wrapped / time_raw.max(1e-9);
    let correct = raw_results == wrapped_results
        && raw_results.iter().all(|r| r.len() == LEN && r[0] == 6.0);
    ArtifactResult {
        name: "allreduce".to_string(),
        passed: correct,
        details: format!(
            "raw={:.4}s wrapped={:.4}s ratio={:.3}; results identical across {} ranks \
             (claim: near-zero overhead — see `cargo bench --bench kamping_overhead`)",
            time_raw, time_wrapped, ratio, RANKS
        ),
    }
}

fn alltoall_correctness() -> ArtifactResult {
    const RANKS: usize = 4;
    let results = run_mpi(RANKS, |rank| {
        let chunks: Vec<Vec<i64>> = (0..RANKS)
            .map(|dst| vec![(rank.rank * 100 + dst) as i64; 3])
            .collect();
        Kamping::new(rank).alltoallv(&chunks)
    });
    let mut ok = true;
    for (r, got) in results.iter().enumerate() {
        for (s, chunk) in got.iter().enumerate() {
            ok &= *chunk == vec![(s * 100 + r) as i64; 3];
        }
    }
    ArtifactResult {
        name: "alltoall".to_string(),
        passed: ok,
        details: format!("{RANKS} ranks exchanged 3-element chunks, permutation verified"),
    }
}

/// Distributed sample sort: rank-local data, sampled splitters broadcast
/// from root, alltoall redistribution, local sort, gather — must equal the
/// sequential sort of the union.
fn sample_sort() -> ArtifactResult {
    const RANKS: usize = 4;
    const PER_RANK: usize = 500;
    let results = run_mpi(RANKS, |rank| {
        // Deterministic pseudo-random local data.
        let mut local: Vec<i64> = (0..PER_RANK)
            .map(|i| {
                let x = (rank.rank * PER_RANK + i) as i64;
                (x.wrapping_mul(2654435761) % 10_000).abs()
            })
            .collect();
        let mut k = Kamping::new(rank);

        // 1. Sample splitters: every rank contributes its local quartiles.
        local.sort_unstable();
        let samples: Vec<i64> = (1..RANKS)
            .map(|q| local[q * PER_RANK / RANKS])
            .collect();
        let (all_samples, _) = k.gatherv(0, &samples);
        let splitters = if k.rank() == 0 {
            let mut s = all_samples;
            s.sort_unstable();
            // Pick RANKS-1 evenly spaced splitters.
            (1..RANKS).map(|q| s[q * s.len() / RANKS - 1]).collect::<Vec<_>>()
        } else {
            Vec::new()
        };
        let splitters = if k.rank() == 0 {
            k.bcast(0, Some(&splitters))
        } else {
            k.bcast::<i64>(0, None)
        };

        // 2. Partition local data by splitter and redistribute.
        let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); RANKS];
        for &v in &local {
            let dst = splitters.iter().position(|&s| v <= s).unwrap_or(RANKS - 1);
            buckets[dst].push(v);
        }
        let received = k.alltoallv(&buckets);

        // 3. Local sort of the received range.
        let mut mine: Vec<i64> = received.into_iter().flatten().collect();
        mine.sort_unstable();

        // 4. Gather the globally sorted sequence at root.
        let (sorted, _) = k.gatherv(0, &mine);
        sorted
    });

    // Root's gathered output must equal the sequential sort of all input.
    let mut expected: Vec<i64> = (0..RANKS * PER_RANK)
        .map(|x| ((x as i64).wrapping_mul(2654435761) % 10_000).abs())
        .collect();
    expected.sort_unstable();
    let passed = results[0] == expected;
    ArtifactResult {
        name: "sample-sort".to_string(),
        passed,
        details: format!(
            "{} elements across {RANKS} ranks; distributed output {} sequential sort",
            RANKS * PER_RANK,
            if passed { "matches" } else { "DIVERGES from" }
        ),
    }
}

fn vector_bool() -> ArtifactResult {
    let pattern: Vec<bool> = (0..20).map(|i| i % 3 == 0 || i % 7 == 0).collect();
    let expected = pattern.clone();
    let results = run_mpi(3, move |rank| {
        let mut k = Kamping::new(rank);
        if k.rank() == 0 {
            k.bcast_bools(0, Some(&pattern))
        } else {
            k.bcast_bools(0, None)
        }
    });
    let passed = results.iter().all(|r| *r == expected);
    ArtifactResult {
        name: "vector-bool".to_string(),
        passed,
        details: "bit-packed bool broadcast across 3 ranks".to_string(),
    }
}

/// Install the artifact runner at a federation site: `bash
/// artifacts/<name>.sh` runs the corresponding experiment. Mirrors §6.3: the
/// scripts must run inside the published container, so the handler fails
/// when the worker is not containerized.
pub fn install_artifacts(commands: &mut CommandRegistry) {
    commands.register("bash", |env| {
        let Some(script) = env.args().split_whitespace().next() else {
            return ExecOutcome::fail("bash: missing script", 0.05);
        };
        let Some(name) = script
            .strip_prefix("artifacts/")
            .and_then(|s| s.strip_suffix(".sh"))
        else {
            return ExecOutcome::fail(format!("bash: {script}: No such file or directory"), 0.05);
        };
        if env.container.is_none() {
            return ExecOutcome::fail(
                "artifact scripts must run inside the kamping-reproducibility container",
                0.1,
            );
        }
        let result = run_artifact(name);
        // Artifact cost model: the original experiments run minutes on a
        // cloud VM; downscaled reference costs per artifact.
        let work = match name {
            "allreduce" => 45.0,
            "alltoall" => 20.0,
            "sample-sort" => 90.0,
            "vector-bool" => 10.0,
            _ => 1.0,
        };
        let stdout = format!(
            "[{}] {}\n{}\n",
            result.name,
            if result.passed { "PASSED" } else { "FAILED" },
            result.details
        );
        if result.passed {
            ExecOutcome::ok(stdout, work)
        } else {
            ExecOutcome {
                stdout: stdout.clone(),
                stderr: format!("artifact {} failed", result.name),
                result: Err(format!("artifact {} failed", result.name)),
                work: hpcci_cluster::WorkUnits::secs(work),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::{NodeRole, Site};
    use hpcci_faas::SiteRuntime;
    use hpcci_sim::{DetRng, SimTime};

    #[test]
    fn all_artifacts_pass() {
        for name in KAMPING_ARTIFACTS {
            let r = run_artifact(name);
            assert!(r.passed, "{name}: {}", r.details);
        }
    }

    #[test]
    fn unknown_artifact_fails_cleanly() {
        let r = run_artifact("nonexistent");
        assert!(!r.passed);
    }

    fn execute(cmd: &str, container: Option<String>) -> ExecOutcome {
        let mut rt = SiteRuntime::new(Site::chameleon_tacc());
        install_artifacts(&mut rt.commands);
        let account = rt.site.add_account("cc", "chameleon");
        let cred = hpcci_cluster::Cred::of(&account);
        let mut rng = DetRng::seed_from_u64(1);
        rt.execute(cmd, &account, &cred, NodeRole::Login, "chi", SimTime::ZERO, &mut rng, container.as_deref())
    }

    #[test]
    fn bash_handler_runs_artifacts_in_container() {
        let out = execute(
            "bash artifacts/vector-bool.sh",
            Some("ghcr.io/kamping-site/kamping-reproducibility:v1".into()),
        );
        assert!(out.result.is_ok(), "{}", out.stderr);
        assert!(out.stdout.contains("[vector-bool] PASSED"));
    }

    #[test]
    fn bash_handler_requires_container() {
        let out = execute("bash artifacts/vector-bool.sh", None);
        assert!(out.result.is_err());
        assert!(out.stderr.contains("container"));
    }

    #[test]
    fn bash_handler_rejects_unknown_scripts() {
        let out = execute("bash run_everything.sh", Some("img:v1".into()));
        assert!(out.result.is_err());
        assert!(out.stderr.contains("No such file"));
    }
}
