//! The message-passing runtime: ranks are threads, messages are bytes.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;

/// Plain-old-data element types that can cross rank boundaries.
pub trait Datum: Copy + Send + 'static {
    fn write(&self, out: &mut Vec<u8>);
    fn read(bytes: &[u8]) -> (Self, usize);
    const SIZE: usize;
}

macro_rules! impl_datum {
    ($t:ty, $n:expr) => {
        impl Datum for $t {
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read(bytes: &[u8]) -> (Self, usize) {
                let mut buf = [0u8; $n];
                buf.copy_from_slice(&bytes[..$n]);
                (<$t>::from_le_bytes(buf), $n)
            }
            const SIZE: usize = $n;
        }
    };
}

impl_datum!(u8, 1);
impl_datum!(i32, 4);
impl_datum!(u32, 4);
impl_datum!(i64, 8);
impl_datum!(u64, 8);
impl_datum!(f64, 8);

fn encode<T: Datum>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::SIZE);
    for d in data {
        d.write(&mut out);
    }
    out
}

fn decode<T: Datum>(bytes: &[u8]) -> Vec<T> {
    let mut out = Vec::with_capacity(bytes.len() / T::SIZE);
    let mut ix = 0;
    while ix < bytes.len() {
        let (v, n) = T::read(&bytes[ix..]);
        out.push(v);
        ix += n;
    }
    out
}

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn combine_f64(&self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    fn combine_i64(&self, a: i64, b: i64) -> i64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

type Packet = (usize, u32, Vec<u8>); // (source, tag, payload)

/// One rank's endpoint into the communicator.
pub struct Rank {
    pub rank: usize,
    pub size: usize,
    senders: Vec<Sender<Packet>>,
    rx: Receiver<Packet>,
    /// Received packets that did not match a pending recv.
    unexpected: VecDeque<Packet>,
}

impl Rank {
    /// Send `data` to `dst` with `tag`. Non-blocking (buffered channels).
    pub fn send<T: Datum>(&self, dst: usize, tag: u32, data: &[T]) {
        assert!(dst < self.size, "rank {dst} out of range");
        self.senders[dst]
            .send((self.rank, tag, encode(data)))
            .expect("receiver thread alive for the communicator's lifetime");
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv<T: Datum>(&mut self, src: usize, tag: u32) -> Vec<T> {
        // Check the unexpected queue first.
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|(s, t, _)| *s == src && *t == tag)
        {
            let (_, _, payload) = self.unexpected.remove(pos).expect("index valid");
            return decode(&payload);
        }
        loop {
            let packet = self.rx.recv().expect("senders alive");
            if packet.0 == src && packet.1 == tag {
                return decode(&packet.2);
            }
            self.unexpected.push_back(packet);
        }
    }

    /// Barrier: gather-to-0 then broadcast.
    pub fn barrier(&mut self) {
        const TAG: u32 = u32::MAX - 1;
        if self.rank == 0 {
            for src in 1..self.size {
                let _: Vec<u8> = self.recv(src, TAG);
            }
            for dst in 1..self.size {
                self.send::<u8>(dst, TAG, &[1]);
            }
        } else {
            self.send::<u8>(0, TAG, &[1]);
            let _: Vec<u8> = self.recv(0, TAG);
        }
    }

    /// Broadcast `data` from `root`; every rank returns the root's data.
    pub fn broadcast<T: Datum>(&mut self, root: usize, data: &[T]) -> Vec<T> {
        const TAG: u32 = u32::MAX - 2;
        if self.rank == root {
            for dst in 0..self.size {
                if dst != root {
                    self.send(dst, TAG, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root, TAG)
        }
    }

    /// Gather every rank's buffer at `root` (concatenated by rank order);
    /// non-root ranks return an empty Vec.
    pub fn gather<T: Datum>(&mut self, root: usize, data: &[T]) -> Vec<T> {
        const TAG: u32 = u32::MAX - 3;
        if self.rank == root {
            let mut out = Vec::new();
            for src in 0..self.size {
                if src == root {
                    out.extend_from_slice(data);
                } else {
                    out.extend(self.recv::<T>(src, TAG));
                }
            }
            out
        } else {
            self.send(root, TAG, data);
            Vec::new()
        }
    }

    /// Allgather: gather at 0, broadcast the concatenation.
    pub fn allgather<T: Datum>(&mut self, data: &[T]) -> Vec<T> {
        let gathered = self.gather(0, data);
        self.broadcast(0, &gathered)
    }

    /// Alltoall: `chunks[i]` goes to rank `i`; returns the chunks received,
    /// ordered by source rank.
    pub fn alltoall<T: Datum>(&mut self, chunks: &[Vec<T>]) -> Vec<Vec<T>> {
        const TAG: u32 = u32::MAX - 4;
        assert_eq!(chunks.len(), self.size, "one chunk per destination");
        for (dst, chunk) in chunks.iter().enumerate() {
            if dst != self.rank {
                self.send(dst, TAG, chunk);
            }
        }
        (0..self.size)
            .map(|src| {
                if src == self.rank {
                    chunks[self.rank].clone()
                } else {
                    self.recv(src, TAG)
                }
            })
            .collect()
    }

    /// Element-wise reduce of f64 buffers to `root`.
    pub fn reduce_f64(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Vec<f64> {
        const TAG: u32 = u32::MAX - 5;
        if self.rank == root {
            let mut acc = data.to_vec();
            for src in 0..self.size {
                if src == root {
                    continue;
                }
                let contrib: Vec<f64> = self.recv(src, TAG);
                assert_eq!(contrib.len(), acc.len(), "reduce buffers must match");
                for (a, c) in acc.iter_mut().zip(contrib) {
                    *a = op.combine_f64(*a, c);
                }
            }
            acc
        } else {
            self.send(root, TAG, data);
            Vec::new()
        }
    }

    /// Element-wise allreduce of f64 buffers.
    pub fn allreduce_f64(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let reduced = self.reduce_f64(0, data, op);
        self.broadcast(0, &reduced)
    }

    /// Element-wise reduce of i64 buffers to `root`.
    pub fn reduce_i64(&mut self, root: usize, data: &[i64], op: ReduceOp) -> Vec<i64> {
        const TAG: u32 = u32::MAX - 6;
        if self.rank == root {
            let mut acc = data.to_vec();
            for src in 0..self.size {
                if src == root {
                    continue;
                }
                let contrib: Vec<i64> = self.recv(src, TAG);
                assert_eq!(contrib.len(), acc.len(), "reduce buffers must match");
                for (a, c) in acc.iter_mut().zip(contrib) {
                    *a = op.combine_i64(*a, c);
                }
            }
            acc
        } else {
            self.send(root, TAG, data);
            Vec::new()
        }
    }

    /// Element-wise allreduce of i64 buffers.
    pub fn allreduce_i64(&mut self, data: &[i64], op: ReduceOp) -> Vec<i64> {
        let reduced = self.reduce_i64(0, data, op);
        self.broadcast(0, &reduced)
    }
}

/// Launch `size` ranks, run `f` on each in its own thread, and return each
/// rank's result ordered by rank. Panics in any rank propagate.
pub fn run_mpi<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    assert!(size > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded::<Packet>();
        senders.push(tx);
        receivers.push(rx);
    }
    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank_ix, rx) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let mut rank = Rank {
                    rank: rank_ix,
                    size,
                    senders,
                    rx,
                    unexpected: VecDeque::new(),
                };
                f(&mut rank)
            }));
        }
        for (ix, h) in handles.into_iter().enumerate() {
            results[ix] = Some(h.join().expect("rank thread panicked"));
        }
    })
    .expect("communicator scope");
    results.into_iter().map(|r| r.expect("joined")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let results = run_mpi(2, |rank| {
            if rank.rank == 0 {
                rank.send(1, 7, &[1.0f64, 2.0, 3.0]);
                rank.recv::<f64>(1, 8)
            } else {
                let got: Vec<f64> = rank.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                rank.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_with_out_of_order_delivery() {
        let results = run_mpi(2, |rank| {
            if rank.rank == 0 {
                rank.send(1, 1, &[10i64]);
                rank.send(1, 2, &[20i64]);
                Vec::new()
            } else {
                // Receive in reverse tag order: tag-2 first.
                let b: Vec<i64> = rank.recv(0, 2);
                let a: Vec<i64> = rank.recv(0, 1);
                vec![b[0], a[0]]
            }
        });
        assert_eq!(results[1], vec![20, 10]);
    }

    #[test]
    fn broadcast_reaches_all() {
        let results = run_mpi(4, |rank| {
            let data = if rank.rank == 2 { vec![42i64, 43] } else { vec![] };
            rank.broadcast(2, &data)
        });
        for r in results {
            assert_eq!(r, vec![42, 43]);
        }
    }

    #[test]
    fn gather_concatenates_by_rank() {
        let results = run_mpi(3, |rank| rank.gather(0, &[rank.rank as i64, -1]));
        assert_eq!(results[0], vec![0, -1, 1, -1, 2, -1]);
        assert!(results[1].is_empty());
    }

    #[test]
    fn allgather_everywhere() {
        let results = run_mpi(3, |rank| rank.allgather(&[rank.rank as u32]));
        for r in results {
            assert_eq!(r, vec![0, 1, 2]);
        }
    }

    #[test]
    fn alltoall_permutes() {
        let results = run_mpi(3, |rank| {
            let chunks: Vec<Vec<i64>> = (0..3)
                .map(|dst| vec![(rank.rank * 10 + dst) as i64])
                .collect();
            rank.alltoall(&chunks)
        });
        // Rank r receives chunk [s*10 + r] from each source s.
        for (r, got) in results.iter().enumerate() {
            let expect: Vec<Vec<i64>> = (0..3).map(|s| vec![(s * 10 + r) as i64]).collect();
            assert_eq!(*got, expect);
        }
    }

    #[test]
    fn allreduce_sum_min_max() {
        let sums = run_mpi(4, |rank| {
            rank.allreduce_f64(&[rank.rank as f64, 1.0], ReduceOp::Sum)
        });
        for s in sums {
            assert_eq!(s, vec![6.0, 4.0]);
        }
        let mins = run_mpi(4, |rank| rank.allreduce_i64(&[rank.rank as i64], ReduceOp::Min));
        let maxs = run_mpi(4, |rank| rank.allreduce_i64(&[rank.rank as i64], ReduceOp::Max));
        assert!(mins.iter().all(|v| v == &vec![0]));
        assert!(maxs.iter().all(|v| v == &vec![3]));
    }

    #[test]
    fn barrier_synchronizes() {
        // All ranks increment a shared counter before the barrier; after the
        // barrier every rank must observe the full count.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let observed = run_mpi(6, |rank| {
            counter.fetch_add(1, Ordering::SeqCst);
            rank.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert!(observed.iter().all(|&o| o == 6), "{observed:?}");
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let results = run_mpi(1, |rank| {
            rank.barrier();
            let b = rank.broadcast(0, &[5i64]);
            let g = rank.allgather(&[7i64]);
            let r = rank.allreduce_i64(&[3], ReduceOp::Sum);
            (b, g, r)
        });
        assert_eq!(results[0], (vec![5], vec![7], vec![3]));
    }

    #[test]
    fn datum_roundtrip() {
        let original = vec![1.5f64, -2.25, 1e300];
        assert_eq!(decode::<f64>(&encode(&original)), original);
        let ints = vec![i64::MIN, 0, i64::MAX];
        assert_eq!(decode::<i64>(&encode(&ints)), ints);
        let bytes = vec![0u8, 255, 7];
        assert_eq!(decode::<u8>(&encode(&bytes)), bytes);
    }
}
