//! KaMPIng-style ergonomic bindings.
//!
//! KaMPIng's pitch: raw MPI forces manual buffer management and size
//! exchanges; ergonomic bindings can own allocation and metadata *without
//! measurable overhead*. [`Kamping`] wraps a [`Rank`] with owning,
//! variable-length-aware operations; the `kamping_overhead` bench reproduces
//! the zero-overhead claim by timing raw vs wrapped collectives.

use crate::comm::{Datum, Rank, ReduceOp};

/// The ergonomic wrapper (named after the library it models).
pub struct Kamping<'a> {
    rank: &'a mut Rank,
}

impl<'a> Kamping<'a> {
    pub fn new(rank: &'a mut Rank) -> Kamping<'a> {
        Kamping { rank }
    }

    pub fn rank(&self) -> usize {
        self.rank.rank
    }

    pub fn size(&self) -> usize {
        self.rank.size
    }

    /// Allreduce with owned result — `comm.allreduce(send_buf(v), op(plus))`.
    pub fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64> {
        self.rank.allreduce_f64(data, ReduceOp::Sum)
    }

    pub fn allreduce_min(&mut self, data: &[i64]) -> Vec<i64> {
        self.rank.allreduce_i64(data, ReduceOp::Min)
    }

    pub fn allreduce_max(&mut self, data: &[i64]) -> Vec<i64> {
        self.rank.allreduce_i64(data, ReduceOp::Max)
    }

    /// Variable-length gather (`gatherv`): raw MPI requires a separate size
    /// exchange + displacement arithmetic; the binding owns all of it.
    /// Root receives `(flat data, per-rank counts)`; others get empties.
    pub fn gatherv<T: Datum>(&mut self, root: usize, data: &[T]) -> (Vec<T>, Vec<usize>) {
        // Size exchange.
        let counts: Vec<i64> = self.rank.gather(root, &[data.len() as i64]);
        let flat = self.rank.gather(root, data);
        if self.rank.rank == root {
            (flat, counts.into_iter().map(|c| c as usize).collect())
        } else {
            (Vec::new(), Vec::new())
        }
    }

    /// Variable-length alltoall (`alltoallv`) with owned result.
    pub fn alltoallv<T: Datum>(&mut self, chunks: &[Vec<T>]) -> Vec<Vec<T>> {
        self.rank.alltoall(chunks)
    }

    /// Broadcast with owned result; non-root ranks pass no buffer at all.
    pub fn bcast<T: Datum>(&mut self, root: usize, data: Option<&[T]>) -> Vec<T> {
        let buf = data.unwrap_or(&[]);
        self.rank.broadcast(root, buf)
    }

    /// The `vector<bool>` case from the KaMPIng artifacts: C++'s bit-packed
    /// vector needs special handling; here the binding packs bools into
    /// bytes for transport and unpacks on receipt.
    pub fn bcast_bools(&mut self, root: usize, data: Option<&[bool]>) -> Vec<bool> {
        let packed: Vec<u8> = match data {
            Some(bools) => {
                let mut bytes = vec![bools.len() as u8]; // small-demo length prefix
                let mut acc = 0u8;
                for (i, &b) in bools.iter().enumerate() {
                    if b {
                        acc |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        bytes.push(acc);
                        acc = 0;
                    }
                }
                if bools.len() % 8 != 0 {
                    bytes.push(acc);
                }
                bytes
            }
            None => Vec::new(),
        };
        let received = self.rank.broadcast(root, &packed);
        let n = received.first().copied().unwrap_or(0) as usize;
        (0..n)
            .map(|i| received[1 + i / 8] & (1 << (i % 8)) != 0)
            .collect()
    }

    pub fn barrier(&mut self) {
        self.rank.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_mpi;

    #[test]
    fn allreduce_matches_raw() {
        let results = run_mpi(4, |rank| {
            let data = vec![rank.rank as f64; 8];
            let raw = rank.allreduce_f64(&data, ReduceOp::Sum);
            let wrapped = Kamping::new(rank).allreduce_sum(&data);
            (raw, wrapped)
        });
        for (raw, wrapped) in results {
            assert_eq!(raw, wrapped);
            assert_eq!(raw, vec![6.0; 8]);
        }
    }

    #[test]
    fn gatherv_handles_ragged_sizes() {
        let results = run_mpi(3, |rank| {
            let data: Vec<i64> = (0..=rank.rank as i64).collect(); // sizes 1,2,3
            Kamping::new(rank).gatherv(0, &data)
        });
        let (flat, counts) = &results[0];
        assert_eq!(*counts, vec![1, 2, 3]);
        assert_eq!(*flat, vec![0, 0, 1, 0, 1, 2]);
        assert!(results[1].0.is_empty());
    }

    #[test]
    fn bcast_without_buffer_on_receivers() {
        let results = run_mpi(3, |rank| {
            let mut k = Kamping::new(rank);
            if k.rank() == 1 {
                k.bcast(1, Some(&[9i64, 8]))
            } else {
                k.bcast::<i64>(1, None)
            }
        });
        for r in results {
            assert_eq!(r, vec![9, 8]);
        }
    }

    #[test]
    fn bool_vector_roundtrip() {
        let pattern = vec![true, false, true, true, false, false, true, false, true, true];
        let expected = pattern.clone();
        let results = run_mpi(4, move |rank| {
            let mut k = Kamping::new(rank);
            if k.rank() == 0 {
                k.bcast_bools(0, Some(&pattern))
            } else {
                k.bcast_bools(0, None)
            }
        });
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn alltoallv_matches_raw() {
        let results = run_mpi(2, |rank| {
            let chunks: Vec<Vec<u32>> = vec![vec![rank.rank as u32], vec![rank.rank as u32 + 10]];
            Kamping::new(rank).alltoallv(&chunks)
        });
        assert_eq!(results[0], vec![vec![0], vec![1]]);
        assert_eq!(results[1], vec![vec![10], vec![11]]);
    }
}
