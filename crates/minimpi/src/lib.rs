//! # hpcci-minimpi — a message-passing runtime + KaMPIng-style bindings
//!
//! The substrate for §6.3: the paper reproduces the artifacts of **KaMPIng**
//! ("flexible and (near) zero-overhead C++ bindings for MPI", SC '24 Best
//! Reproducibility Advancement Award) via CORRECT. To do that we need an MPI
//! and a KaMPIng:
//!
//! * [`comm`] — a rank-based message-passing runtime over OS threads and
//!   crossbeam channels: point-to-point send/recv with tag matching and an
//!   unexpected-message queue, plus the collectives the artifacts use
//!   (barrier, broadcast, reduce, allreduce, gather, allgather, alltoall).
//!   This is *real* parallelism: ranks are threads, messages really move.
//! * [`bindings`] — the KaMPIng analogue: an ergonomic, allocation-handling
//!   wrapper over the raw API whose headline claim — near-zero overhead —
//!   the `kamping_overhead` bench verifies;
//! * [`artifacts`] — the downscaled artifact experiments (§6.3): allreduce
//!   overhead, alltoall correctness, a distributed sample sort, and a
//!   bit-packed `vector<bool>` broadcast, each runnable standalone and as a
//!   federation command (`bash artifacts/<name>.sh`).

pub mod artifacts;
pub mod bindings;
pub mod comm;

pub use artifacts::{install_artifacts, run_artifact, ArtifactResult, KAMPING_ARTIFACTS};
pub use bindings::Kamping;
pub use comm::{run_mpi, Datum, Rank, ReduceOp};
