//! # hpcci-auth — OAuth2-style identity for the federation
//!
//! Models the Globus Auth layer CORRECT's security story rests on (§5.1–5.2):
//!
//! * [`identity::Identity`] — a federated identity (user\@institution) issued
//!   by an identity provider;
//! * [`client::ConfidentialClient`] — a client id + secret pair owned by a
//!   single identity. These are the "Globus Compute secrets" stored in GitHub
//!   environment secrets; *"these secrets belong to a single user and can be
//!   used to authenticate to all sites to which that user has access"*;
//! * [`token::AccessToken`] — scoped bearer tokens with expiry and
//!   revocation;
//! * [`service::AuthService`] — registration, the client-credentials grant,
//!   token introspection and revocation;
//! * [`mapping::IdentityMapping`] — per-site mapping from federated identity
//!   to the local account (the Globus-Connect-Server-style mapping MEPs use)
//!   — HPC security invariant (i): *the identity used to run the code matches
//!   the user who intended to launch it*;
//! * [`policy::HighAssurancePolicy`] — endpoint-side restrictions: allowed
//!   identity providers, session recency, identity allowlists (§5.1).

pub mod client;
pub mod error;
pub mod identity;
pub mod mapping;
pub mod policy;
pub mod service;
pub mod token;

pub use client::{ClientId, ClientSecret, ConfidentialClient};
pub use error::AuthError;
pub use identity::{Identity, IdentityId, IdentityProvider};
pub use mapping::IdentityMapping;
pub use policy::HighAssurancePolicy;
pub use service::AuthService;
pub use token::{AccessToken, Scope, TokenInfo};
