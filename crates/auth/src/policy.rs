//! High-assurance endpoint policies.
//!
//! "MEPs can be configured with different types of high assurance policies,
//! for example, requiring specific identity providers, enforcing sessions,
//! and restricting the functions that can be executed" (§5.1). Function
//! restriction lives in the FaaS layer; identity-provider and session
//! requirements are evaluated here.

use crate::error::AuthError;
use crate::identity::Identity;
use hpcci_sim::{SimDuration, SimTime};

/// Endpoint-side identity requirements, all of which must pass.
#[derive(Debug, Clone, Default)]
pub struct HighAssurancePolicy {
    /// If non-empty, the identity's provider must be one of these domains.
    pub allowed_providers: Vec<String>,
    /// If set, the identity's last interactive authentication must be within
    /// this window (session enforcement).
    pub max_session_age: Option<SimDuration>,
    /// If non-empty, only these exact federated usernames are admitted.
    pub allowed_identities: Vec<String>,
}

impl HighAssurancePolicy {
    /// A policy that admits everyone (the non-HA default).
    pub fn permissive() -> Self {
        HighAssurancePolicy::default()
    }

    pub fn require_provider(mut self, domain: &str) -> Self {
        self.allowed_providers.push(domain.to_string());
        self
    }

    pub fn require_session_within(mut self, d: SimDuration) -> Self {
        self.max_session_age = Some(d);
        self
    }

    pub fn allow_identity(mut self, username: &str) -> Self {
        self.allowed_identities.push(username.to_string());
        self
    }

    /// Evaluate the policy for `identity` at `now`.
    pub fn check(&self, identity: &Identity, now: SimTime) -> Result<(), AuthError> {
        if !self.allowed_providers.is_empty()
            && !self.allowed_providers.contains(&identity.provider.0)
        {
            return Err(AuthError::PolicyViolation(format!(
                "identity provider {} not allowed",
                identity.provider.0
            )));
        }
        if let Some(max_age) = self.max_session_age {
            let last = SimTime::from_micros(identity.last_authentication_us);
            if now.since(last) > max_age {
                return Err(AuthError::PolicyViolation(
                    "session too old; re-authentication required".to_string(),
                ));
            }
        }
        if !self.allowed_identities.is_empty()
            && !self.allowed_identities.contains(&identity.username)
        {
            return Err(AuthError::PolicyViolation(format!(
                "identity {} not in endpoint allowlist",
                identity.username
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{IdentityId, IdentityProvider};

    fn identity(username: &str, provider: &str, last_auth: SimTime) -> Identity {
        Identity {
            id: IdentityId(1),
            username: username.to_string(),
            provider: IdentityProvider::new(provider),
            last_authentication_us: last_auth.as_micros(),
        }
    }

    #[test]
    fn permissive_admits_anyone() {
        let p = HighAssurancePolicy::permissive();
        assert!(p
            .check(&identity("a@b.c", "b.c", SimTime::ZERO), SimTime::from_hours_ish())
            .is_ok());
    }

    trait H {
        fn from_hours_ish() -> SimTime;
    }
    impl H for SimTime {
        fn from_hours_ish() -> SimTime {
            SimTime::from_secs(999_999)
        }
    }

    #[test]
    fn provider_restriction() {
        let p = HighAssurancePolicy::permissive().require_provider("access-ci.org");
        assert!(p
            .check(&identity("a@access-ci.org", "access-ci.org", SimTime::ZERO), SimTime::ZERO)
            .is_ok());
        assert!(matches!(
            p.check(&identity("a@gmail.com", "gmail.com", SimTime::ZERO), SimTime::ZERO),
            Err(AuthError::PolicyViolation(_))
        ));
    }

    #[test]
    fn session_enforcement() {
        let p = HighAssurancePolicy::permissive().require_session_within(SimDuration::from_hours(1));
        let id = identity("a@b.c", "b.c", SimTime::from_secs(0));
        assert!(p.check(&id, SimTime::from_secs(3599)).is_ok());
        assert!(p.check(&id, SimTime::from_secs(3601)).is_err());
    }

    #[test]
    fn identity_allowlist() {
        let p = HighAssurancePolicy::permissive().allow_identity("vhayot@uchicago.edu");
        assert!(p
            .check(&identity("vhayot@uchicago.edu", "uchicago.edu", SimTime::ZERO), SimTime::ZERO)
            .is_ok());
        assert!(p
            .check(&identity("mallory@uchicago.edu", "uchicago.edu", SimTime::ZERO), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn all_conditions_compose() {
        let p = HighAssurancePolicy::permissive()
            .require_provider("uchicago.edu")
            .require_session_within(SimDuration::from_hours(24))
            .allow_identity("vhayot@uchicago.edu");
        let good = identity("vhayot@uchicago.edu", "uchicago.edu", SimTime::from_secs(0));
        assert!(p.check(&good, SimTime::from_secs(100)).is_ok());
    }
}
