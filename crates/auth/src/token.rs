//! Scoped bearer tokens.

use crate::identity::IdentityId;
use hpcci_sim::SimTime;
use std::fmt;

/// An OAuth scope string, e.g. `"compute.api"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Scope(pub String);

impl Scope {
    /// Scope required to submit tasks to the FaaS service.
    pub fn compute_api() -> Scope {
        Scope("compute.api".to_string())
    }

    /// Scope required to manage (register/configure) endpoints.
    pub fn endpoint_manage() -> Scope {
        Scope("endpoint.manage".to_string())
    }
}

/// A bearer token value. Like [`crate::client::ClientSecret`], never printed.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessToken(pub(crate) String);

impl AccessToken {
    pub(crate) fn new(raw: String) -> Self {
        AccessToken(raw)
    }
}

impl fmt::Debug for AccessToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccessToken(***redacted***)")
    }
}

/// What introspection reveals about a valid token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenInfo {
    pub identity: IdentityId,
    pub scopes: Vec<Scope>,
    pub issued_at: SimTime,
    pub expires_at: SimTime,
}

impl TokenInfo {
    pub fn has_scope(&self, scope: &Scope) -> bool {
        self.scopes.contains(scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_debug_is_redacted() {
        let t = AccessToken::new("tok-abc123".to_string());
        assert!(!format!("{t:?}").contains("abc123"));
    }

    #[test]
    fn scope_helpers() {
        assert_eq!(Scope::compute_api().0, "compute.api");
        let info = TokenInfo {
            identity: IdentityId(1),
            scopes: vec![Scope::compute_api()],
            issued_at: SimTime::ZERO,
            expires_at: SimTime::from_secs(3600),
        };
        assert!(info.has_scope(&Scope::compute_api()));
        assert!(!info.has_scope(&Scope::endpoint_manage()));
    }
}
