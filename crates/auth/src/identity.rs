//! Federated identities.

use std::fmt;

/// Opaque identity identifier (UUID-like, assigned by the auth service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdentityId(pub u64);

impl fmt::Display for IdentityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render in a UUID-ish shape for log realism.
        write!(f, "id-{:08x}-{:04x}", self.0, (self.0 >> 32) & 0xffff)
    }
}

/// The institution that vouches for an identity (e.g. a university SSO).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IdentityProvider(pub String);

impl IdentityProvider {
    pub fn new(domain: &str) -> Self {
        IdentityProvider(domain.to_string())
    }
}

/// A federated identity: `username@provider`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    pub id: IdentityId,
    /// Qualified username, e.g. `"vhayot@uchicago.edu"`.
    pub username: String,
    pub provider: IdentityProvider,
    /// Virtual time (µs) of the identity's last interactive authentication —
    /// high-assurance policies can require this to be recent.
    pub last_authentication_us: u64,
}

impl Identity {
    /// The local-part of the username (before `@`).
    pub fn local_part(&self) -> &str {
        self.username.split('@').next().unwrap_or(&self.username)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_part_extraction() {
        let id = Identity {
            id: IdentityId(1),
            username: "vhayot@uchicago.edu".to_string(),
            provider: IdentityProvider::new("uchicago.edu"),
            last_authentication_us: 0,
        };
        assert_eq!(id.local_part(), "vhayot");
    }

    #[test]
    fn local_part_without_domain() {
        let id = Identity {
            id: IdentityId(2),
            username: "bare".to_string(),
            provider: IdentityProvider::new("x"),
            last_authentication_us: 0,
        };
        assert_eq!(id.local_part(), "bare");
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(IdentityId(7).to_string(), IdentityId(7).to_string());
        assert_ne!(IdentityId(7).to_string(), IdentityId(8).to_string());
    }
}
