//! Auth error types.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Client id unknown or secret mismatch. Deliberately one variant: the
    /// service must not reveal which part was wrong.
    InvalidClientCredentials,
    /// Token unknown, expired, or revoked.
    InvalidToken,
    /// Token lacks a required scope.
    MissingScope(String),
    /// Unknown identity.
    UnknownIdentity(String),
    /// No identity-mapping rule matched at the site.
    NoMapping { identity: String, site: String },
    /// Rejected by a high-assurance policy.
    PolicyViolation(String),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::InvalidClientCredentials => write!(f, "invalid client credentials"),
            AuthError::InvalidToken => write!(f, "invalid, expired, or revoked token"),
            AuthError::MissingScope(s) => write!(f, "token missing required scope: {s}"),
            AuthError::UnknownIdentity(i) => write!(f, "unknown identity: {i}"),
            AuthError::NoMapping { identity, site } => {
                write!(f, "no identity mapping for {identity} at site {site}")
            }
            AuthError::PolicyViolation(why) => write!(f, "high-assurance policy violation: {why}"),
        }
    }
}

impl std::error::Error for AuthError {}
