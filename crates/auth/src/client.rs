//! Confidential clients: the id/secret pairs workflows authenticate with.

use crate::identity::IdentityId;
use std::fmt;

/// Public client identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub String);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The secret half of a client credential. Debug/Display never print the
/// value — secrets leaking into CI logs is a real attack the paper's
/// secret-handling discussion is about.
#[derive(Clone, PartialEq, Eq)]
pub struct ClientSecret(pub(crate) String);

impl ClientSecret {
    pub fn new(raw: &str) -> Self {
        ClientSecret(raw.to_string())
    }

    /// The raw secret value. Exists for the creation-time handoff only (a
    /// real service shows the secret exactly once at registration so the
    /// caller can store it in a secret manager); `Display`/`Debug` stay
    /// redacted so the value cannot leak through logs.
    pub fn expose_value(&self) -> &str {
        &self.0
    }

    /// Constant-time-ish comparison (length leak is acceptable in a model).
    pub(crate) fn matches(&self, other: &ClientSecret) -> bool {
        if self.0.len() != other.0.len() {
            return false;
        }
        let mut diff = 0u8;
        for (a, b) in self.0.bytes().zip(other.0.bytes()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

impl fmt::Debug for ClientSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClientSecret(***redacted***)")
    }
}

impl fmt::Display for ClientSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "***redacted***")
    }
}

/// A registered confidential client. The secret stored here is the service's
/// copy; the caller-facing secret is returned exactly once at registration.
#[derive(Debug, Clone)]
pub struct ConfidentialClient {
    pub id: ClientId,
    pub(crate) secret: ClientSecret,
    /// The single identity that owns this client (§5.2: "these secrets
    /// belong to a single user").
    pub owner: IdentityId,
    pub display_name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_never_prints() {
        let s = ClientSecret::new("super-secret-value");
        assert_eq!(format!("{s}"), "***redacted***");
        assert!(!format!("{s:?}").contains("super-secret-value"));
    }

    #[test]
    fn secret_comparison() {
        let a = ClientSecret::new("abc");
        assert!(a.matches(&ClientSecret::new("abc")));
        assert!(!a.matches(&ClientSecret::new("abd")));
        assert!(!a.matches(&ClientSecret::new("abcd")));
    }
}
