//! Per-site identity mapping: federated identity → local account.
//!
//! Multi-user endpoints "use the same identity mapping process as used by
//! Globus Connect Server" (§5.1). A task may only ever run as the local
//! account its submitting identity maps to — this is how HPC security
//! invariant (i) is implemented, and the security property tests exercise it.

use crate::error::AuthError;
use crate::identity::Identity;
use std::collections::BTreeMap;

/// Mapping rules for one site, evaluated in order:
/// 1. an explicit entry for the full federated username;
/// 2. optionally, a provider-scoped rule deriving `prefix + local_part`.
#[derive(Debug, Clone, Default)]
pub struct IdentityMapping {
    site: String,
    explicit: BTreeMap<String, String>,
    /// (identity provider domain, username prefix) — e.g. ACCESS systems
    /// mapping `alice@access-ci.org` to `x-alice`.
    provider_rules: Vec<(String, String)>,
}

impl IdentityMapping {
    pub fn new(site: &str) -> Self {
        IdentityMapping {
            site: site.to_string(),
            explicit: BTreeMap::new(),
            provider_rules: Vec::new(),
        }
    }

    /// Map one federated username to one local username.
    pub fn add_explicit(&mut self, federated: &str, local: &str) -> &mut Self {
        self.explicit.insert(federated.to_string(), local.to_string());
        self
    }

    /// Accept any identity from `provider_domain`, deriving the local
    /// username as `prefix + local_part`.
    pub fn add_provider_rule(&mut self, provider_domain: &str, prefix: &str) -> &mut Self {
        self.provider_rules
            .push((provider_domain.to_string(), prefix.to_string()));
        self
    }

    /// Resolve the local username for `identity`, or fail closed.
    pub fn resolve(&self, identity: &Identity) -> Result<String, AuthError> {
        if let Some(local) = self.explicit.get(&identity.username) {
            return Ok(local.clone());
        }
        for (domain, prefix) in &self.provider_rules {
            if identity.provider.0 == *domain {
                return Ok(format!("{prefix}{}", identity.local_part()));
            }
        }
        Err(AuthError::NoMapping {
            identity: identity.username.clone(),
            site: self.site.clone(),
        })
    }

    pub fn site(&self) -> &str {
        &self.site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::{IdentityId, IdentityProvider};

    fn identity(username: &str, provider: &str) -> Identity {
        Identity {
            id: IdentityId(1),
            username: username.to_string(),
            provider: IdentityProvider::new(provider),
            last_authentication_us: 0,
        }
    }

    #[test]
    fn explicit_mapping_wins() {
        let mut m = IdentityMapping::new("purdue-anvil");
        m.add_explicit("vhayot@uchicago.edu", "x-vhayot");
        m.add_provider_rule("uchicago.edu", "u-");
        assert_eq!(
            m.resolve(&identity("vhayot@uchicago.edu", "uchicago.edu")).unwrap(),
            "x-vhayot"
        );
    }

    #[test]
    fn provider_rule_derives_username() {
        let mut m = IdentityMapping::new("purdue-anvil");
        m.add_provider_rule("access-ci.org", "x-");
        assert_eq!(
            m.resolve(&identity("mgonthier@access-ci.org", "access-ci.org")).unwrap(),
            "x-mgonthier"
        );
    }

    #[test]
    fn unmapped_identity_fails_closed() {
        let m = IdentityMapping::new("tamu-faster");
        let err = m.resolve(&identity("evil@nowhere.net", "nowhere.net")).unwrap_err();
        assert_eq!(
            err,
            AuthError::NoMapping {
                identity: "evil@nowhere.net".to_string(),
                site: "tamu-faster".to_string(),
            }
        );
    }

    #[test]
    fn wrong_provider_does_not_match_rule() {
        let mut m = IdentityMapping::new("s");
        m.add_provider_rule("access-ci.org", "x-");
        assert!(m.resolve(&identity("alice@gmail.com", "gmail.com")).is_err());
    }
}
