//! The auth service: registration, client-credentials grant, introspection.

use crate::client::{ClientId, ClientSecret, ConfidentialClient};
use crate::error::AuthError;
use crate::identity::{Identity, IdentityId, IdentityProvider};
use crate::token::{AccessToken, Scope, TokenInfo};
use hpcci_obs::Obs;
use hpcci_sim::{FaultInjector, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Default token lifetime (Globus tokens live ~48h; the exact figure is not
/// behaviourally relevant, expiry enforcement is).
const TOKEN_TTL: SimDuration = SimDuration::from_hours(48);

struct IssuedToken {
    info: TokenInfo,
    revoked: bool,
}

/// The central OAuth-like service.
#[derive(Default)]
pub struct AuthService {
    identities: BTreeMap<IdentityId, Identity>,
    clients: BTreeMap<ClientId, ConfidentialClient>,
    tokens: BTreeMap<String, IssuedToken>,
    next_identity: u64,
    next_serial: u64,
    injector: Option<FaultInjector>,
    obs: Obs,
}

impl AuthService {
    pub fn new() -> Self {
        AuthService::default()
    }

    /// Attach a fault injector. Token-expiry faults are applied during
    /// introspection; re-authenticating (a fresh token) clears the fault.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Attach an observability handle.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Register a federated identity and return it.
    pub fn register_identity(&mut self, username: &str, provider: &str, now: SimTime) -> Identity {
        self.next_identity += 1;
        let identity = Identity {
            id: IdentityId(self.next_identity),
            username: username.to_string(),
            provider: IdentityProvider::new(provider),
            last_authentication_us: now.as_micros(),
        };
        self.identities.insert(identity.id, identity.clone());
        identity
    }

    /// Record a fresh interactive login (for session-recency policies).
    pub fn refresh_session(&mut self, id: IdentityId, now: SimTime) -> Result<(), AuthError> {
        let identity = self
            .identities
            .get_mut(&id)
            .ok_or_else(|| AuthError::UnknownIdentity(format!("{id}")))?;
        identity.last_authentication_us = now.as_micros();
        self.obs.inc("auth.token_refreshes");
        Ok(())
    }

    pub fn identity(&self, id: IdentityId) -> Result<&Identity, AuthError> {
        self.identities
            .get(&id)
            .ok_or_else(|| AuthError::UnknownIdentity(format!("{id}")))
    }

    /// Create a confidential client owned by `owner`. The returned secret is
    /// shown exactly once — the caller must store it (in a CI secret store).
    pub fn create_client(
        &mut self,
        owner: IdentityId,
        display_name: &str,
    ) -> Result<(ClientId, ClientSecret), AuthError> {
        self.identity(owner)?;
        self.next_serial += 1;
        let id = ClientId(format!("client-{:06}", self.next_serial));
        // A deterministic but unguessable-in-spirit secret.
        let secret = ClientSecret::new(&format!(
            "gcs-{:016x}",
            fnv(&format!("{}:{}:{}", id.0, owner.0, display_name))
        ));
        self.clients.insert(
            id.clone(),
            ConfidentialClient {
                id: id.clone(),
                secret: secret.clone(),
                owner,
                display_name: display_name.to_string(),
            },
        );
        Ok((id, secret))
    }

    /// OAuth2 client-credentials grant: exchange id+secret for a scoped
    /// bearer token acting as the client's owning identity.
    pub fn authenticate(
        &mut self,
        client_id: &ClientId,
        secret: &ClientSecret,
        scopes: Vec<Scope>,
        now: SimTime,
    ) -> Result<AccessToken, AuthError> {
        let client = self
            .clients
            .get(client_id)
            .ok_or(AuthError::InvalidClientCredentials)?;
        if !client.secret.matches(secret) {
            return Err(AuthError::InvalidClientCredentials);
        }
        self.next_serial += 1;
        let raw = format!(
            "tok-{:016x}",
            fnv(&format!("{}:{}:{}", client_id.0, self.next_serial, now.as_micros()))
        );
        self.tokens.insert(
            raw.clone(),
            IssuedToken {
                info: TokenInfo {
                    identity: client.owner,
                    scopes,
                    issued_at: now,
                    expires_at: now + TOKEN_TTL,
                },
                revoked: false,
            },
        );
        self.obs.inc("auth.tokens_issued");
        Ok(AccessToken::new(raw))
    }

    /// Validate a token and reveal its claims.
    pub fn introspect(&self, token: &AccessToken, now: SimTime) -> Result<TokenInfo, AuthError> {
        let issued = self.tokens.get(&token.0).ok_or(AuthError::InvalidToken)?;
        if issued.revoked || now >= issued.info.expires_at {
            return Err(AuthError::InvalidToken);
        }
        if let Some(inj) = &self.injector {
            // Injected early expiry: this token is dead until the caller
            // re-authenticates for a fresh one.
            if inj.token_expired(&token.0, now) {
                return Err(AuthError::InvalidToken);
            }
        }
        Ok(issued.info.clone())
    }

    /// Validate a token *and* require a scope — the common service check.
    pub fn require_scope(
        &self,
        token: &AccessToken,
        scope: &Scope,
        now: SimTime,
    ) -> Result<TokenInfo, AuthError> {
        let info = self.introspect(token, now)?;
        if !info.has_scope(scope) {
            return Err(AuthError::MissingScope(scope.0.clone()));
        }
        Ok(info)
    }

    /// Revoke a token immediately.
    pub fn revoke(&mut self, token: &AccessToken) -> Result<(), AuthError> {
        let issued = self.tokens.get_mut(&token.0).ok_or(AuthError::InvalidToken)?;
        issued.revoked = true;
        Ok(())
    }

    pub fn identity_count(&self) -> usize {
        self.identities.len()
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AuthService, IdentityId, ClientId, ClientSecret) {
        let mut svc = AuthService::new();
        let identity = svc.register_identity("vhayot@uchicago.edu", "uchicago.edu", SimTime::ZERO);
        let (cid, secret) = svc.create_client(identity.id, "correct-ci").unwrap();
        (svc, identity.id, cid, secret)
    }

    #[test]
    fn client_credentials_grant_succeeds() {
        let (mut svc, owner, cid, secret) = setup();
        let token = svc
            .authenticate(&cid, &secret, vec![Scope::compute_api()], SimTime::ZERO)
            .unwrap();
        let info = svc.introspect(&token, SimTime::from_secs(60)).unwrap();
        assert_eq!(info.identity, owner);
        assert!(info.has_scope(&Scope::compute_api()));
    }

    #[test]
    fn wrong_secret_rejected_without_detail() {
        let (mut svc, _, cid, _) = setup();
        let err = svc
            .authenticate(
                &cid,
                &ClientSecret::new("wrong"),
                vec![Scope::compute_api()],
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, AuthError::InvalidClientCredentials);
        // Unknown client yields the indistinguishable error.
        let err2 = svc
            .authenticate(
                &ClientId("client-999999".to_string()),
                &ClientSecret::new("x"),
                vec![],
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn tokens_expire() {
        let (mut svc, _, cid, secret) = setup();
        let token = svc.authenticate(&cid, &secret, vec![], SimTime::ZERO).unwrap();
        assert!(svc.introspect(&token, SimTime::from_hours_48_minus_1()).is_ok());
        assert_eq!(
            svc.introspect(&token, SimTime::from_secs(48 * 3600)).unwrap_err(),
            AuthError::InvalidToken
        );
    }

    // Helper for readability above.
    trait Almost {
        fn from_hours_48_minus_1() -> SimTime;
    }
    impl Almost for SimTime {
        fn from_hours_48_minus_1() -> SimTime {
            SimTime::from_secs(48 * 3600 - 1)
        }
    }

    #[test]
    fn revocation_invalidates_immediately() {
        let (mut svc, _, cid, secret) = setup();
        let token = svc.authenticate(&cid, &secret, vec![], SimTime::ZERO).unwrap();
        svc.revoke(&token).unwrap();
        assert_eq!(
            svc.introspect(&token, SimTime::from_secs(1)).unwrap_err(),
            AuthError::InvalidToken
        );
    }

    #[test]
    fn scope_enforcement() {
        let (mut svc, _, cid, secret) = setup();
        let token = svc
            .authenticate(&cid, &secret, vec![Scope::compute_api()], SimTime::ZERO)
            .unwrap();
        assert!(svc
            .require_scope(&token, &Scope::compute_api(), SimTime::from_secs(1))
            .is_ok());
        assert_eq!(
            svc.require_scope(&token, &Scope::endpoint_manage(), SimTime::from_secs(1))
                .unwrap_err(),
            AuthError::MissingScope("endpoint.manage".to_string())
        );
    }

    #[test]
    fn distinct_tokens_per_grant() {
        let (mut svc, _, cid, secret) = setup();
        let t1 = svc.authenticate(&cid, &secret, vec![], SimTime::ZERO).unwrap();
        let t2 = svc.authenticate(&cid, &secret, vec![], SimTime::ZERO).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn session_refresh_updates_identity() {
        let (mut svc, owner, _, _) = setup();
        svc.refresh_session(owner, SimTime::from_secs(100)).unwrap();
        assert_eq!(
            svc.identity(owner).unwrap().last_authentication_us,
            SimTime::from_secs(100).as_micros()
        );
        assert!(svc.refresh_session(IdentityId(999), SimTime::ZERO).is_err());
    }
}
