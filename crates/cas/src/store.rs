//! Refcounted, chunked content-addressed blob store.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::digest::Digest;

/// Chunk size for splitting objects. 64 KiB keeps the chunk table small for
/// the simulated workloads while still letting large artifacts with shared
/// prefixes (e.g. per-rep logs differing only in a trailing VERSION line)
/// dedup their common leading chunks.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

struct Chunk {
    data: Bytes,
    refs: u64,
}

struct Object {
    chunks: Vec<Digest>,
    len: u64,
    refs: u64,
    /// Assembled view, shared by every `get`. For single-chunk objects this
    /// is the chunk's own `Bytes` (zero copy); multi-chunk objects pay one
    /// assembly on first `get` and share thereafter.
    assembled: Option<Bytes>,
}

struct Inner {
    chunk_size: usize,
    chunks: HashMap<Digest, Chunk>,
    objects: HashMap<Digest, Object>,
    logical_bytes: u64,
    stored_bytes: u64,
    dedup_hits: u64,
}

/// Point-in-time accounting for a [`CasStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CasStats {
    /// Distinct objects currently stored.
    pub objects: u64,
    /// Distinct chunks currently stored.
    pub chunks: u64,
    /// Total bytes callers have `put` (including duplicates), net of releases.
    pub logical_bytes: u64,
    /// Unique chunk payload bytes actually held.
    pub stored_bytes: u64,
    /// `put` calls that were satisfied entirely by an existing object.
    pub dedup_hits: u64,
}

/// A cloneable handle to a shared content-addressed store.
///
/// All clones address the same storage, so independent layers (the artifact
/// store, the step cache) dedup against each other.
#[derive(Clone)]
pub struct CasStore {
    inner: Arc<Mutex<Inner>>,
}

impl Default for CasStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CasStore {
    pub fn new() -> CasStore {
        CasStore::with_chunk_size(DEFAULT_CHUNK_SIZE)
    }

    /// Mostly for tests: force small chunks so dedup paths are exercised
    /// without megabyte fixtures.
    pub fn with_chunk_size(chunk_size: usize) -> CasStore {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        CasStore {
            inner: Arc::new(Mutex::new(Inner {
                chunk_size,
                chunks: HashMap::new(),
                objects: HashMap::new(),
                logical_bytes: 0,
                stored_bytes: 0,
                dedup_hits: 0,
            })),
        }
    }

    /// Store `data`, returning its digest. Re-putting existing content bumps
    /// the object refcount and costs no new stored bytes.
    pub fn put(&self, data: &[u8]) -> Digest {
        let digest = Digest::of_bytes(data);
        let mut inner = self.inner.lock();
        inner.logical_bytes += data.len() as u64;
        if let Some(obj) = inner.objects.get_mut(&digest) {
            obj.refs += 1;
            inner.dedup_hits += 1;
            return digest;
        }
        let chunk_size = inner.chunk_size;
        let mut chunk_ids = Vec::with_capacity(data.len() / chunk_size + 1);
        if data.is_empty() {
            // Zero-chunk object; assembled view is the canonical empty Bytes.
        } else {
            for part in data.chunks(chunk_size) {
                let cid = Digest::of_bytes(part);
                match inner.chunks.get_mut(&cid) {
                    Some(chunk) => chunk.refs += 1,
                    None => {
                        inner.stored_bytes += part.len() as u64;
                        inner.chunks.insert(
                            cid,
                            Chunk {
                                data: Bytes::from(part.to_vec()),
                                refs: 1,
                            },
                        );
                    }
                }
                chunk_ids.push(cid);
            }
        }
        let assembled = match chunk_ids.as_slice() {
            [] => Some(Bytes::new()),
            [only] => Some(inner.chunks[only].data.clone()),
            _ => None,
        };
        inner.objects.insert(
            digest,
            Object {
                chunks: chunk_ids,
                len: data.len() as u64,
                refs: 1,
                assembled,
            },
        );
        digest
    }

    /// Fetch an object. The returned `Bytes` shares storage with the store
    /// (and with every other fetch of the same object).
    pub fn get(&self, digest: Digest) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        let obj = inner.objects.get(&digest)?;
        if let Some(b) = &obj.assembled {
            return Some(b.clone());
        }
        let mut buf = Vec::with_capacity(obj.len as usize);
        for cid in &obj.chunks {
            buf.extend_from_slice(&inner.chunks[cid].data);
        }
        let assembled = Bytes::from(buf);
        inner.objects.get_mut(&digest).unwrap().assembled = Some(assembled.clone());
        Some(assembled)
    }

    pub fn contains(&self, digest: Digest) -> bool {
        self.inner.lock().objects.contains_key(&digest)
    }

    /// Stored length of an object, if present.
    pub fn len_of(&self, digest: Digest) -> Option<u64> {
        self.inner.lock().objects.get(&digest).map(|o| o.len)
    }

    /// Drop one reference to an object; when the last reference goes, the
    /// object and any chunks it solely owned are reclaimed. Returns whether
    /// the digest was present.
    pub fn release(&self, digest: Digest) -> bool {
        let mut inner = self.inner.lock();
        let (len, last_ref) = match inner.objects.get_mut(&digest) {
            None => return false,
            Some(obj) => {
                obj.refs -= 1;
                (obj.len, obj.refs == 0)
            }
        };
        inner.logical_bytes = inner.logical_bytes.saturating_sub(len);
        if !last_ref {
            return true;
        }
        let obj = inner.objects.remove(&digest).unwrap();
        for cid in obj.chunks {
            let chunk = inner.chunks.get_mut(&cid).unwrap();
            chunk.refs -= 1;
            if chunk.refs == 0 {
                let freed = chunk.data.len() as u64;
                inner.chunks.remove(&cid);
                inner.stored_bytes -= freed;
            }
        }
        true
    }

    pub fn stats(&self) -> CasStats {
        let inner = self.inner.lock();
        CasStats {
            objects: inner.objects.len() as u64,
            chunks: inner.chunks.len() as u64,
            logical_bytes: inner.logical_bytes,
            stored_bytes: inner.stored_bytes,
            dedup_hits: inner.dedup_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_content() {
        let cas = CasStore::new();
        let d = cas.put(b"hello world");
        assert!(cas.contains(d));
        assert_eq!(cas.get(d).unwrap().as_ref(), b"hello world");
        assert_eq!(cas.len_of(d), Some(11));
        assert!(cas.get(Digest::of_str("missing")).is_none());
    }

    #[test]
    fn duplicate_put_stores_nothing_new() {
        let cas = CasStore::new();
        let a = cas.put(b"payload");
        let b = cas.put(b"payload");
        assert_eq!(a, b);
        let stats = cas.stats();
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.logical_bytes, 14);
        assert_eq!(stats.stored_bytes, 7);
        assert_eq!(stats.dedup_hits, 1);
    }

    #[test]
    fn shared_chunks_across_objects() {
        let cas = CasStore::with_chunk_size(4);
        // Same leading 8 bytes (2 chunks), different tail chunk.
        cas.put(b"aaaabbbbcccc");
        cas.put(b"aaaabbbbdddd");
        let stats = cas.stats();
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.chunks, 4); // aaaa, bbbb, cccc, dddd
        assert_eq!(stats.logical_bytes, 24);
        assert_eq!(stats.stored_bytes, 16);
    }

    #[test]
    fn multi_chunk_assembly() {
        let cas = CasStore::with_chunk_size(3);
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let d = cas.put(&data);
        assert_eq!(cas.get(d).unwrap().as_ref(), &data[..]);
        // Second get hits the cached assembled view.
        assert_eq!(cas.get(d).unwrap().as_ref(), &data[..]);
    }

    #[test]
    fn empty_object() {
        let cas = CasStore::new();
        let d = cas.put(b"");
        assert_eq!(cas.get(d).unwrap().len(), 0);
        assert_eq!(cas.stats().stored_bytes, 0);
        assert_eq!(cas.stats().objects, 1);
    }

    #[test]
    fn release_reclaims_last_reference() {
        let cas = CasStore::with_chunk_size(4);
        let shared = cas.put(b"aaaabbbb");
        let other = cas.put(b"aaaacccc");
        assert!(cas.release(shared));
        assert!(!cas.contains(shared));
        // "aaaa" chunk survives because `other` still references it.
        assert_eq!(cas.stats().chunks, 2);
        assert_eq!(cas.get(other).unwrap().as_ref(), b"aaaacccc");
        assert!(cas.release(other));
        assert_eq!(cas.stats().chunks, 0);
        assert_eq!(cas.stats().logical_bytes, 0);
        assert!(!cas.release(other));
    }

    #[test]
    fn release_respects_refcounts() {
        let cas = CasStore::new();
        let d = cas.put(b"twice");
        cas.put(b"twice");
        assert!(cas.release(d));
        assert!(cas.contains(d), "one reference must remain");
        assert!(cas.release(d));
        assert!(!cas.contains(d));
    }

    #[test]
    fn clones_share_storage() {
        let cas = CasStore::new();
        let handle = cas.clone();
        let d = handle.put(b"shared");
        assert!(cas.contains(d));
        assert_eq!(cas.stats().dedup_hits, 0);
        cas.put(b"shared");
        assert_eq!(handle.stats().dedup_hits, 1);
    }
}
