//! 128-bit content digests and canonical multi-field digest construction.

use std::fmt;

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x9ae1_6a3b_2f90_404f;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// A 128-bit content hash: two independent FNV-1a passes concatenated, the
/// same construction `hpcci_vcs::ObjectId` uses, so digests printed by either
/// layer are comparable in provenance records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub u128);

impl Digest {
    /// Digest of raw bytes.
    pub fn of_bytes(data: &[u8]) -> Digest {
        let mut a = FNV_OFFSET_A;
        let mut b = FNV_OFFSET_B;
        for &byte in data {
            a = (a ^ byte as u64).wrapping_mul(FNV_PRIME);
            b = (b ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
        Digest(((a as u128) << 64) | b as u128)
    }

    pub fn of_str(s: &str) -> Digest {
        Digest::of_bytes(s.as_bytes())
    }

    /// The zero digest: "no content" / "unknown", never produced by hashing.
    pub const NONE: Digest = Digest(0);

    pub fn is_none(&self) -> bool {
        self.0 == 0
    }

    /// Git-style short form (12 hex chars).
    pub fn short(&self) -> String {
        format!("{:012x}", self.0 >> 80)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Canonical digest over a sequence of labelled fields.
///
/// Each field is framed as `label ++ 0x00 ++ len(value) as LE u64 ++ value`,
/// so no concatenation of fields can collide with a different field split —
/// the property a memoization key must have (`("ab","c")` ≠ `("a","bc")`).
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    a: u64,
    b: u64,
}

impl Default for DigestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestBuilder {
    pub fn new() -> Self {
        DigestBuilder {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    fn absorb(&mut self, data: &[u8]) {
        for &byte in data {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one labelled byte field.
    pub fn field(mut self, label: &str, value: &[u8]) -> Self {
        self.absorb(label.as_bytes());
        self.absorb(&[0u8]);
        self.absorb(&(value.len() as u64).to_le_bytes());
        self.absorb(value);
        self
    }

    /// Absorb one labelled string field.
    pub fn str_field(self, label: &str, value: &str) -> Self {
        self.field(label, value.as_bytes())
    }

    /// Absorb one labelled integer field.
    pub fn u64_field(self, label: &str, value: u64) -> Self {
        self.field(label, &value.to_le_bytes())
    }

    /// Absorb a previously computed digest as a field (for chaining keys).
    pub fn digest_field(self, label: &str, value: Digest) -> Self {
        self.field(label, &value.0.to_le_bytes())
    }

    pub fn finish(self) -> Digest {
        Digest(((self.a as u128) << 64) | self.b as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_content_sensitive() {
        assert_eq!(Digest::of_str("hello"), Digest::of_str("hello"));
        assert_ne!(Digest::of_str("hello"), Digest::of_str("hello!"));
        assert!(!Digest::of_bytes(&[]).is_none());
        assert!(Digest::NONE.is_none());
    }

    #[test]
    fn display_forms() {
        let d = Digest::of_str("x");
        assert_eq!(d.to_string().len(), 32);
        assert_eq!(d.short().len(), 12);
        assert!(d.to_string().starts_with(&d.short()));
    }

    #[test]
    fn builder_framing_prevents_boundary_collisions() {
        let ab_c = DigestBuilder::new()
            .str_field("x", "ab")
            .str_field("y", "c")
            .finish();
        let a_bc = DigestBuilder::new()
            .str_field("x", "a")
            .str_field("y", "bc")
            .finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn builder_is_order_and_label_sensitive() {
        let base = DigestBuilder::new().str_field("k", "v").u64_field("n", 7);
        assert_eq!(base.clone().finish(), base.clone().finish());
        let relabel = DigestBuilder::new().str_field("k2", "v").u64_field("n", 7);
        assert_ne!(base.clone().finish(), relabel.finish());
        let reorder = DigestBuilder::new().u64_field("n", 7).str_field("k", "v");
        assert_ne!(base.finish(), reorder.finish());
    }

    #[test]
    fn digest_field_chains() {
        let inner = Digest::of_str("step-1 outputs");
        let a = DigestBuilder::new().digest_field("prior", inner).finish();
        let b = DigestBuilder::new()
            .digest_field("prior", Digest::of_str("step-1 outputs?"))
            .finish();
        assert_ne!(a, b);
    }
}
