//! # hpcci-cas — content-addressed storage for the federation
//!
//! The paper's premise — reproducible CI means *same inputs → same outputs* —
//! is a license to deduplicate and memoize: a blob that hashes the same **is**
//! the same, and storing it twice (or re-computing the step that produced it)
//! buys nothing. This crate supplies the storage half of that bargain:
//!
//! * [`Digest`] — a 128-bit content hash in the style of `hpcci_vcs`'s
//!   `ObjectId`, self-contained so every crate in the workspace can address
//!   content without a VCS dependency;
//! * [`DigestBuilder`] — canonical multi-field digests with unambiguous
//!   framing (length-prefixed, labelled fields), used for cache keys where
//!   `hash(a ++ b)` collisions between field boundaries must be impossible;
//! * [`CasStore`] — a refcounted, chunked blob store: objects are split into
//!   fixed-size chunks, each unique chunk stored exactly once, and duplicate
//!   `put`s cost no new bytes. The store tracks *logical* bytes (what callers
//!   uploaded) against *stored* bytes (unique chunk payload), the dedup ratio
//!   the CI artifact layer reports.
//!
//! Handles ([`CasStore`] clones) share one underlying store, so the CI
//! engine's step cache and artifact store can dedup against each other.

mod digest;
mod store;

pub use digest::{Digest, DigestBuilder};
pub use store::{CasStats, CasStore, DEFAULT_CHUNK_SIZE};
