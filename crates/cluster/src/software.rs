//! Software environments: conda-like named package sets per site.
//!
//! §6.1 installs the docking stack ("AutoDock Vina v1.2.6, VMD v1.9.3,
//! MGLTools v1.5.7") via Conda on each site; §6.2 installs "PSI/J v0.9.9
//! within a Conda environment". Environment contents are captured verbatim
//! into provenance records — the paper's §7.4 names missing environment
//! information as the key gap in validating reproducibility.

use crate::error::ClusterError;
use std::collections::BTreeMap;

/// A single installed package at a pinned version.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Package {
    pub name: String,
    pub version: String,
}

impl Package {
    pub fn new(name: &str, version: &str) -> Self {
        Package {
            name: name.to_string(),
            version: version.to_string(),
        }
    }
}

/// A named environment (think `conda env`): package name → version.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoftwareEnv {
    pub name: String,
    packages: BTreeMap<String, String>,
}

impl SoftwareEnv {
    pub fn new(name: &str) -> Self {
        SoftwareEnv {
            name: name.to_string(),
            packages: BTreeMap::new(),
        }
    }

    /// Install (or upgrade) a package.
    pub fn install(&mut self, name: &str, version: &str) -> &mut Self {
        self.packages.insert(name.to_string(), version.to_string());
        self
    }

    /// Version of an installed package.
    pub fn version_of(&self, name: &str) -> Option<&str> {
        self.packages.get(name).map(String::as_str)
    }

    pub fn has(&self, name: &str) -> bool {
        self.packages.contains_key(name)
    }

    /// Check a `name>=version` style requirement (only `>=`, `==` and bare
    /// names are supported — the forms the PSI/J requirements file uses).
    pub fn satisfies(&self, requirement: &str) -> bool {
        let (name, op, want) = parse_requirement(requirement);
        let Some(have) = self.version_of(name) else {
            return false;
        };
        match op {
            None => true,
            Some(">=") => compare_versions(have, want) >= std::cmp::Ordering::Equal,
            Some("==") => compare_versions(have, want) == std::cmp::Ordering::Equal,
            _ => false,
        }
    }

    /// Snapshot of every package, sorted by name — the provenance capture.
    pub fn freeze(&self) -> Vec<Package> {
        self.packages
            .iter()
            .map(|(n, v)| Package::new(n, v))
            .collect()
    }

    pub fn package_count(&self) -> usize {
        self.packages.len()
    }
}

fn parse_requirement(req: &str) -> (&str, Option<&str>, &str) {
    for op in [">=", "=="] {
        if let Some(ix) = req.find(op) {
            return (req[..ix].trim(), Some(op), req[ix + 2..].trim());
        }
    }
    (req.trim(), None, "")
}

/// Compare dotted version strings numerically segment by segment.
pub fn compare_versions(a: &str, b: &str) -> std::cmp::Ordering {
    let parse = |s: &str| -> Vec<u64> {
        s.split('.')
            .map(|seg| seg.chars().take_while(|c| c.is_ascii_digit()).collect::<String>())
            .map(|digits| digits.parse().unwrap_or(0))
            .collect()
    };
    let (va, vb) = (parse(a), parse(b));
    let n = va.len().max(vb.len());
    for i in 0..n {
        let x = va.get(i).copied().unwrap_or(0);
        let y = vb.get(i).copied().unwrap_or(0);
        match x.cmp(&y) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

/// All named environments at one site.
#[derive(Debug, Clone, Default)]
pub struct EnvManager {
    envs: BTreeMap<String, SoftwareEnv>,
}

impl EnvManager {
    pub fn new() -> Self {
        EnvManager::default()
    }

    /// Create an environment (idempotent), returning a mutable handle.
    pub fn create(&mut self, name: &str) -> &mut SoftwareEnv {
        self.envs
            .entry(name.to_string())
            .or_insert_with(|| SoftwareEnv::new(name))
    }

    pub fn get(&self, name: &str) -> Result<&SoftwareEnv, ClusterError> {
        self.envs
            .get(name)
            .ok_or_else(|| ClusterError::UnknownEnv(name.to_string()))
    }

    pub fn get_mut(&mut self, name: &str) -> Result<&mut SoftwareEnv, ClusterError> {
        self.envs
            .get_mut(name)
            .ok_or_else(|| ClusterError::UnknownEnv(name.to_string()))
    }

    pub fn names(&self) -> Vec<&str> {
        self.envs.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_query() {
        let mut env = SoftwareEnv::new("docking");
        env.install("autodock-vina", "1.2.6")
            .install("vmd", "1.9.3")
            .install("mgltools", "1.5.7");
        assert_eq!(env.version_of("vmd"), Some("1.9.3"));
        assert!(env.has("mgltools"));
        assert!(!env.has("pytorch"));
        assert_eq!(env.package_count(), 3);
    }

    #[test]
    fn freeze_is_sorted_and_complete() {
        let mut env = SoftwareEnv::new("e");
        env.install("zlib", "1.3").install("abc", "0.1");
        let frozen = env.freeze();
        assert_eq!(frozen[0].name, "abc");
        assert_eq!(frozen[1].name, "zlib");
    }

    #[test]
    fn requirements_parsing() {
        let mut env = SoftwareEnv::new("psij");
        env.install("psutil", "5.9.8").install("pystache", "0.6.8");
        assert!(env.satisfies("psutil>=5.9"));
        assert!(env.satisfies("psutil"));
        assert!(env.satisfies("pystache>=0.6.0"));
        assert!(!env.satisfies("psutil>=6.0"));
        assert!(!env.satisfies("typeguard>=3.0.1"));
        assert!(env.satisfies("psutil==5.9.8"));
        assert!(!env.satisfies("psutil==5.9.7"));
    }

    #[test]
    fn version_comparison_is_numeric_not_lexical() {
        use std::cmp::Ordering::*;
        assert_eq!(compare_versions("1.10", "1.9"), Greater);
        assert_eq!(compare_versions("1.2.6", "1.2.6"), Equal);
        assert_eq!(compare_versions("0.9.9", "1.0"), Less);
        assert_eq!(compare_versions("2", "2.0.0"), Equal);
    }

    #[test]
    fn env_manager_create_is_idempotent() {
        let mut m = EnvManager::new();
        m.create("a").install("p", "1");
        m.create("a"); // does not wipe
        assert_eq!(m.get("a").unwrap().version_of("p"), Some("1"));
        assert!(m.get("missing").is_err());
        assert_eq!(m.names(), vec!["a"]);
    }
}
