//! Error types for site operations.

use crate::account::Uid;
use std::fmt;

/// Errors raised by cluster substrate operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Filesystem permission denied: `uid` attempted `op` on `path`.
    PermissionDenied { uid: Uid, op: &'static str, path: String },
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (e.g. exclusive create).
    AlreadyExists(String),
    /// Parent directory missing.
    NoParent(String),
    /// Target is a directory where a file was expected, or vice versa.
    WrongKind(String),
    /// Outbound network access blocked by site policy.
    NetworkBlocked { node: String, dest: String },
    /// Unknown user account on this site.
    UnknownUser(String),
    /// Unknown node.
    UnknownNode(String),
    /// Unknown software environment.
    UnknownEnv(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::PermissionDenied { uid, op, path } => {
                write!(f, "permission denied: uid {} cannot {op} {path}", uid.0)
            }
            ClusterError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            ClusterError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            ClusterError::NoParent(p) => write!(f, "parent directory missing: {p}"),
            ClusterError::WrongKind(p) => write!(f, "wrong node kind at: {p}"),
            ClusterError::NetworkBlocked { node, dest } => {
                write!(f, "outbound network blocked on {node} (dest {dest})")
            }
            ClusterError::UnknownUser(u) => write!(f, "unknown user: {u}"),
            ClusterError::UnknownNode(n) => write!(f, "unknown node: {n}"),
            ClusterError::UnknownEnv(e) => write!(f, "unknown software environment: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}
