//! A permission-checked virtual filesystem, one per site.
//!
//! This is the substrate behind the paper's second HPC security invariant:
//! *"users and/or processes launched by the CI cannot access or modify files
//! or aspects of the system beyond their permission"* (§4.4.1, §5.2). Every
//! read and write in the federation goes through [`VirtualFs`] with the
//! credentials of the local account the task was identity-mapped onto, so the
//! invariant is enforced — and testable — rather than assumed.
//!
//! The model is a classic Unix triad: owner / group / other, each with
//! read / write / execute bits. Paths are normalized absolute strings.

use crate::account::{Uid, UserAccount};
use crate::error::ClusterError;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Unix-style permission bits (0o777 space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMode(pub u16);

impl FileMode {
    /// rw-r--r--
    pub const REGULAR: FileMode = FileMode(0o644);
    /// rw-------
    pub const PRIVATE: FileMode = FileMode(0o600);
    /// rwxr-xr-x
    pub const DIR: FileMode = FileMode(0o755);
    /// rwx------
    pub const PRIVATE_DIR: FileMode = FileMode(0o700);
    /// rw-rw-r-- (group-writable, e.g. shared project space)
    pub const GROUP_SHARED: FileMode = FileMode(0o664);

    fn class_bits(self, class: u8) -> u16 {
        // class: 0 = owner, 1 = group, 2 = other
        (self.0 >> (6 - 3 * class as u16)) & 0o7
    }
}

/// What a caller is allowed to do, derived from uid + group membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cred {
    pub uid: Uid,
    pub groups: Vec<String>,
}

impl Cred {
    pub fn of(account: &UserAccount) -> Self {
        Cred {
            uid: account.uid,
            groups: account.groups.clone(),
        }
    }

    pub fn new(uid: Uid, groups: &[&str]) -> Self {
        Cred {
            uid,
            groups: groups.iter().map(|s| s.to_string()).collect(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum NodeKind {
    File(Bytes),
    Dir,
}

#[derive(Debug, Clone, PartialEq)]
struct FsNode {
    owner: Uid,
    group: String,
    mode: FileMode,
    kind: NodeKind,
}

/// Access kind for permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read = 0o4,
    Write = 0o2,
}

/// The per-site filesystem.
#[derive(Debug, Clone, Default)]
pub struct VirtualFs {
    nodes: BTreeMap<String, FsNode>,
}

fn normalize(path: &str) -> String {
    assert!(path.starts_with('/'), "paths must be absolute: {path}");
    let mut parts: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            s => parts.push(s),
        }
    }
    if parts.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", parts.join("/"))
    }
}

fn parent_of(path: &str) -> Option<String> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/".to_string()),
        Some(i) => Some(path[..i].to_string()),
        None => None,
    }
}

impl VirtualFs {
    /// An empty filesystem with a world-readable root owned by root.
    pub fn new() -> Self {
        let mut fs = VirtualFs::default();
        fs.nodes.insert(
            "/".to_string(),
            FsNode {
                owner: crate::account::ROOT,
                group: "root".to_string(),
                mode: FileMode::DIR,
                kind: NodeKind::Dir,
            },
        );
        fs
    }

    fn check(&self, node: &FsNode, cred: &Cred, access: Access) -> bool {
        let class = if cred.uid == node.owner {
            0
        } else if cred.groups.contains(&node.group) {
            1
        } else {
            2
        };
        node.mode.class_bits(class) & access as u16 != 0
    }

    fn get(&self, path: &str) -> Result<&FsNode, ClusterError> {
        self.nodes
            .get(path)
            .ok_or_else(|| ClusterError::NotFound(path.to_string()))
    }

    /// Create a directory and any missing ancestors, all owned by `cred.uid`.
    /// Existing directories are left untouched (like `mkdir -p`), but the
    /// caller must hold write permission on the deepest existing ancestor.
    pub fn mkdir_p(&mut self, path: &str, cred: &Cred, mode: FileMode) -> Result<(), ClusterError> {
        let path = normalize(path);
        if let Some(node) = self.nodes.get(&path) {
            return match node.kind {
                NodeKind::Dir => Ok(()),
                NodeKind::File(_) => Err(ClusterError::WrongKind(path)),
            };
        }
        // Find the deepest existing ancestor and require write on it.
        let mut missing = vec![path.clone()];
        let mut cursor = path.clone();
        let anchor = loop {
            let parent = parent_of(&cursor).ok_or_else(|| ClusterError::NoParent(cursor.clone()))?;
            if let Some(node) = self.nodes.get(&parent) {
                match node.kind {
                    NodeKind::Dir => break parent,
                    NodeKind::File(_) => return Err(ClusterError::WrongKind(parent)),
                }
            }
            missing.push(parent.clone());
            cursor = parent;
        };
        let anchor_node = self.get(&anchor)?;
        if !self.check(anchor_node, cred, Access::Write) {
            return Err(ClusterError::PermissionDenied {
                uid: cred.uid,
                op: "mkdir",
                path: anchor,
            });
        }
        let group = cred.groups.first().cloned().unwrap_or_else(|| "users".into());
        for dir in missing.into_iter().rev() {
            self.nodes.insert(
                dir,
                FsNode {
                    owner: cred.uid,
                    group: group.clone(),
                    mode,
                    kind: NodeKind::Dir,
                },
            );
        }
        Ok(())
    }

    /// Write (create or overwrite) a file. Creating requires write on the
    /// parent directory; overwriting requires write on the file itself.
    pub fn write(
        &mut self,
        path: &str,
        cred: &Cred,
        content: impl Into<Bytes>,
        mode: FileMode,
    ) -> Result<(), ClusterError> {
        let path = normalize(path);
        if let Some(existing) = self.nodes.get(&path) {
            match existing.kind {
                NodeKind::Dir => return Err(ClusterError::WrongKind(path)),
                NodeKind::File(_) => {
                    if !self.check(existing, cred, Access::Write) {
                        return Err(ClusterError::PermissionDenied {
                            uid: cred.uid,
                            op: "write",
                            path,
                        });
                    }
                    let node = self.nodes.get_mut(&path).expect("checked above");
                    node.kind = NodeKind::File(content.into());
                    return Ok(());
                }
            }
        }
        let parent = parent_of(&path).ok_or_else(|| ClusterError::NoParent(path.clone()))?;
        let parent_node = self.get(&parent)?;
        match parent_node.kind {
            NodeKind::Dir => {}
            NodeKind::File(_) => return Err(ClusterError::WrongKind(parent)),
        }
        if !self.check(parent_node, cred, Access::Write) {
            return Err(ClusterError::PermissionDenied {
                uid: cred.uid,
                op: "create",
                path,
            });
        }
        let group = cred.groups.first().cloned().unwrap_or_else(|| "users".into());
        self.nodes.insert(
            path,
            FsNode {
                owner: cred.uid,
                group,
                mode,
                kind: NodeKind::File(content.into()),
            },
        );
        Ok(())
    }

    /// Read a file's content.
    pub fn read(&self, path: &str, cred: &Cred) -> Result<Bytes, ClusterError> {
        let path = normalize(path);
        let node = self.get(&path)?;
        if !self.check(node, cred, Access::Read) {
            return Err(ClusterError::PermissionDenied {
                uid: cred.uid,
                op: "read",
                path,
            });
        }
        match &node.kind {
            NodeKind::File(b) => Ok(b.clone()),
            NodeKind::Dir => Err(ClusterError::WrongKind(path)),
        }
    }

    /// Read as UTF-8 text (convenience; lossy conversion).
    pub fn read_text(&self, path: &str, cred: &Cred) -> Result<String, ClusterError> {
        Ok(String::from_utf8_lossy(&self.read(path, cred)?).into_owned())
    }

    /// List immediate children of a directory (names only, sorted).
    pub fn list(&self, path: &str, cred: &Cred) -> Result<Vec<String>, ClusterError> {
        let path = normalize(path);
        let node = self.get(&path)?;
        if !self.check(node, cred, Access::Read) {
            return Err(ClusterError::PermissionDenied {
                uid: cred.uid,
                op: "list",
                path,
            });
        }
        match node.kind {
            NodeKind::Dir => {}
            NodeKind::File(_) => return Err(ClusterError::WrongKind(path)),
        }
        let prefix = if path == "/" { "/".to_string() } else { format!("{path}/") };
        let mut out: Vec<String> = self
            .nodes
            .range(prefix.clone()..)
            .take_while(|(p, _)| p.starts_with(&prefix))
            .filter(|(p, _)| !p[prefix.len()..].contains('/'))
            .map(|(p, _)| p[prefix.len()..].to_string())
            .collect();
        out.sort();
        Ok(out)
    }

    /// Remove a file or (recursively) a directory. Requires write on parent.
    pub fn remove(&mut self, path: &str, cred: &Cred) -> Result<(), ClusterError> {
        let path = normalize(path);
        if path == "/" {
            return Err(ClusterError::PermissionDenied {
                uid: cred.uid,
                op: "remove",
                path,
            });
        }
        self.get(&path)?;
        let parent = parent_of(&path).ok_or_else(|| ClusterError::NoParent(path.clone()))?;
        let parent_node = self.get(&parent)?;
        if !self.check(parent_node, cred, Access::Write) {
            return Err(ClusterError::PermissionDenied {
                uid: cred.uid,
                op: "remove",
                path,
            });
        }
        let subtree_prefix = format!("{path}/");
        let doomed: Vec<String> = self
            .nodes
            .keys()
            .filter(|p| **p == path || p.starts_with(&subtree_prefix))
            .cloned()
            .collect();
        for p in doomed {
            self.nodes.remove(&p);
        }
        Ok(())
    }

    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(&normalize(path))
    }

    pub fn is_dir(&self, path: &str) -> bool {
        matches!(
            self.nodes.get(&normalize(path)),
            Some(FsNode { kind: NodeKind::Dir, .. })
        )
    }

    /// Size in bytes of a file (0 for directories).
    pub fn size_of(&self, path: &str) -> Result<u64, ClusterError> {
        match &self.get(&normalize(path))?.kind {
            NodeKind::File(b) => Ok(b.len() as u64),
            NodeKind::Dir => Ok(0),
        }
    }

    /// Owner of a path.
    pub fn owner_of(&self, path: &str) -> Result<Uid, ClusterError> {
        Ok(self.get(&normalize(path))?.owner)
    }

    /// Change mode; only the owner may do this.
    pub fn chmod(&mut self, path: &str, cred: &Cred, mode: FileMode) -> Result<(), ClusterError> {
        let path = normalize(path);
        let node = self
            .nodes
            .get_mut(&path)
            .ok_or_else(|| ClusterError::NotFound(path.clone()))?;
        if node.owner != cred.uid {
            return Err(ClusterError::PermissionDenied {
                uid: cred.uid,
                op: "chmod",
                path,
            });
        }
        node.mode = mode;
        Ok(())
    }

    /// Total number of filesystem entries (including `/`).
    pub fn entry_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> Cred {
        Cred::new(Uid(1001), &["proj1"])
    }

    fn bob() -> Cred {
        Cred::new(Uid(1002), &["proj2"])
    }

    fn carol_same_group() -> Cred {
        Cred::new(Uid(1003), &["proj1"])
    }

    fn fs_with_home() -> VirtualFs {
        let mut fs = VirtualFs::new();
        // root creates /home and /scratch world-writable-by-convention dirs
        let root = Cred::new(Uid(0), &["root"]);
        fs.mkdir_p("/home", &root, FileMode(0o777)).unwrap();
        fs.mkdir_p("/scratch", &root, FileMode(0o777)).unwrap();
        fs
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/home/alice", &a, FileMode::PRIVATE_DIR).unwrap();
        fs.write("/home/alice/x.txt", &a, "hello", FileMode::REGULAR)
            .unwrap();
        assert_eq!(fs.read_text("/home/alice/x.txt", &a).unwrap(), "hello");
        assert_eq!(fs.size_of("/home/alice/x.txt").unwrap(), 5);
    }

    #[test]
    fn private_dir_blocks_other_users() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/home/alice", &a, FileMode::PRIVATE_DIR).unwrap();
        fs.write("/home/alice/secret", &a, "s3cret", FileMode::PRIVATE)
            .unwrap();
        // Bob cannot read the private file, nor create in alice's dir.
        assert!(matches!(
            fs.read("/home/alice/secret", &bob()),
            Err(ClusterError::PermissionDenied { .. })
        ));
        assert!(matches!(
            fs.write("/home/alice/evil", &bob(), "x", FileMode::REGULAR),
            Err(ClusterError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn world_readable_file_in_private_dir_still_blocked_at_read_of_file_only() {
        // Our model checks the file node itself (no path-walk x-bit check),
        // so a REGULAR (world-readable) file is readable even in a private
        // dir. Listing the private dir, however, is denied.
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/home/alice", &a, FileMode::PRIVATE_DIR).unwrap();
        fs.write("/home/alice/pub.txt", &a, "hi", FileMode::REGULAR)
            .unwrap();
        assert_eq!(fs.read_text("/home/alice/pub.txt", &bob()).unwrap(), "hi");
        assert!(fs.list("/home/alice", &bob()).is_err());
    }

    #[test]
    fn group_sharing_works() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/scratch/proj1", &a, FileMode(0o770)).unwrap();
        fs.write("/scratch/proj1/data", &a, "d", FileMode::GROUP_SHARED)
            .unwrap();
        // Carol shares proj1.
        assert!(fs.read("/scratch/proj1/data", &carol_same_group()).is_ok());
        // Carol may even write (group-writable).
        assert!(fs
            .write("/scratch/proj1/data", &carol_same_group(), "d2", FileMode::GROUP_SHARED)
            .is_ok());
        // Bob (different group) may not list or write.
        assert!(fs.list("/scratch/proj1", &bob()).is_err());
    }

    #[test]
    fn overwrite_requires_write_on_file() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/home/alice", &a, FileMode(0o777)).unwrap();
        fs.write("/home/alice/ro", &a, "v1", FileMode(0o644)).unwrap();
        // Bob can create siblings (dir is 777) but not overwrite alice's file.
        assert!(fs.write("/home/alice/bobs", &bob(), "x", FileMode::REGULAR).is_ok());
        assert!(matches!(
            fs.write("/home/alice/ro", &bob(), "evil", FileMode::REGULAR),
            Err(ClusterError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn mkdir_p_creates_ancestors_and_is_idempotent() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/scratch/alice/a/b/c", &a, FileMode::DIR).unwrap();
        assert!(fs.is_dir("/scratch/alice/a/b"));
        fs.mkdir_p("/scratch/alice/a/b/c", &a, FileMode::DIR).unwrap();
        // Can't mkdir over a file.
        fs.write("/scratch/alice/f", &a, "x", FileMode::REGULAR).unwrap();
        assert!(matches!(
            fs.mkdir_p("/scratch/alice/f", &a, FileMode::DIR),
            Err(ClusterError::WrongKind(_))
        ));
    }

    #[test]
    fn list_returns_immediate_children_sorted() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/scratch/alice/sub", &a, FileMode::DIR).unwrap();
        fs.write("/scratch/alice/b.txt", &a, "b", FileMode::REGULAR).unwrap();
        fs.write("/scratch/alice/a.txt", &a, "a", FileMode::REGULAR).unwrap();
        fs.write("/scratch/alice/sub/deep.txt", &a, "d", FileMode::REGULAR)
            .unwrap();
        assert_eq!(
            fs.list("/scratch/alice", &a).unwrap(),
            vec!["a.txt", "b.txt", "sub"]
        );
    }

    #[test]
    fn remove_is_recursive_and_permission_checked() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/scratch/alice/tree/deep", &a, FileMode::PRIVATE_DIR)
            .unwrap();
        fs.write("/scratch/alice/tree/deep/f", &a, "x", FileMode::REGULAR)
            .unwrap();
        // Bob can't remove alice's tree (parent /scratch/alice is private... it's
        // PRIVATE_DIR under /scratch which is 0o777; parent of tree is
        // /scratch/alice owned by alice with 0o700).
        assert!(fs.remove("/scratch/alice/tree", &bob()).is_err());
        fs.remove("/scratch/alice/tree", &a).unwrap();
        assert!(!fs.exists("/scratch/alice/tree/deep/f"));
        assert!(!fs.exists("/scratch/alice/tree"));
    }

    #[test]
    fn chmod_owner_only() {
        let mut fs = fs_with_home();
        let a = alice();
        fs.mkdir_p("/scratch/alice", &a, FileMode::DIR).unwrap();
        fs.write("/scratch/alice/f", &a, "x", FileMode::PRIVATE).unwrap();
        assert!(fs.chmod("/scratch/alice/f", &bob(), FileMode::REGULAR).is_err());
        fs.chmod("/scratch/alice/f", &a, FileMode::REGULAR).unwrap();
        assert_eq!(fs.read_text("/scratch/alice/f", &bob()).unwrap(), "x");
    }

    #[test]
    fn path_normalization() {
        assert_eq!(normalize("/a//b/./c/../d"), "/a/b/d");
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize("/.."), "/");
        assert_eq!(parent_of("/a/b"), Some("/a".to_string()));
        assert_eq!(parent_of("/a"), Some("/".to_string()));
        assert_eq!(parent_of("/"), None);
    }

    #[test]
    fn root_cannot_be_removed() {
        let mut fs = VirtualFs::new();
        let root = Cred::new(Uid(0), &["root"]);
        assert!(fs.remove("/", &root).is_err());
    }
}
