//! Nodes: the unit of compute placement.

use std::fmt;

/// Node identifier, unique within a site (index into the site's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Role determines scheduling and network policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Interactive front-end: always reachable, runs endpoint daemons and
    /// repository clones; not managed by the batch scheduler.
    Login,
    /// Batch-managed worker, allocated through the scheduler.
    Compute,
}

/// One machine at a site.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub id: NodeId,
    pub role: NodeRole,
    /// Hostname, e.g. `"faster-login-1"`.
    pub hostname: String,
    pub cores: u32,
    pub mem_gb: u32,
    pub gpus: u32,
    /// Relative CPU speed; 1.0 is the reference machine for
    /// [`crate::perf::WorkUnits`].
    pub cpu_speed: f64,
}

impl Node {
    pub fn new(id: u32, role: NodeRole, hostname: &str, cores: u32, mem_gb: u32) -> Self {
        Node {
            id: NodeId(id),
            role,
            hostname: hostname.to_string(),
            cores,
            mem_gb,
            gpus: 0,
            cpu_speed: 1.0,
        }
    }

    pub fn with_speed(mut self, s: f64) -> Self {
        assert!(s > 0.0, "cpu_speed must be positive");
        self.cpu_speed = s;
        self
    }

    pub fn with_gpus(mut self, g: u32) -> Self {
        self.gpus = g;
        self
    }

    pub fn is_login(&self) -> bool {
        self.role == NodeRole::Login
    }

    pub fn is_compute(&self) -> bool {
        self.role == NodeRole::Compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let n = Node::new(3, NodeRole::Compute, "c003", 64, 256)
            .with_speed(1.2)
            .with_gpus(4);
        assert_eq!(n.id, NodeId(3));
        assert!(n.is_compute());
        assert!(!n.is_login());
        assert_eq!(n.gpus, 4);
        assert!((n.cpu_speed - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cpu_speed must be positive")]
    fn zero_speed_rejected() {
        let _ = Node::new(0, NodeRole::Login, "l", 8, 32).with_speed(0.0);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node7");
    }
}
