//! Local user accounts at a site.
//!
//! HPC security policy requires every action to be attributable to a local
//! account (§3, §5.2). Remote identities (see `hpcci-auth`) are *mapped* to
//! these accounts; nothing in the federation executes without one.

use std::fmt;

/// A numeric user id, unique within one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

/// The root/superuser id. The federation never *executes* user tasks as
/// root; it exists so tests can assert that nothing escalates to it.
pub const ROOT: Uid = Uid(0);

/// A local account at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserAccount {
    pub uid: Uid,
    /// Local username, e.g. `"x-vhayot"` (Anvil uses an `x-` prefix).
    pub username: String,
    /// Unix-style groups, e.g. the allocation's project group.
    pub groups: Vec<String>,
    /// Compute allocation / project this account charges, e.g. `"CIS230030"`.
    pub allocation: String,
    /// Home directory path on the site filesystem.
    pub home: String,
}

impl UserAccount {
    pub fn new(uid: u32, username: &str, allocation: &str) -> Self {
        UserAccount {
            uid: Uid(uid),
            username: username.to_string(),
            groups: vec![allocation.to_string()],
            allocation: allocation.to_string(),
            home: format!("/home/{username}"),
        }
    }

    pub fn in_group(&self, group: &str) -> bool {
        self.groups.iter().any(|g| g == group)
    }

    /// Scratch space path for this user (site-relative convention).
    pub fn scratch(&self) -> String {
        format!("/scratch/{}", self.username)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn account_paths_follow_convention() {
        let a = UserAccount::new(1001, "x-vhayot", "CIS230030");
        assert_eq!(a.home, "/home/x-vhayot");
        assert_eq!(a.scratch(), "/scratch/x-vhayot");
        assert!(a.in_group("CIS230030"));
        assert!(!a.in_group("other"));
    }

    #[test]
    fn root_is_uid_zero() {
        assert_eq!(ROOT, Uid(0));
        assert_ne!(UserAccount::new(1001, "u", "a").uid, ROOT);
    }

    #[test]
    fn uid_display() {
        assert_eq!(Uid(42).to_string(), "uid:42");
    }
}
