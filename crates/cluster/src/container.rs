//! Container images and registries.
//!
//! §6.3 executes the KaMPIng artifacts "within a Docker image published in
//! the GitHub Container Registry", starting a Globus Compute MEP *inside*
//! the container. §7.4 proposes container capture as a provenance extension.
//! We model an image as a frozen software environment plus metadata; running
//! "in" a container means the task resolves packages against the image's
//! environment instead of the site's.

use crate::software::SoftwareEnv;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    UnknownImage(String),
    TagExists(String),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::UnknownImage(r) => write!(f, "unknown image: {r}"),
            ContainerError::TagExists(r) => write!(f, "image tag already published: {r}"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// An immutable container image.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSpec {
    /// Repository name, e.g. `"ghcr.io/kamping-site/kamping-reproducibility"`.
    pub repository: String,
    /// Tag, e.g. `"v1"` or `"latest"`.
    pub tag: String,
    /// The frozen software environment inside the image.
    pub env: SoftwareEnv,
    /// Environment variables baked into the image.
    pub env_vars: BTreeMap<String, String>,
    /// Image size in bytes (affects pull time through the perf model).
    pub size_bytes: u64,
}

impl ImageSpec {
    pub fn new(repository: &str, tag: &str) -> Self {
        ImageSpec {
            repository: repository.to_string(),
            tag: tag.to_string(),
            env: SoftwareEnv::new(&format!("{repository}:{tag}")),
            env_vars: BTreeMap::new(),
            size_bytes: 500_000_000,
        }
    }

    pub fn reference(&self) -> String {
        format!("{}:{}", self.repository, self.tag)
    }

    pub fn with_package(mut self, name: &str, version: &str) -> Self {
        self.env.install(name, version);
        self
    }

    pub fn with_env_var(mut self, key: &str, value: &str) -> Self {
        self.env_vars.insert(key.to_string(), value.to_string());
        self
    }

    pub fn with_size(mut self, bytes: u64) -> Self {
        self.size_bytes = bytes;
        self
    }
}

/// A registry of published images (GHCR-like). Tags are immutable once
/// published, mirroring the reproducibility-friendly convention.
#[derive(Debug, Clone, Default)]
pub struct ImageRegistry {
    images: BTreeMap<String, ImageSpec>,
}

impl ImageRegistry {
    pub fn new() -> Self {
        ImageRegistry::default()
    }

    /// Publish an image. Re-publishing an existing tag is an error: mutable
    /// tags are the classic reproducibility hazard.
    pub fn publish(&mut self, image: ImageSpec) -> Result<(), ContainerError> {
        let reference = image.reference();
        if self.images.contains_key(&reference) {
            return Err(ContainerError::TagExists(reference));
        }
        self.images.insert(reference, image);
        Ok(())
    }

    /// Pull (look up) an image by `repo:tag` reference.
    pub fn pull(&self, reference: &str) -> Result<&ImageSpec, ContainerError> {
        self.images
            .get(reference)
            .ok_or_else(|| ContainerError::UnknownImage(reference.to_string()))
    }

    pub fn len(&self) -> usize {
        self.images.len()
    }

    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kamping_image() -> ImageSpec {
        ImageSpec::new("ghcr.io/kamping-site/kamping-reproducibility", "v1")
            .with_package("kamping", "1.0.0")
            .with_package("openmpi", "4.1.5")
            .with_env_var("OMPI_ALLOW_RUN_AS_ROOT", "0")
            .with_size(1_200_000_000)
    }

    #[test]
    fn publish_and_pull() {
        let mut reg = ImageRegistry::new();
        reg.publish(kamping_image()).unwrap();
        let img = reg
            .pull("ghcr.io/kamping-site/kamping-reproducibility:v1")
            .unwrap();
        assert_eq!(img.env.version_of("openmpi"), Some("4.1.5"));
        assert_eq!(img.env_vars.get("OMPI_ALLOW_RUN_AS_ROOT").unwrap(), "0");
    }

    #[test]
    fn tags_are_immutable() {
        let mut reg = ImageRegistry::new();
        reg.publish(kamping_image()).unwrap();
        assert_eq!(
            reg.publish(kamping_image()),
            Err(ContainerError::TagExists(
                "ghcr.io/kamping-site/kamping-reproducibility:v1".to_string()
            ))
        );
        // A new tag is fine.
        let mut v2 = kamping_image();
        v2.tag = "v2".to_string();
        reg.publish(v2).unwrap();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn unknown_image_errors() {
        let reg = ImageRegistry::new();
        assert!(matches!(
            reg.pull("nope:latest"),
            Err(ContainerError::UnknownImage(_))
        ));
    }
}
