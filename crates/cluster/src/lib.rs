//! # hpcci-cluster — simulated computing sites
//!
//! Models the computing infrastructure the paper's evaluation ran on:
//! a Chameleon Cloud instance and the ACCESS HPC systems TAMU FASTER,
//! SDSC Expanse, and Purdue Anvil (§6), plus generic workstations.
//!
//! A [`site::Site`] bundles:
//!
//! * [`node::Node`]s — login and compute nodes with core counts, memory and a
//!   relative CPU speed;
//! * a [`perf::PerfModel`] — converts abstract work units into virtual
//!   durations, with seeded run-to-run jitter (§2.1's "inherent systemic
//!   variability");
//! * a [`net::NetworkPolicy`] — crucially, whether *compute* nodes have
//!   outbound internet access. FASTER and Expanse do not, which is exactly
//!   why the paper needed Globus Compute multi-user endpoint templates with
//!   separate providers for cloning (login node) and testing (compute nodes);
//! * [`account::UserAccount`]s — local identities that remote identities must
//!   map onto;
//! * a per-site [`fs::VirtualFs`] — a permission-checked filesystem, the
//!   substrate for the paper's "no privilege escalation" security invariant;
//! * [`software::SoftwareEnv`]s — conda-like named environments whose package
//!   sets are captured into provenance records;
//! * [`container::ImageRegistry`] — container images (the KaMPIng artifacts
//!   of §6.3 run inside one).

pub mod account;
pub mod container;
pub mod error;
pub mod fs;
pub mod net;
pub mod node;
pub mod perf;
pub mod site;
pub mod software;

pub use account::{Uid, UserAccount};
pub use container::{ContainerError, ImageRegistry, ImageSpec};
pub use error::ClusterError;
pub use fs::{Cred, FileMode, VirtualFs};
pub use net::{NetworkPolicy, NetworkZone};
pub use node::{Node, NodeId, NodeRole};
pub use perf::{PerfModel, WorkUnits};
pub use site::{Site, SiteId, SiteKind};
