//! Sites: the unit of administrative domain.
//!
//! A site bundles machines, policy, accounts, filesystem, software and
//! container registry. Presets model the four systems of the paper's
//! evaluation. Calibration targets the *shape* of Fig. 4 — Chameleon's
//! modern IceLake cloud instance outruns the HPC systems on most short
//! tests — not the paper's absolute numbers.

use crate::account::{Uid, UserAccount};
use crate::container::ImageRegistry;
use crate::error::ClusterError;
use crate::fs::{Cred, FileMode, VirtualFs};
use crate::net::NetworkPolicy;
use crate::node::{Node, NodeId, NodeRole};
use crate::perf::PerfModel;
use crate::software::EnvManager;
use hpcci_sim::SimDuration;
use std::collections::BTreeMap;

/// Stable identifier for a site within the federation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub String);

impl SiteId {
    pub fn new(s: &str) -> Self {
        SiteId(s.to_string())
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Broad class of infrastructure — drives defaults and Table-4-style
/// comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Cloud VM (Chameleon): no batch scheduler, open network.
    Cloud,
    /// Batch HPC system: scheduler-managed compute nodes.
    Hpc,
    /// A developer workstation or lab server.
    Workstation,
}

/// One administrative domain of computing resources.
#[derive(Debug)]
pub struct Site {
    pub id: SiteId,
    pub kind: SiteKind,
    pub nodes: Vec<Node>,
    pub perf: PerfModel,
    pub network: NetworkPolicy,
    pub fs: VirtualFs,
    pub envs: EnvManager,
    pub images: ImageRegistry,
    accounts: BTreeMap<String, UserAccount>,
    next_uid: u32,
}

impl Site {
    pub fn new(id: &str, kind: SiteKind, perf: PerfModel, network: NetworkPolicy) -> Self {
        let mut fs = VirtualFs::new();
        let root = Cred::new(Uid(0), &["root"]);
        // Site-standard top-level directories; 0o777 so account creation by
        // the (simulated) provisioning layer can create homes beneath them.
        for dir in ["/home", "/scratch", "/tmp", "/opt"] {
            fs.mkdir_p(dir, &root, FileMode(0o777))
                .expect("fresh fs accepts standard dirs");
        }
        Site {
            id: SiteId::new(id),
            kind,
            nodes: Vec::new(),
            perf,
            network,
            fs,
            envs: EnvManager::new(),
            images: ImageRegistry::new(),
            accounts: BTreeMap::new(),
            next_uid: 1000,
        }
    }

    /// Append a node, assigning the next id.
    pub fn add_node(&mut self, role: NodeRole, hostname: &str, cores: u32, mem_gb: u32) -> NodeId {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::new(id, role, hostname, cores, mem_gb));
        NodeId(id)
    }

    /// Append `count` identical compute nodes.
    pub fn add_compute_nodes(&mut self, count: u32, cores: u32, mem_gb: u32) {
        for i in 0..count {
            let hostname = format!("{}-c{:03}", self.id.0, i);
            self.add_node(NodeRole::Compute, &hostname, cores, mem_gb);
        }
    }

    pub fn node(&self, id: NodeId) -> Result<&Node, ClusterError> {
        self.nodes
            .get(id.0 as usize)
            .ok_or_else(|| ClusterError::UnknownNode(id.to_string()))
    }

    /// The first login node (sites always have at least one in practice).
    pub fn login_node(&self) -> Option<&Node> {
        self.nodes.iter().find(|n| n.is_login())
    }

    pub fn compute_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_compute())
    }

    pub fn compute_node_count(&self) -> usize {
        self.compute_nodes().count()
    }

    /// Provision a local account: allocates a uid, creates the home and
    /// scratch directories owned by the new user.
    pub fn add_account(&mut self, username: &str, allocation: &str) -> UserAccount {
        let uid = self.next_uid;
        self.next_uid += 1;
        let account = UserAccount::new(uid, username, allocation);
        let cred = Cred::of(&account);
        self.fs
            .mkdir_p(&account.home, &cred, FileMode::PRIVATE_DIR)
            .expect("home creation under /home");
        self.fs
            .mkdir_p(&account.scratch(), &cred, FileMode::PRIVATE_DIR)
            .expect("scratch creation under /scratch");
        self.accounts.insert(username.to_string(), account.clone());
        account
    }

    pub fn account(&self, username: &str) -> Result<&UserAccount, ClusterError> {
        self.accounts
            .get(username)
            .ok_or_else(|| ClusterError::UnknownUser(username.to_string()))
    }

    pub fn account_by_uid(&self, uid: Uid) -> Option<&UserAccount> {
        self.accounts.values().find(|a| a.uid == uid)
    }

    pub fn accounts(&self) -> impl Iterator<Item = &UserAccount> {
        self.accounts.values()
    }

    /// Does this site run a batch scheduler?
    pub fn has_scheduler(&self) -> bool {
        self.kind == SiteKind::Hpc
    }

    // ------------------------------------------------------------------
    // Presets: the paper's evaluation infrastructure (§6).
    // ------------------------------------------------------------------

    /// Chameleon Cloud CHI@TACC IceLake instance: a single fast bare-metal
    /// cloud node with open networking and no batch system.
    pub fn chameleon_tacc() -> Site {
        let perf = PerfModel::new(1.30)
            .with_overhead(SimDuration::from_millis(20))
            .with_jitter(0.04)
            .with_wan_latency(SimDuration::from_millis(12));
        let mut s = Site::new("chameleon-tacc", SiteKind::Cloud, perf, NetworkPolicy::open());
        s.add_node(NodeRole::Login, "chi-tacc-icelake", 64, 256);
        s
    }

    /// TAMU FASTER: HPC system; compute nodes have **no outbound internet**.
    pub fn tamu_faster() -> Site {
        let perf = PerfModel::new(1.00)
            .with_overhead(SimDuration::from_millis(80))
            .with_jitter(0.07)
            .with_wan_latency(SimDuration::from_millis(25));
        let mut s = Site::new("tamu-faster", SiteKind::Hpc, perf, NetworkPolicy::login_only());
        s.add_node(NodeRole::Login, "faster-login-1", 32, 128);
        s.add_compute_nodes(180, 64, 256);
        s
    }

    /// SDSC Expanse: HPC system; compute nodes have **no outbound internet**;
    /// slightly older cores than FASTER in our calibration.
    pub fn sdsc_expanse() -> Site {
        let perf = PerfModel::new(0.88)
            .with_overhead(SimDuration::from_millis(90))
            .with_jitter(0.08)
            .with_wan_latency(SimDuration::from_millis(35));
        let mut s = Site::new("sdsc-expanse", SiteKind::Hpc, perf, NetworkPolicy::login_only());
        s.add_node(NodeRole::Login, "expanse-login-1", 32, 128);
        s.add_compute_nodes(728, 128, 256);
        s
    }

    /// Purdue Anvil (CPU): HPC system whose login nodes are beefy enough that
    /// the PSI/J tests of §6.2 run directly on them via a LocalProvider.
    pub fn purdue_anvil() -> Site {
        let perf = PerfModel::new(1.05)
            .with_overhead(SimDuration::from_millis(60))
            .with_jitter(0.06)
            .with_wan_latency(SimDuration::from_millis(28));
        let mut s = Site::new("purdue-anvil", SiteKind::Hpc, perf, NetworkPolicy::login_only());
        s.add_node(NodeRole::Login, "anvil-login-1", 128, 512);
        s.add_compute_nodes(1000, 128, 256);
        s
    }

    /// A generic workstation — the "any remote device" case of §5.1.
    pub fn workstation(name: &str) -> Site {
        let perf = PerfModel::new(0.9)
            .with_overhead(SimDuration::from_millis(10))
            .with_jitter(0.05)
            .with_wan_latency(SimDuration::from_millis(20));
        let mut s = Site::new(name, SiteKind::Workstation, perf, NetworkPolicy::open());
        s.add_node(NodeRole::Login, &format!("{name}-host"), 16, 64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkZone;

    #[test]
    fn presets_match_paper_topology() {
        let cham = Site::chameleon_tacc();
        assert_eq!(cham.kind, SiteKind::Cloud);
        assert!(!cham.has_scheduler());
        assert!(cham.network.allows(NodeRole::Login, NetworkZone::Internet));

        let faster = Site::tamu_faster();
        assert!(faster.has_scheduler());
        assert!(faster.compute_node_count() > 0);
        // The paper's key constraint: no outbound internet on compute.
        assert!(!faster.network.allows(NodeRole::Compute, NetworkZone::Internet));
        assert!(faster.network.allows(NodeRole::Login, NetworkZone::Internet));

        let expanse = Site::sdsc_expanse();
        assert!(!expanse.network.allows(NodeRole::Compute, NetworkZone::Internet));
        // Calibration: Chameleon cores are fastest, Expanse slowest.
        assert!(cham.perf.cpu_speed > faster.perf.cpu_speed);
        assert!(faster.perf.cpu_speed > expanse.perf.cpu_speed);
    }

    #[test]
    fn account_provisioning_creates_directories() {
        let mut s = Site::purdue_anvil();
        let acct = s.add_account("x-vhayot", "CIS230030");
        assert_eq!(acct.home, "/home/x-vhayot");
        assert!(s.fs.is_dir("/home/x-vhayot"));
        assert!(s.fs.is_dir("/scratch/x-vhayot"));
        assert_eq!(s.account("x-vhayot").unwrap().uid, acct.uid);
        assert!(s.account("nobody").is_err());
        assert_eq!(s.account_by_uid(acct.uid).unwrap().username, "x-vhayot");
    }

    #[test]
    fn uids_are_unique_and_increasing() {
        let mut s = Site::workstation("lab");
        let a = s.add_account("a", "p");
        let b = s.add_account("b", "p");
        assert!(b.uid > a.uid);
        assert_eq!(s.accounts().count(), 2);
    }

    #[test]
    fn node_lookup() {
        let s = Site::tamu_faster();
        let login = s.login_node().unwrap();
        assert_eq!(login.hostname, "faster-login-1");
        assert!(s.node(NodeId(0)).is_ok());
        assert!(s.node(NodeId(9999)).is_err());
    }
}
