//! Site network policy.
//!
//! The single most consequential infrastructure detail in the paper's
//! evaluation: on TAMU FASTER and SDSC Expanse, *compute nodes have no
//! outbound internet access* (§6.1). A naive endpoint that clones the
//! repository from the node running the tests therefore fails; the paper's
//! fix is a multi-user endpoint template with a `LocalProvider` on the login
//! node for cloning and a `SlurmProvider` for the tests. We model network
//! zones so that exact failure (and the fix) is reproducible.

use crate::node::NodeRole;

/// Where a destination lives relative to the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkZone {
    /// Public internet (GitHub, the Globus Compute cloud service, PyPI...).
    Internet,
    /// Within the same site (login <-> compute, shared filesystem).
    IntraSite,
}

/// Per-role outbound reachability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkPolicy {
    /// Login nodes may reach the public internet.
    pub login_outbound_internet: bool,
    /// Compute nodes may reach the public internet.
    pub compute_outbound_internet: bool,
}

impl NetworkPolicy {
    /// Everything reachable from everywhere — typical cloud instance.
    pub fn open() -> Self {
        NetworkPolicy {
            login_outbound_internet: true,
            compute_outbound_internet: true,
        }
    }

    /// Login nodes reach the internet, compute nodes do not — the
    /// FASTER/Expanse configuration.
    pub fn login_only() -> Self {
        NetworkPolicy {
            login_outbound_internet: true,
            compute_outbound_internet: false,
        }
    }

    /// Can a node with `role` reach a destination in `zone`?
    pub fn allows(&self, role: NodeRole, zone: NetworkZone) -> bool {
        match zone {
            NetworkZone::IntraSite => true,
            NetworkZone::Internet => match role {
                NodeRole::Login => self.login_outbound_internet,
                NodeRole::Compute => self.compute_outbound_internet,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_policy_allows_everything() {
        let p = NetworkPolicy::open();
        assert!(p.allows(NodeRole::Login, NetworkZone::Internet));
        assert!(p.allows(NodeRole::Compute, NetworkZone::Internet));
        assert!(p.allows(NodeRole::Compute, NetworkZone::IntraSite));
    }

    #[test]
    fn login_only_blocks_compute_internet() {
        let p = NetworkPolicy::login_only();
        assert!(p.allows(NodeRole::Login, NetworkZone::Internet));
        assert!(!p.allows(NodeRole::Compute, NetworkZone::Internet));
        // Intra-site traffic (shared fs, scheduler) always works.
        assert!(p.allows(NodeRole::Compute, NetworkZone::IntraSite));
    }
}
