//! Performance model: abstract work → virtual time.
//!
//! Application code in the federation does *real* computation (the docking
//! scorer really scores, minimpi really passes messages), but the *time it is
//! charged* is virtual: each task reports its cost in [`WorkUnits`] — seconds
//! on the reference machine — and the site's [`PerfModel`] converts that into
//! a `SimDuration`, applying the node's relative CPU speed, a fixed per-task
//! overhead, and seeded lognormal jitter (the paper's §2.1 catalogues the
//! real-world sources of that jitter: thread scheduling, power management,
//! temperature...).

use hpcci_sim::{DetRng, SimDuration};

/// Cost of a computation in reference-machine seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct WorkUnits(pub f64);

impl WorkUnits {
    pub const ZERO: WorkUnits = WorkUnits(0.0);

    pub fn secs(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "work must be finite and >= 0");
        WorkUnits(s)
    }

    pub fn scaled(self, f: f64) -> Self {
        WorkUnits::secs(self.0 * f)
    }
}

impl std::ops::Add for WorkUnits {
    type Output = WorkUnits;
    fn add(self, rhs: WorkUnits) -> WorkUnits {
        WorkUnits(self.0 + rhs.0)
    }
}

/// Converts work into virtual durations for one site.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    /// Relative speed of a run-of-the-mill core at this site (1.0 = reference).
    pub cpu_speed: f64,
    /// Fixed startup cost per executed task (process spawn, module load).
    pub task_overhead: SimDurationSerde,
    /// Relative sigma of run-to-run lognormal jitter.
    pub jitter_sigma: f64,
    /// One-way latency from this site to the public cloud services.
    pub wan_latency: SimDurationSerde,
    /// Sustained I/O bandwidth of the shared filesystem, bytes per second.
    pub io_bytes_per_sec: f64,
}

/// `SimDuration` stored as microseconds for serde friendliness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimDurationSerde(pub u64);

impl From<SimDuration> for SimDurationSerde {
    fn from(d: SimDuration) -> Self {
        SimDurationSerde(d.as_micros())
    }
}

impl From<SimDurationSerde> for SimDuration {
    fn from(d: SimDurationSerde) -> Self {
        SimDuration::from_micros(d.0)
    }
}

impl PerfModel {
    pub fn new(cpu_speed: f64) -> Self {
        assert!(cpu_speed > 0.0);
        PerfModel {
            cpu_speed,
            task_overhead: SimDuration::from_millis(50).into(),
            jitter_sigma: 0.05,
            wan_latency: SimDuration::from_millis(30).into(),
            io_bytes_per_sec: 500e6,
        }
    }

    pub fn with_overhead(mut self, d: SimDuration) -> Self {
        self.task_overhead = d.into();
        self
    }

    pub fn with_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.jitter_sigma = sigma;
        self
    }

    pub fn with_wan_latency(mut self, d: SimDuration) -> Self {
        self.wan_latency = d.into();
        self
    }

    pub fn with_io_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        self.io_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Virtual duration of `work` on a core with `node_speed`, with jitter.
    ///
    /// `node_speed` multiplies the site-wide `cpu_speed`, so a site can have
    /// heterogeneous partitions.
    pub fn compute_time(&self, work: WorkUnits, node_speed: f64, rng: &mut DetRng) -> SimDuration {
        debug_assert!(node_speed > 0.0);
        let nominal = work.0 / (self.cpu_speed * node_speed);
        let jittered = nominal * rng.jitter(self.jitter_sigma);
        SimDuration::from(self.task_overhead) + SimDuration::from_secs_f64(jittered)
    }

    /// Virtual duration of transferring `bytes` over the shared filesystem.
    pub fn io_time(&self, bytes: u64, rng: &mut DetRng) -> SimDuration {
        let nominal = bytes as f64 / self.io_bytes_per_sec;
        SimDuration::from_secs_f64(nominal * rng.jitter(self.jitter_sigma))
    }

    /// Round-trip time to the public cloud services.
    pub fn wan_rtt(&self) -> SimDuration {
        SimDuration::from(self.wan_latency) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_cpu_means_shorter_time() {
        let slow = PerfModel::new(0.5).with_jitter(0.0);
        let fast = PerfModel::new(2.0).with_jitter(0.0);
        let mut rng = DetRng::seed_from_u64(1);
        let w = WorkUnits::secs(10.0);
        let t_slow = slow.compute_time(w, 1.0, &mut rng);
        let t_fast = fast.compute_time(w, 1.0, &mut rng);
        assert!(t_slow > t_fast);
        // 10s work at speed 2.0 = 5s + 50ms overhead.
        assert_eq!(t_fast, SimDuration::from_millis(5050));
    }

    #[test]
    fn node_speed_composes_with_site_speed() {
        let m = PerfModel::new(1.0).with_jitter(0.0).with_overhead(SimDuration::ZERO);
        let mut rng = DetRng::seed_from_u64(2);
        let w = WorkUnits::secs(8.0);
        assert_eq!(
            m.compute_time(w, 2.0, &mut rng),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let m = PerfModel::new(1.0).with_jitter(0.3).with_overhead(SimDuration::ZERO);
        let w = WorkUnits::secs(1.0);
        let mut a = DetRng::seed_from_u64(3);
        let mut b = DetRng::seed_from_u64(3);
        for _ in 0..100 {
            let ta = m.compute_time(w, 1.0, &mut a);
            let tb = m.compute_time(w, 1.0, &mut b);
            assert_eq!(ta, tb, "same seed, same duration");
            assert!(ta >= SimDuration::from_millis(500));
            assert!(ta <= SimDuration::from_secs(2));
        }
    }

    #[test]
    fn io_time_scales_with_bytes() {
        let m = PerfModel::new(1.0).with_jitter(0.0).with_io_bandwidth(100e6);
        let mut rng = DetRng::seed_from_u64(4);
        let t = m.io_time(200_000_000, &mut rng);
        assert_eq!(t, SimDuration::from_secs(2));
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        let m = PerfModel::new(1.0).with_jitter(0.2);
        let mut rng = DetRng::seed_from_u64(5);
        assert_eq!(
            m.compute_time(WorkUnits::ZERO, 1.0, &mut rng),
            SimDuration::from_millis(50)
        );
    }

    #[test]
    #[should_panic]
    fn negative_work_rejected() {
        let _ = WorkUnits::secs(-1.0);
    }
}
