//! NeuroCI-style task provenance cache (§4.3.3): "all task provenance data
//! is gathered and stored within a task provenance cache file \[storing\] IDs
//! pointing to the location of the tasks and files … exported as artifacts
//! … and made available through an API."
//!
//! The cache is the pointer layer: it does not duplicate outputs, it records
//! *where they are* — task ids, artifact locations, the pipeline/dataset
//! combination — so downstream visualization and audits can find everything
//! a CI campaign produced.

use hpcci_cas::Digest;
use std::collections::BTreeMap;

/// One cached pointer: a (pipeline, dataset) cell of the evaluation matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Processing pipeline identifier (for us: workflow name).
    pub pipeline: String,
    /// Dataset / site identifier.
    pub dataset: String,
    /// Remote task id that produced the result.
    pub task_id: String,
    /// Where the result artifact lives (CI artifact path or archive DOI).
    pub location: String,
    /// Virtual timestamp (µs) of the producing run.
    pub at_us: u64,
    pub success: bool,
    /// Content digest of the result artifact in the CAS ([`Digest::NONE`]
    /// when the producing run predates content-addressed storage). Lets an
    /// audit verify bit-for-bit that the bytes at `location` are the bytes
    /// the run produced.
    pub cas_digest: Digest,
}

/// The cache file: append-per-run, newest entry wins per (pipeline, dataset).
#[derive(Debug, Clone, Default)]
pub struct ProvenanceCache {
    entries: Vec<CacheEntry>,
}

impl ProvenanceCache {
    pub fn new() -> Self {
        ProvenanceCache::default()
    }

    pub fn record(&mut self, entry: CacheEntry) {
        self.entries.push(entry);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Latest entry per (pipeline, dataset) cell.
    pub fn matrix(&self) -> BTreeMap<(String, String), &CacheEntry> {
        let mut m: BTreeMap<(String, String), &CacheEntry> = BTreeMap::new();
        for e in &self.entries {
            let key = (e.pipeline.clone(), e.dataset.clone());
            match m.get(&key) {
                Some(existing) if existing.at_us >= e.at_us => {}
                _ => {
                    m.insert(key, e);
                }
            }
        }
        m
    }

    /// History of one cell, oldest first — the input to NeuroCI's
    /// distribution plots over time.
    pub fn history(&self, pipeline: &str, dataset: &str) -> Vec<&CacheEntry> {
        let mut h: Vec<&CacheEntry> = self
            .entries
            .iter()
            .filter(|e| e.pipeline == pipeline && e.dataset == dataset)
            .collect();
        h.sort_by_key(|e| e.at_us);
        h
    }

    /// Serialize to the cache-file text format (line-oriented, greppable —
    /// the artifact CI exports). Version 2 appends the CAS digest of the
    /// result artifact as a seventh column.
    pub fn to_cache_file(&self) -> String {
        let mut out = String::from("# task provenance cache v2\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                e.pipeline,
                e.dataset,
                e.task_id,
                e.location,
                e.at_us,
                if e.success { "ok" } else { "failed" },
                e.cas_digest
            ));
        }
        out
    }

    /// Parse the cache-file format back (round-trips [`Self::to_cache_file`]).
    /// Six-column v1 rows (written before content addressing) still parse;
    /// their digest is [`Digest::NONE`].
    pub fn from_cache_file(text: &str) -> ProvenanceCache {
        let mut cache = ProvenanceCache::new();
        for line in text.lines() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 6 && fields.len() != 7 {
                continue;
            }
            let cas_digest = fields
                .get(6)
                .and_then(|hex| u128::from_str_radix(hex, 16).ok())
                .map(Digest)
                .unwrap_or(Digest::NONE);
            cache.record(CacheEntry {
                pipeline: fields[0].to_string(),
                dataset: fields[1].to_string(),
                task_id: fields[2].to_string(),
                location: fields[3].to_string(),
                at_us: fields[4].parse().unwrap_or(0),
                success: fields[5] == "ok",
                cas_digest,
            });
        }
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pipeline: &str, dataset: &str, at: u64, success: bool) -> CacheEntry {
        CacheEntry {
            pipeline: pipeline.to_string(),
            dataset: dataset.to_string(),
            task_id: format!("task-{at}"),
            location: format!("ci://artifacts/{pipeline}/{dataset}/{at}"),
            at_us: at,
            success,
            cas_digest: Digest::of_str(&format!("{pipeline}/{dataset}/{at}")),
        }
    }

    #[test]
    fn matrix_keeps_newest_per_cell() {
        let mut c = ProvenanceCache::new();
        c.record(entry("fmriprep", "ds-a", 100, true));
        c.record(entry("fmriprep", "ds-a", 200, false));
        c.record(entry("fmriprep", "ds-b", 150, true));
        let m = c.matrix();
        assert_eq!(m.len(), 2);
        assert!(!m[&("fmriprep".to_string(), "ds-a".to_string())].success);
        assert_eq!(c.history("fmriprep", "ds-a").len(), 2);
        assert_eq!(c.history("fmriprep", "ds-a")[0].at_us, 100);
    }

    #[test]
    fn cache_file_round_trips() {
        let mut c = ProvenanceCache::new();
        c.record(entry("p1", "d1", 1, true));
        c.record(entry("p2", "d2", 2, false));
        let text = c.to_cache_file();
        let parsed = ProvenanceCache::from_cache_file(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.to_cache_file(), text);
    }

    #[test]
    fn parser_skips_garbage() {
        let parsed = ProvenanceCache::from_cache_file("# comment\n\nnot-a-row\na\tb\n");
        assert!(parsed.is_empty());
    }

    #[test]
    fn v1_rows_parse_with_no_digest() {
        let legacy = "# task provenance cache v1\np1\td1\ttask-1\tci://a/1\t1\tok\n";
        let parsed = ProvenanceCache::from_cache_file(legacy);
        assert_eq!(parsed.len(), 1);
        let m = parsed.matrix();
        let e = m[&("p1".to_string(), "d1".to_string())];
        assert!(e.cas_digest.is_none());
        assert!(e.success);
    }

    #[test]
    fn v2_rows_round_trip_the_digest() {
        let mut c = ProvenanceCache::new();
        c.record(entry("p1", "d1", 7, true));
        let text = c.to_cache_file();
        assert!(text.starts_with("# task provenance cache v2\n"));
        let parsed = ProvenanceCache::from_cache_file(&text);
        assert_eq!(parsed.len(), 1);
        let m = parsed.matrix();
        let e = m[&("p1".to_string(), "d1".to_string())];
        assert_eq!(e.cas_digest, Digest::of_str("p1/d1/7"));
    }
}
