//! # hpcci-provenance — provenance capture, research objects, badges
//!
//! The paper's central argument (§5): *"with sufficient accounting (previous
//! execution runs and their results, system provenance, source code) and
//! automated periodic re-execution demonstrating result validity, it is
//! possible to evaluate reproducibility without direct access to the
//! infrastructure."* This crate supplies the accounting:
//!
//! * [`capture::EnvironmentCapture`] — hardware descriptor, software
//!   environment freeze, and container reference for one execution site;
//! * [`record::ExecutionRecord`] — one run: commit, command, site, local
//!   user, timings, outputs, and the federation trace slice;
//! * [`research_object::ResearchObject`] — an RO-Crate-like bundle of code
//!   reference + data + environment + execution records (§2);
//! * [`badges`] — the SC/CCGrid three-level badge taxonomy (§3.1), the
//!   AD/AE artifact model, a reviewer-process simulator with the canonical
//!   eight-hour budget, and a calibrated cohort generator that regenerates
//!   the Fig. 1 time series.

pub mod badges;
pub mod cache;
pub mod capture;
pub mod record;
pub mod research_object;

pub use badges::{Artifact, BadgeLevel, CohortParams, ReviewOutcome, Reviewer};
pub use cache::{CacheEntry, ProvenanceCache};
pub use capture::EnvironmentCapture;
pub use record::ExecutionRecord;
pub use research_object::ResearchObject;
