//! Execution records: one run, fully accounted.

use crate::capture::EnvironmentCapture;

/// A complete record of one remote execution — the unit of evidence a
//  reproducibility reviewer inspects in lieu of re-running (§6.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionRecord {
    /// Repository and commit pin the exact code version.
    pub repo: String,
    pub commit: String,
    /// The command that ran.
    pub command: String,
    /// Where and as whom it ran.
    pub environment: EnvironmentCapture,
    pub ran_as: String,
    pub node: String,
    /// Virtual timestamps (µs).
    pub started_us: u64,
    pub ended_us: u64,
    /// Outcome.
    pub success: bool,
    pub stdout: String,
    pub stderr: String,
}

impl ExecutionRecord {
    pub fn runtime_secs(&self) -> f64 {
        (self.ended_us.saturating_sub(self.started_us)) as f64 / 1e6
    }

    /// The key question a reviewer asks of two records: same code, same
    /// command, same qualitative outcome?
    pub fn consistent_with(&self, other: &ExecutionRecord) -> bool {
        self.repo == other.repo
            && self.commit == other.commit
            && self.command == other.command
            && self.success == other.success
    }

    /// Render the record as a provenance artifact.
    pub fn render(&self) -> String {
        format!(
            "repo: {}@{}\ncommand: {}\nran_as: {} on {}\nruntime: {:.3}s\nsuccess: {}\n--- environment ---\n{}",
            self.repo,
            self.commit,
            self.command,
            self.ran_as,
            self.node,
            self.runtime_secs(),
            self.success,
            self.environment.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(commit: &str, success: bool) -> ExecutionRecord {
        ExecutionRecord {
            repo: "parsl/parsl-docking-tutorial".into(),
            commit: commit.into(),
            command: "pytest tests/".into(),
            environment: EnvironmentCapture {
                site: "chameleon-tacc".into(),
                site_kind: "Cloud".into(),
                hostname: "chi".into(),
                cores: 64,
                mem_gb: 256,
                cpu_speed: 1.3,
                env_name: None,
                packages: vec![],
                container: None,
            },
            ran_as: "cc".into(),
            node: "chi".into(),
            started_us: 1_000_000,
            ended_us: 4_500_000,
            success,
            stdout: "4 passed".into(),
            stderr: String::new(),
        }
    }

    #[test]
    fn runtime_computation() {
        assert!((record("a", true).runtime_secs() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn consistency_requires_same_code_and_outcome() {
        let a = record("abc", true);
        assert!(a.consistent_with(&record("abc", true)));
        assert!(!a.consistent_with(&record("def", true)), "different commit");
        assert!(!a.consistent_with(&record("abc", false)), "different outcome");
    }

    #[test]
    fn render_contains_the_essentials() {
        let text = record("abc", true).render();
        assert!(text.contains("parsl-docking-tutorial@abc"));
        assert!(text.contains("pytest tests/"));
        assert!(text.contains("chameleon-tacc"));
    }
}
