//! Research objects: RO-Crate-style bundles (§2).
//!
//! "Structured collections of digital resources related to a scientific
//! investigation" — code reference, data descriptors, environment capture,
//! and execution records, packaged with enough metadata to satisfy the
//! "Artifacts Available" checklist (§3.1.1).

use crate::capture::EnvironmentCapture;
use crate::record::ExecutionRecord;

/// A data resource referenced by the research object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataResource {
    pub name: String,
    /// Where the data lives (a permanent repository per §3.1.1).
    pub location: String,
    pub description: String,
    pub size_bytes: u64,
}

/// An RO-Crate-like research object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResearchObject {
    pub title: String,
    pub authors: Vec<String>,
    pub license: String,
    /// Code reference: repository + commit.
    pub repo: String,
    pub commit: String,
    /// DOI-style persistent identifier, once archived.
    pub doi: Option<String>,
    pub data: Vec<DataResource>,
    pub environments: Vec<EnvironmentCapture>,
    pub executions: Vec<ExecutionRecord>,
    pub documentation: String,
}

impl ResearchObject {
    pub fn new(title: &str, repo: &str, commit: &str) -> Self {
        ResearchObject {
            title: title.to_string(),
            repo: repo.to_string(),
            commit: commit.to_string(),
            license: "MIT".to_string(),
            ..ResearchObject::default()
        }
    }

    pub fn with_author(mut self, author: &str) -> Self {
        self.authors.push(author.to_string());
        self
    }

    pub fn with_documentation(mut self, docs: &str) -> Self {
        self.documentation = docs.to_string();
        self
    }

    pub fn add_data(&mut self, name: &str, location: &str, description: &str, size: u64) {
        self.data.push(DataResource {
            name: name.to_string(),
            location: location.to_string(),
            description: description.to_string(),
            size_bytes: size,
        });
    }

    pub fn add_execution(&mut self, record: ExecutionRecord) {
        if !self.environments.contains(&record.environment)
        {
            self.environments.push(record.environment.clone());
        }
        self.executions.push(record);
    }

    /// Archive to a permanent repository, assigning a persistent identifier
    /// (Zenodo-style).
    pub fn archive(&mut self, serial: u64) -> &str {
        self.doi.get_or_insert(format!("10.5281/hpcci.{serial}"));
        self.doi.as_deref().expect("just inserted")
    }

    /// The "Artifacts Available" checklist (§3.1.1): public location (DOI),
    /// open license, documentation, and described data.
    pub fn artifacts_available(&self) -> bool {
        self.doi.is_some()
            && !self.license.is_empty()
            && !self.documentation.is_empty()
            && self.data.iter().all(|d| !d.description.is_empty())
    }

    /// Do the execution records demonstrate at least one successful run at
    /// each of `n` distinct sites? (The multi-site evidence CORRECT exists
    /// to produce.)
    pub fn demonstrates_sites(&self, n: usize) -> bool {
        let mut sites: Vec<&str> = self
            .executions
            .iter()
            .filter(|r| r.success)
            .map(|r| r.environment.site.as_str())
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites.len() >= n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn execution(site: &str, success: bool) -> ExecutionRecord {
        ExecutionRecord {
            repo: "o/r".into(),
            commit: "c".into(),
            command: "pytest".into(),
            environment: EnvironmentCapture {
                site: site.into(),
                site_kind: "Hpc".into(),
                hostname: "h".into(),
                cores: 1,
                mem_gb: 1,
                cpu_speed: 1.0,
                env_name: None,
                packages: vec![],
                container: None,
            },
            ran_as: "u".into(),
            node: "h".into(),
            started_us: 0,
            ended_us: 1,
            success,
            stdout: String::new(),
            stderr: String::new(),
        }
    }

    #[test]
    fn availability_checklist() {
        let mut ro = ResearchObject::new("ParslDock", "o/r", "abc")
            .with_author("Hayot-Sasson")
            .with_documentation("README with install and usage");
        ro.add_data("pdb", "zenodo.org/rec/1", "receptor structures", 1024);
        assert!(!ro.artifacts_available(), "no DOI yet");
        let doi = ro.archive(42).to_string();
        assert!(doi.starts_with("10.5281/"));
        assert!(ro.artifacts_available());
        // Archiving twice keeps the same DOI.
        assert_eq!(ro.archive(99), doi);
    }

    #[test]
    fn multi_site_evidence() {
        let mut ro = ResearchObject::new("t", "o/r", "c");
        ro.add_execution(execution("chameleon-tacc", true));
        ro.add_execution(execution("tamu-faster", true));
        ro.add_execution(execution("sdsc-expanse", false));
        assert!(ro.demonstrates_sites(2));
        assert!(!ro.demonstrates_sites(3), "failed run doesn't count");
        // Environments deduplicated per site.
        assert_eq!(ro.environments.len(), 3);
        ro.add_execution(execution("chameleon-tacc", true));
        assert_eq!(ro.environments.len(), 3);
    }
}
