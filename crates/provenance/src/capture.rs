//! Environment capture: what the code ran *on*.
//!
//! §7.4 identifies the gap CORRECT leaves open — "displaying the resource
//! configuration at each invocation" — and proposes a secondary call that
//! captures a trace of the system's software environment as an artifact.
//! This module is that capture.

use hpcci_cluster::Site;

/// Re-export-friendly alias: a frozen package list.
pub type PackageList = Vec<hpcci_cluster::software::Package>;

/// A point-in-time description of the execution environment at one site.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvironmentCapture {
    pub site: String,
    /// e.g. `"Cloud"`, `"Hpc"`, `"Workstation"`.
    pub site_kind: String,
    pub hostname: String,
    pub cores: u32,
    pub mem_gb: u32,
    pub cpu_speed: f64,
    /// Name of the software environment used, if any.
    pub env_name: Option<String>,
    /// Frozen package list (`conda list` equivalent).
    pub packages: PackageList,
    /// Container image reference, if execution was containerized.
    pub container: Option<String>,
}

impl EnvironmentCapture {
    /// Capture the environment of a site's login node plus a named software
    /// environment (if present).
    pub fn of_site(site: &Site, env_name: Option<&str>, container: Option<&str>) -> Self {
        let node = site.login_node();
        let packages = env_name
            .and_then(|n| site.envs.get(n).ok())
            .map(|e| e.freeze())
            .unwrap_or_default();
        EnvironmentCapture {
            site: site.id.to_string(),
            site_kind: format!("{:?}", site.kind),
            hostname: node.map(|n| n.hostname.clone()).unwrap_or_default(),
            cores: node.map(|n| n.cores).unwrap_or(0),
            mem_gb: node.map(|n| n.mem_gb).unwrap_or(0),
            cpu_speed: site.perf.cpu_speed,
            env_name: env_name.map(str::to_string),
            packages,
            container: container.map(str::to_string),
        }
    }

    /// Render as the text block CORRECT would attach as a workflow artifact.
    pub fn render(&self) -> String {
        let mut out = format!(
            "site: {} ({})\nhost: {} cores={} mem={}GB speed={:.2}\n",
            self.site, self.site_kind, self.hostname, self.cores, self.mem_gb, self.cpu_speed
        );
        if let Some(c) = &self.container {
            out.push_str(&format!("container: {c}\n"));
        }
        if let Some(e) = &self.env_name {
            out.push_str(&format!("environment: {e}\n"));
        }
        for p in &self.packages {
            out.push_str(&format!("  {}=={}\n", p.name, p.version));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcci_cluster::Site;

    fn site_with_env() -> Site {
        let mut s = Site::purdue_anvil();
        let env = s.envs.create("psij");
        env.install("psij-python", "0.9.9");
        env.install("psutil", "5.9.8");
        s
    }

    #[test]
    fn captures_hardware_and_packages() {
        let s = site_with_env();
        let cap = EnvironmentCapture::of_site(&s, Some("psij"), None);
        assert_eq!(cap.site, "purdue-anvil");
        assert_eq!(cap.hostname, "anvil-login-1");
        assert_eq!(cap.packages.len(), 2);
        assert_eq!(cap.packages[0].name, "psij-python");
        let text = cap.render();
        assert!(text.contains("psij-python==0.9.9"));
        assert!(text.contains("anvil-login-1"));
    }

    #[test]
    fn missing_env_yields_empty_packages() {
        let s = Site::chameleon_tacc();
        let cap = EnvironmentCapture::of_site(&s, Some("ghost"), Some("ghcr.io/img:v1"));
        assert!(cap.packages.is_empty());
        assert!(cap.render().contains("container: ghcr.io/img:v1"));
    }
}
