//! The reproducibility-badge process (§3.1) and the Fig. 1 cohort generator.
//!
//! Models the three-level SC/CCGrid badge taxonomy, the AD/AE artifact
//! package, and the reviewer process ("reviewers are usually given … about
//! eight hours or one business day"). The cohort generator synthesizes SC
//! submission years with calibrated quality trends; we have no access to SC
//! internal data, so Fig. 1 is reproduced in *shape* (documented in
//! EXPERIMENTS.md): artifact availability rising steeply over time, evaluated
//! a fraction of that, results-reproduced the smallest share.

use hpcci_sim::DetRng;

/// The three badge levels; higher implies lower (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BadgeLevel {
    /// "Artifacts Available" / "Open Research Objects".
    ArtifactsAvailable,
    /// "Research Objects Reviewed" / "Artifacts Evaluated".
    ArtifactsEvaluated,
    /// "Results Reproduced" / "Results Replicated".
    ResultsReproduced,
}

/// A submitted artifact package (AD + AE + the artifact itself), reduced to
/// the attributes the review process acts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Code + data in a permanent public repository with open license.
    pub publicly_archived: bool,
    /// Documentation sufficient to understand core functionality.
    pub documented: bool,
    /// Quality of the Artifact Evaluation instructions in \[0,1\] — drives
    /// install success and time.
    pub ae_quality: f64,
    /// Artifact ships an automated CI test suite (§3.1.1's "ideally").
    pub has_ci: bool,
    /// Results need hardware reviewers do not have (GPU cluster, scale).
    pub hardware_gated: bool,
    /// Documented CORRECT-style remote execution records + provenance that
    /// reviewers can inspect instead of re-running (§6.3's argument).
    pub remote_ci_evidence: bool,
    /// Hours to re-run the (downscaled) key experiments.
    pub experiment_hours: f64,
    /// Run-to-run variance of results in \[0,1\]; high variance makes the
    /// "validate central claims" judgement fail more often.
    pub result_variance: f64,
}

/// What reviewing an artifact produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReviewOutcome {
    /// Highest level awarded, if any.
    pub awarded: Option<BadgeLevel>,
    pub hours_spent: f64,
    /// Problems encountered, in the paper's failure taxonomy (§3.1.2).
    pub problems: Vec<String>,
}

impl ReviewOutcome {
    pub fn reached(&self, level: BadgeLevel) -> bool {
        self.awarded.map(|a| a >= level).unwrap_or(false)
    }
}

/// A badge reviewer with a time budget (the canonical eight hours).
#[derive(Debug, Clone)]
pub struct Reviewer {
    pub budget_hours: f64,
}

impl Default for Reviewer {
    fn default() -> Self {
        Reviewer { budget_hours: 8.0 }
    }
}

impl Reviewer {
    /// Execute the §3.1.2 review methodology against one artifact.
    pub fn review(&self, artifact: &Artifact, rng: &mut DetRng) -> ReviewOutcome {
        let mut problems = Vec::new();
        let mut hours = 0.0;

        // Level 1: Artifacts Available — archive + documentation check.
        hours += 0.5;
        if !artifact.publicly_archived {
            problems.push("code/data not in a permanent public repository".to_string());
            return ReviewOutcome { awarded: None, hours_spent: hours, problems };
        }
        if !artifact.documented {
            problems.push("documentation insufficient to understand core functionality".to_string());
            return ReviewOutcome { awarded: None, hours_spent: hours, problems };
        }
        let mut awarded = BadgeLevel::ArtifactsAvailable;

        // Level 2: Artifacts Evaluated — install and verify core behaviour.
        // Good AE instructions and a CI suite both cut install time and risk.
        let install_hours = 1.0 + 4.0 * (1.0 - artifact.ae_quality) * if artifact.has_ci { 0.5 } else { 1.0 };
        let install_fail_p = (1.0 - artifact.ae_quality) * if artifact.has_ci { 0.15 } else { 0.5 };
        hours += install_hours;
        if hours > self.budget_hours {
            problems.push("ran out of reviewer time during installation".to_string());
            return ReviewOutcome { awarded: Some(awarded), hours_spent: self.budget_hours, problems };
        }
        if rng.chance(install_fail_p) {
            problems.push("installation failed (versioning issues / implicit assumptions)".to_string());
            return ReviewOutcome { awarded: Some(awarded), hours_spent: hours, problems };
        }
        awarded = BadgeLevel::ArtifactsEvaluated;

        // Level 3: Results Reproduced — re-run key experiments, or inspect
        // documented remote-execution records when hardware is out of reach.
        if artifact.hardware_gated && !artifact.remote_ci_evidence {
            problems.push("required hardware unavailable to reviewers".to_string());
            return ReviewOutcome { awarded: Some(awarded), hours_spent: hours, problems };
        }
        let rerun_hours = if artifact.hardware_gated {
            // Inspecting execution records and provenance instead of running.
            1.0
        } else {
            artifact.experiment_hours
        };
        hours += rerun_hours;
        if hours > self.budget_hours {
            problems.push("experiments exceed the reviewer time budget".to_string());
            return ReviewOutcome { awarded: Some(awarded), hours_spent: self.budget_hours, problems };
        }
        // Central-claim validation tolerates hardware differences but not
        // wild variance; a baseline share of reproductions fails on missing
        // environment variables, data accessibility, and similar issues the
        // paper's §3.1.2 failure taxonomy lists.
        if rng.chance((1.0 - artifact.ae_quality) * 0.9 + artifact.result_variance * 0.8) {
            problems.push("observed trends did not match the AD's description".to_string());
            return ReviewOutcome { awarded: Some(awarded), hours_spent: hours, problems };
        }
        ReviewOutcome {
            awarded: Some(BadgeLevel::ResultsReproduced),
            hours_spent: hours,
            problems,
        }
    }
}

/// Parameters of one submission-year cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortParams {
    pub year: u32,
    pub submissions: u32,
    /// Share of papers submitting artifacts at all.
    pub artifact_share: f64,
    /// Mean AE quality (instructions etc.) of submitted artifacts.
    pub mean_ae_quality: f64,
    /// Share of artifacts shipping CI.
    pub ci_share: f64,
    /// Share of artifacts gated on hardware reviewers lack.
    pub hardware_gated_share: f64,
    /// Share of hardware-gated artifacts with CORRECT-style remote evidence.
    pub remote_evidence_share: f64,
}

impl CohortParams {
    /// Calibrated SC trend for Fig. 1: the artifact initiative ramps up from
    /// 2016; quality and CI adoption improve; remote evidence stays rare.
    pub fn sc_year(year: u32) -> CohortParams {
        assert!((2016..=2024).contains(&year), "calibrated range is 2016-2024");
        let t = (year - 2016) as f64 / 8.0; // 0.0 .. 1.0
        CohortParams {
            year,
            submissions: 90 + (t * 30.0) as u32,
            artifact_share: 0.12 + 0.55 * t,
            mean_ae_quality: 0.45 + 0.30 * t,
            ci_share: 0.10 + 0.45 * t,
            hardware_gated_share: 0.45 - 0.10 * t,
            remote_evidence_share: 0.02 + 0.10 * t,
        }
    }

    /// Generate the cohort's artifacts deterministically.
    pub fn generate(&self, rng: &mut DetRng) -> Vec<Artifact> {
        let n_artifacts = (self.submissions as f64 * self.artifact_share).round() as u32;
        (0..n_artifacts)
            .map(|_| {
                let ae_quality = (self.mean_ae_quality + rng.normal(0.0, 0.15)).clamp(0.05, 0.98);
                let hardware_gated = rng.chance(self.hardware_gated_share);
                Artifact {
                    publicly_archived: rng.chance(0.92),
                    documented: rng.chance(0.85),
                    ae_quality,
                    has_ci: rng.chance(self.ci_share),
                    hardware_gated,
                    remote_ci_evidence: hardware_gated && rng.chance(self.remote_evidence_share),
                    experiment_hours: rng.lognormal(0.8, 0.7).clamp(0.2, 24.0),
                    result_variance: rng.range_f64(0.0, 0.35),
                }
            })
            .collect()
    }
}

/// Per-year badge counts: the Fig. 1 series.
#[derive(Debug, Clone, PartialEq)]
pub struct YearCounts {
    pub year: u32,
    pub submissions: u32,
    pub available: u32,
    pub evaluated: u32,
    pub reproduced: u32,
}

/// Run the badge process over the calibrated SC years. Each count is the
/// number of papers whose award *reached* that level (levels are inclusive,
/// matching how badge totals are reported).
pub fn fig1_series(seed: u64) -> Vec<YearCounts> {
    let mut rng = DetRng::seed_from_u64(seed);
    let reviewer = Reviewer::default();
    (2016..=2024)
        .map(|year| {
            let params = CohortParams::sc_year(year);
            let mut counts = YearCounts {
                year,
                submissions: params.submissions,
                available: 0,
                evaluated: 0,
                reproduced: 0,
            };
            let mut year_rng = rng.fork(&format!("sc{year}"));
            for artifact in params.generate(&mut year_rng) {
                let outcome = reviewer.review(&artifact, &mut year_rng);
                if outcome.reached(BadgeLevel::ArtifactsAvailable) {
                    counts.available += 1;
                }
                if outcome.reached(BadgeLevel::ArtifactsEvaluated) {
                    counts.evaluated += 1;
                }
                if outcome.reached(BadgeLevel::ResultsReproduced) {
                    counts.reproduced += 1;
                }
            }
            counts
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_artifact() -> Artifact {
        Artifact {
            publicly_archived: true,
            documented: true,
            ae_quality: 0.95,
            has_ci: true,
            hardware_gated: false,
            remote_ci_evidence: false,
            experiment_hours: 2.0,
            result_variance: 0.0,
        }
    }

    #[test]
    fn badge_levels_are_ordered() {
        assert!(BadgeLevel::ResultsReproduced > BadgeLevel::ArtifactsEvaluated);
        assert!(BadgeLevel::ArtifactsEvaluated > BadgeLevel::ArtifactsAvailable);
    }

    #[test]
    fn excellent_artifact_reaches_top_badge() {
        let mut rng = DetRng::seed_from_u64(1);
        let outcome = Reviewer::default().review(&good_artifact(), &mut rng);
        assert_eq!(outcome.awarded, Some(BadgeLevel::ResultsReproduced));
        assert!(outcome.problems.is_empty());
        assert!(outcome.hours_spent <= 8.0);
    }

    #[test]
    fn unarchived_artifact_gets_nothing() {
        let mut rng = DetRng::seed_from_u64(2);
        let artifact = Artifact {
            publicly_archived: false,
            ..good_artifact()
        };
        let outcome = Reviewer::default().review(&artifact, &mut rng);
        assert_eq!(outcome.awarded, None);
        assert!(!outcome.problems.is_empty());
    }

    #[test]
    fn hardware_gate_blocks_reproduction_without_remote_evidence() {
        let mut rng = DetRng::seed_from_u64(3);
        let gated = Artifact {
            hardware_gated: true,
            ..good_artifact()
        };
        let outcome = Reviewer::default().review(&gated, &mut rng);
        assert_eq!(outcome.awarded, Some(BadgeLevel::ArtifactsEvaluated));
        assert!(outcome.problems.iter().any(|p| p.contains("hardware")));

        // The paper's thesis: remote CI evidence substitutes for access.
        let with_evidence = Artifact {
            hardware_gated: true,
            remote_ci_evidence: true,
            ..good_artifact()
        };
        let outcome2 = Reviewer::default().review(&with_evidence, &mut rng);
        assert_eq!(outcome2.awarded, Some(BadgeLevel::ResultsReproduced));
    }

    #[test]
    fn budget_limits_long_experiments() {
        let mut rng = DetRng::seed_from_u64(4);
        let long = Artifact {
            experiment_hours: 30.0,
            ..good_artifact()
        };
        let outcome = Reviewer::default().review(&long, &mut rng);
        assert_eq!(outcome.awarded, Some(BadgeLevel::ArtifactsEvaluated));
        assert!((outcome.hours_spent - 8.0).abs() < 1e-9, "clamped to budget");
    }

    #[test]
    fn fig1_series_is_deterministic_and_trending() {
        let a = fig1_series(1234);
        let b = fig1_series(1234);
        assert_eq!(a, b, "same seed, same series");
        assert_eq!(a.len(), 9);
        // Shape: availability grows strongly over the period.
        assert!(a[8].available > a[0].available * 3);
        // Hierarchy holds every year.
        for y in &a {
            assert!(y.available >= y.evaluated);
            assert!(y.evaluated >= y.reproduced);
            assert!(y.available <= y.submissions);
        }
        // Reproduced stays a clear minority even in the last year.
        assert!(a[8].reproduced * 2 < a[8].available);
    }

    #[test]
    fn cohort_generation_respects_share() {
        let params = CohortParams::sc_year(2024);
        let mut rng = DetRng::seed_from_u64(5);
        let artifacts = params.generate(&mut rng);
        let expected = (params.submissions as f64 * params.artifact_share).round() as usize;
        assert_eq!(artifacts.len(), expected);
    }

    #[test]
    #[should_panic(expected = "calibrated range")]
    fn out_of_range_year_panics() {
        let _ = CohortParams::sc_year(2010);
    }
}
