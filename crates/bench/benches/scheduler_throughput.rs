//! Harness-performance bench: batch-scheduler event throughput under both
//! policies — the substrate must stay fast enough that Fig.-4-scale
//! experiments are instant and badge-cohort sweeps are cheap.

use hpcci::cluster::{NodeId, Uid};
use hpcci::scheduler::{
    BatchScheduler, JobPayload, JobSpec, Partition, SchedulerConfig, SchedulingPolicy,
};
use hpcci::sim::{Advance, DetRng, SimDuration, SimTime};
use hpcci_bench::timing::bench;

fn run_workload(policy: SchedulingPolicy, jobs: usize) {
    let mut s = BatchScheduler::new(SchedulerConfig { policy });
    s.add_partition(Partition::new("compute", (0..16).map(NodeId).collect(), 32));
    let mut rng = DetRng::seed_from_u64(9);
    let mut at = SimTime::ZERO;
    for i in 0..jobs {
        at += SimDuration::from_secs(rng.range_u64(1, 30));
        let spec = JobSpec {
            name: format!("j{i}"),
            user: Uid(1),
            allocation: "a".to_string(),
            partition: "compute".to_string(),
            nodes: rng.range_u64(1, 4) as u32,
            cores_per_node: 32,
            walltime: SimDuration::from_mins(rng.range_u64(5, 120)),
            payload: JobPayload::Fixed {
                duration: SimDuration::from_secs(rng.range_u64(30, 3000)),
                success: true,
            },
        };
        let _ = s.submit(spec, at);
    }
    while let Some(t) = s.next_event() {
        s.advance_to(t);
    }
}

fn main() {
    println!("scheduler_500_jobs");
    for (label, policy) in [
        ("fifo", SchedulingPolicy::Fifo),
        ("easy_backfill", SchedulingPolicy::EasyBackfill),
    ] {
        bench(label, 20, || run_workload(policy, 500));
    }
    bench("fig1_full_series", 20, || {
        hpcci::provenance::badges::fig1_series(1234)
    });
}
