//! Real-compute bench: the docking kernel's parallel scaling (crossbeam
//! scoped threads over pose scoring) and grid-size cost growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcci::parsldock::{dock, DockParams, Ligand, Receptor};
use hpcci::parsldock::prep::{prepare_ligand, prepare_receptor};

fn bench_thread_scaling(c: &mut Criterion) {
    let receptor = prepare_receptor(Receptor::generate("1abc", 300));
    let ligand = prepare_ligand(Ligand::generate("aspirin"));
    let mut group = c.benchmark_group("dock_threads_grid6");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            let params = DockParams {
                grid: 6,
                rotations: 2,
                threads,
                spacing: 1.0,
            };
            b.iter(|| dock(&receptor, &ligand, &params))
        });
    }
    group.finish();
}

fn bench_grid_growth(c: &mut Criterion) {
    let receptor = prepare_receptor(Receptor::generate("1abc", 200));
    let ligand = prepare_ligand(Ligand::generate("ibuprofen"));
    let mut group = c.benchmark_group("dock_grid_4threads");
    for grid in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, &grid| {
            let params = DockParams {
                grid,
                rotations: 2,
                threads: 4,
                spacing: 1.0,
            };
            b.iter(|| dock(&receptor, &ligand, &params))
        });
    }
    group.finish();
}

fn bench_surrogate_training(c: &mut Criterion) {
    use hpcci::parsldock::{descriptors, SurrogateModel};
    let samples: Vec<_> = (0..64)
        .map(|i| {
            let l = prepare_ligand(Ligand::generate(&format!("lig{i}")));
            (descriptors(&l), -(i as f64) * 0.1)
        })
        .collect();
    c.bench_function("surrogate_fit_64", |b| b.iter(|| SurrogateModel::fit(&samples)));
}

criterion_group!(benches, bench_thread_scaling, bench_grid_growth, bench_surrogate_training);
criterion_main!(benches);
