//! Real-compute bench: the docking kernel's parallel scaling (crossbeam
//! scoped threads over pose scoring) and grid-size cost growth.

use hpcci::parsldock::prep::{prepare_ligand, prepare_receptor};
use hpcci::parsldock::{dock, DockParams, Ligand, Receptor};
use hpcci_bench::timing::bench;

fn main() {
    println!("dock_threads_grid6");
    let receptor = prepare_receptor(Receptor::generate("1abc", 300));
    let ligand = prepare_ligand(Ligand::generate("aspirin"));
    for threads in [1usize, 2, 4, 8] {
        let params = DockParams {
            grid: 6,
            rotations: 2,
            threads,
            spacing: 1.0,
        };
        bench(&format!("threads={threads}"), 10, || {
            dock(&receptor, &ligand, &params)
        });
    }

    println!("dock_grid_4threads");
    let receptor = prepare_receptor(Receptor::generate("1abc", 200));
    let ligand = prepare_ligand(Ligand::generate("ibuprofen"));
    for grid in [3usize, 5, 7] {
        let params = DockParams {
            grid,
            rotations: 2,
            threads: 4,
            spacing: 1.0,
        };
        bench(&format!("grid={grid}"), 10, || {
            dock(&receptor, &ligand, &params)
        });
    }

    {
        use hpcci::parsldock::{descriptors, SurrogateModel};
        let samples: Vec<_> = (0..64)
            .map(|i| {
                let l = prepare_ligand(Ligand::generate(&format!("lig{i}")));
                (descriptors(&l), -(i as f64) * 0.1)
            })
            .collect();
        bench("surrogate_fit_64", 20, || SurrogateModel::fit(&samples));
    }
}
