//! The KaMPIng headline claim, measured for real: ergonomic bindings vs raw
//! message-passing calls. These are wall-clock measurements of actual
//! threads exchanging actual messages — the one place the reproduction's
//! numbers are directly comparable in kind to the original paper's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcci::minimpi::{run_mpi, Kamping, ReduceOp};

const RANKS: usize = 4;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_4ranks");
    for len in [256usize, 4096] {
        group.bench_with_input(BenchmarkId::new("raw", len), &len, |b, &len| {
            b.iter(|| {
                run_mpi(RANKS, |rank| {
                    let data = vec![rank.rank as f64; len];
                    rank.allreduce_f64(&data, ReduceOp::Sum)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("kamping", len), &len, |b, &len| {
            b.iter(|| {
                run_mpi(RANKS, |rank| {
                    let data = vec![rank.rank as f64; len];
                    Kamping::new(rank).allreduce_sum(&data)
                })
            })
        });
    }
    group.finish();
}

fn bench_gatherv(c: &mut Criterion) {
    let mut group = c.benchmark_group("gatherv_4ranks");
    group.bench_function("raw_two_phase", |b| {
        b.iter(|| {
            run_mpi(RANKS, |rank| {
                // What raw MPI forces: explicit size exchange, then data.
                let data: Vec<i64> = vec![rank.rank as i64; rank.rank + 1];
                let _counts = rank.gather(0, &[data.len() as i64]);
                rank.gather(0, &data)
            })
        })
    });
    group.bench_function("kamping_gatherv", |b| {
        b.iter(|| {
            run_mpi(RANKS, |rank| {
                let data: Vec<i64> = vec![rank.rank as i64; rank.rank + 1];
                Kamping::new(rank).gatherv(0, &data)
            })
        })
    });
    group.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    c.bench_function("alltoall_4ranks_1k", |b| {
        b.iter(|| {
            run_mpi(RANKS, |rank| {
                let chunks: Vec<Vec<f64>> =
                    (0..RANKS).map(|d| vec![(rank.rank + d) as f64; 256]).collect();
                rank.alltoall(&chunks)
            })
        })
    });
}

criterion_group!(benches, bench_allreduce, bench_gatherv, bench_alltoall);
criterion_main!(benches);
