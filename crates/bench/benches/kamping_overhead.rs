//! The KaMPIng headline claim, measured for real: ergonomic bindings vs raw
//! message-passing calls. These are wall-clock measurements of actual
//! threads exchanging actual messages — the one place the reproduction's
//! numbers are directly comparable in kind to the original paper's.

use hpcci::minimpi::{run_mpi, Kamping, ReduceOp};
use hpcci_bench::timing::bench;

const RANKS: usize = 4;

fn main() {
    println!("allreduce_4ranks");
    for len in [256usize, 4096] {
        bench(&format!("raw/{len}"), 20, || {
            run_mpi(RANKS, |rank| {
                let data = vec![rank.rank as f64; len];
                rank.allreduce_f64(&data, ReduceOp::Sum)
            })
        });
        bench(&format!("kamping/{len}"), 20, || {
            run_mpi(RANKS, |rank| {
                let data = vec![rank.rank as f64; len];
                Kamping::new(rank).allreduce_sum(&data)
            })
        });
    }

    println!("gatherv_4ranks");
    bench("raw_two_phase", 20, || {
        run_mpi(RANKS, |rank| {
            // What raw MPI forces: explicit size exchange, then data.
            let data: Vec<i64> = vec![rank.rank as i64; rank.rank + 1];
            let _counts = rank.gather(0, &[data.len() as i64]);
            rank.gather(0, &data)
        })
    });
    bench("kamping_gatherv", 20, || {
        run_mpi(RANKS, |rank| {
            let data: Vec<i64> = vec![rank.rank as i64; rank.rank + 1];
            Kamping::new(rank).gatherv(0, &data)
        })
    });

    bench("alltoall_4ranks_1k", 20, || {
        run_mpi(RANKS, |rank| {
            let chunks: Vec<Vec<f64>> = (0..RANKS)
                .map(|d| vec![(rank.rank + d) as f64; 256])
                .collect();
            rank.alltoall(&chunks)
        })
    });
}
