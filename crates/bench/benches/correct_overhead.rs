//! Harness-performance bench: complete CORRECT workflow runs per second of
//! wall time — the §6 experiments replayed end to end (auth, clone, remote
//! suite, artifacts) as the unit of work.

use hpcci::scenarios::{kamping_scenario, psij_scenario};
use hpcci_bench::timing::bench;

fn main() {
    println!("correct_end_to_end");
    let mut seed = 10_000u64;
    bench("psij_run", 20, || {
        seed += 1;
        let mut s = psij_scenario(seed, false);
        let runs = s.push_approve_run("vhayot");
        assert_eq!(
            s.fed.engine.run(runs[0]).unwrap().status,
            hpcci::ci::RunStatus::Success
        );
    });
    let mut seed = 20_000u64;
    bench("kamping_artifact_suite", 10, || {
        seed += 1;
        let mut s = kamping_scenario(seed);
        let run = s.dispatch_approve_run("vhayot");
        assert_eq!(
            s.fed.engine.run(run).unwrap().status,
            hpcci::ci::RunStatus::Success
        );
    });
}
