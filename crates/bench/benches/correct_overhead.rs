//! Harness-performance bench: complete CORRECT workflow runs per second of
//! wall time — the §6 experiments replayed end to end (auth, clone, remote
//! suite, artifacts) as the unit of work.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcci::scenarios::{kamping_scenario, psij_scenario};

fn bench_end_to_end_psij(c: &mut Criterion) {
    let mut group = c.benchmark_group("correct_end_to_end");
    group.sample_size(20);
    group.bench_function("psij_run", |b| {
        let mut seed = 10_000u64;
        b.iter(|| {
            seed += 1;
            let mut s = psij_scenario(seed, false);
            let runs = s.push_approve_run("vhayot");
            assert_eq!(
                s.fed.engine.run(runs[0]).unwrap().status,
                hpcci::ci::RunStatus::Success
            );
        })
    });
    group.finish();
}

fn bench_end_to_end_kamping(c: &mut Criterion) {
    let mut group = c.benchmark_group("correct_end_to_end");
    group.sample_size(10);
    group.bench_function("kamping_artifact_suite", |b| {
        let mut seed = 20_000u64;
        b.iter(|| {
            seed += 1;
            let mut s = kamping_scenario(seed);
            let run = s.dispatch_approve_run("vhayot");
            assert_eq!(
                s.fed.engine.run(run).unwrap().status,
                hpcci::ci::RunStatus::Success
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end_psij, bench_end_to_end_kamping);
criterion_main!(benches);
