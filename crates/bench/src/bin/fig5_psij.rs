//! FIG5: regenerate Fig. 5 — the PSI/J test invocation failure — showing
//! both panes: the error surfaced in the CI UI (top) and the full execution
//! stdout preserved in the workflow artifact (bottom).

use hpcci::scenarios::psij_scenario;

fn main() {
    let mut s = psij_scenario(5, true); // inject the dependency fault
    let runs = s.push_approve_run("vhayot");
    let run = s.fed.engine.run(runs[0]).unwrap().clone();

    hpcci_bench::section("Fig. 5 (top) — error reported back to the GitHub runner");
    println!("run {} -> {:?}  {}", run.id, run.status, run.badge());
    let step = run.step("run").expect("correct step");
    for line in step.stderr.lines() {
        println!("Error: {line}");
    }

    hpcci_bench::section("Fig. 5 (bottom) — execution stdout stored within a workflow artifact");
    let now = s.fed.now();
    let artifact = s
        .fed
        .engine
        .artifacts
        .fetch(runs[0], "pytest-output", now)
        .expect("artifact stored regardless of failure");
    for (ix, line) in artifact.text().lines().enumerate() {
        println!("{:>4} {line}", ix + 247); // Fig. 5's log excerpt starts at line 247
    }

    hpcci_bench::section("recovery — same workflow after the dependency is fixed");
    let mut fixed = psij_scenario(5, false);
    let fixed_runs = fixed.push_approve_run("vhayot");
    let fixed_run = fixed.fed.engine.run(fixed_runs[0]).unwrap();
    println!("run {} -> {:?}  {}", fixed_run.id, fixed_run.status, fixed_run.badge());
}
