//! FIG2: the CORRECT system overview, regenerated as the actual message
//! trace of one action invocation — every component and hop of Fig. 2,
//! observed rather than drawn.

use hpcci::scenarios::psij_scenario;

fn main() {
    let mut s = psij_scenario(2, false);
    let runs = s.push_approve_run("vhayot");
    let run = s.fed.engine.run(runs[0]).unwrap().clone();

    hpcci_bench::section("Fig. 2 — CORRECT system overview (observed message trace)");
    println!(
        "actors: GitHub repo ({}) -> workflow runner -> CORRECT action -> Globus Auth ->\n\
         Globus Compute cloud -> MEP at purdue-anvil -> UEP (x-vhayot) -> login node\n",
        s.repo
    );
    let cloud = s.fed.cloud.lock();
    print!("{}", cloud.trace.render());
    drop(cloud);

    hpcci_bench::section("resulting workflow run");
    println!("status: {:?}", run.status);
    for step in &run.steps {
        println!(
            "  step {}/{} [{}] {} -> {}",
            step.job,
            step.step,
            if step.success { "ok" } else { "FAILED" },
            step.started,
            step.ended
        );
    }
}
