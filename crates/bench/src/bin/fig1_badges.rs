//! FIG1: regenerate Fig. 1 — reproducibility badges awarded by SC over time
//! — from the calibrated cohort generator, plus the ablation showing what
//! CORRECT-style remote evidence does to the top badge.

use hpcci::provenance::badges::{fig1_series, CohortParams, Reviewer};
use hpcci::sim::DetRng;

fn main() {
    let seed = 1234;
    hpcci_bench::section("Fig. 1 — reproducibility badges awarded by SC over time (synthesized)");
    println!(
        "{:>6}{:>13}{:>12}{:>12}{:>12}",
        "year", "submissions", "available", "evaluated", "reproduced"
    );
    for y in fig1_series(seed) {
        println!(
            "{:>6}{:>13}{:>12}{:>12}{:>12}",
            y.year, y.submissions, y.available, y.evaluated, y.reproduced
        );
    }

    hpcci_bench::section("Ablation — 2024 cohort, share of hardware-gated artifacts with remote CI evidence");
    println!("{:>26}{:>12}{:>12}{:>12}", "remote-evidence share", "available", "evaluated", "reproduced");
    for share in [0.0, 0.12, 0.5, 1.0] {
        let mut params = CohortParams::sc_year(2024);
        params.remote_evidence_share = share;
        let mut rng = DetRng::seed_from_u64(seed);
        let reviewer = Reviewer::default();
        let (mut available, mut evaluated, mut reproduced) = (0, 0, 0);
        for artifact in params.generate(&mut rng) {
            let outcome = reviewer.review(&artifact, &mut rng);
            use hpcci::provenance::BadgeLevel::*;
            if outcome.reached(ArtifactsAvailable) {
                available += 1;
            }
            if outcome.reached(ArtifactsEvaluated) {
                evaluated += 1;
            }
            if outcome.reached(ResultsReproduced) {
                reproduced += 1;
            }
        }
        println!("{share:>26.2}{available:>12}{evaluated:>12}{reproduced:>12}");
    }
    println!(
        "\nShape check vs paper: availability rises steeply 2016->2024; evaluated tracks below it;\n\
         results-reproduced remains the smallest share; remote evidence lifts only the top badge."
    );
}
