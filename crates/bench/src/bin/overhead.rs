//! OVH: §7.3 — overhead on HPC infrastructure. Compares, in virtual time,
//! what a short test suite costs when executed:
//!
//! 1. directly on the site (ssh-and-run, no accounting) — the floor;
//! 2. as a single FaaS task (cloud round-trip + endpoint queue);
//! 3. as a full CORRECT step (runner bootstrap + auth + remote clone +
//!    task + artifact), i.e. everything the paper's workflow pays.

use hpcci::cluster::{NodeRole, Site};
use hpcci::correct::{EndpointSpec, Federation};
use hpcci::faas::{EndpointId, ExecOutcome};
use hpcci::sim::DetRng;
use hpcci::vcs::WorkTree;

/// Simulated suite cost in reference seconds.
const SUITE_WORK: f64 = 10.0;

fn register_tox(rt: &mut hpcci::faas::SiteRuntime) {
    rt.commands
        .register("tox", |_| ExecOutcome::ok("4 passed", SUITE_WORK));
}

fn main() {
    hpcci_bench::section("§7.3 — overhead of reaching the site (virtual seconds, anvil login node)");

    // 1. Direct execution.
    let direct = {
        let mut rt = hpcci::faas::SiteRuntime::new(Site::purdue_anvil()).with_scheduler(128);
        register_tox(&mut rt);
        let account = rt.site.add_account("x-vhayot", "CIS230030");
        let cred = hpcci::cluster::Cred::of(&account);
        let mut rng = DetRng::seed_from_u64(1);
        let out = rt.execute(
            "tox",
            &account,
            &cred,
            NodeRole::Login,
            "anvil-login-1",
            hpcci::sim::SimTime::ZERO,
            &mut rng,
            None,
        );
        let node_speed = rt.site.login_node().unwrap().cpu_speed;
        rt.site
            .perf
            .compute_time(out.work, node_speed, &mut rng)
            .as_secs_f64()
    };

    // 2 + 3 share a federation.
    let build = || {
        let mut fed = Federation::builder(7).build();
        let user = fed.onboard_user("vhayot@uchicago.edu", "uchicago.edu");
        let site = fed.add_site(Site::purdue_anvil(), 128);
        {
            let mut rt = fed.site(site).shared.lock();
            rt.site.add_account("x-vhayot", "CIS230030");
            register_tox(&mut rt);
        }
        let mut mapping = hpcci::auth::IdentityMapping::new("purdue-anvil");
        mapping.add_explicit("vhayot@uchicago.edu", "x-vhayot");
        fed.register(EndpointSpec::multi_user(
            "ep-anvil",
            site,
            mapping,
            hpcci::faas::MepTemplate::login_only(),
        ));
        (fed, user)
    };

    // 2. Bare FaaS task.
    let faas_task = {
        let (mut fed, user) = build();
        let token = fed
            .auth
            .lock()
            .authenticate(
                &hpcci::auth::ClientId(user.client_id.clone()),
                &hpcci::auth::ClientSecret::new(&user.client_secret),
                vec![hpcci::auth::Scope::compute_api()],
                hpcci::sim::SimTime::ZERO,
            )
            .unwrap();
        let start = fed.now();
        let task = fed
            .cloud
            .lock()
            .submit_shell(&token, &EndpointId("ep-anvil".into()), "tox", start)
            .unwrap();
        while fed.world().step() {}
        let _ = task;
        (fed.now() - start).as_secs_f64()
    };

    // 3. Full CORRECT workflow step.
    let correct_step = {
        let (mut fed, user) = build();
        let repo = "lab/app";
        let now = fed.now();
        fed.hosting.lock().create_repo("lab", "app", now);
        fed.hosting
            .lock()
            .push(repo, "main", WorkTree::new().with_file("tox.ini", "[tox]"), "v", "i", now)
            .unwrap();
        let _ = fed.pump_events();
        fed.provision_environment(repo, "anvil", "vhayot", &user);
        fed.engine.add_workflow(
            repo,
            hpcci::ci::WorkflowDef::new("ci")
                .on_event(hpcci::ci::TriggerEvent::push_any())
                .with_job(
                    hpcci::ci::JobDef::new("test")
                        .with_environment("anvil")
                        .with_step(hpcci::correct::recipes::correct_step("run", "ep-anvil", "tox")),
                ),
        );
        let tree = WorkTree::new().with_file("tox.ini", "[tox]\nenvlist=py312");
        fed.hosting.lock().push(repo, "main", tree, "v", "change", fed.now()).unwrap();
        let runs = fed.pump_events();
        let start = fed.now();
        fed.approve_and_run(runs[0], "vhayot").unwrap();
        let run = fed.engine.run(runs[0]).unwrap();
        assert_eq!(run.status, hpcci::ci::RunStatus::Success);
        (run.ended_at.unwrap() - start).as_secs_f64()
    };

    println!("{:<44}{:>12}", "path", "seconds");
    println!("{:<44}{:>12.3}", "1. direct execution on the login node", direct);
    println!("{:<44}{:>12.3}", "2. single FaaS task (cloud round-trip)", faas_task);
    println!("{:<44}{:>12.3}", "3. full CORRECT step (bootstrap+clone+run)", correct_step);
    println!(
        "\nfaas overhead: +{:.3}s ({:.0}%); full CORRECT overhead: +{:.3}s ({:.0}%)",
        faas_task - direct,
        (faas_task / direct - 1.0) * 100.0,
        correct_step - direct,
        (correct_step / direct - 1.0) * 100.0
    );
    println!(
        "shape: constant seconds-scale overhead per run — negligible against real HPC test\n\
         suites, dominated by the runner bootstrap (pip install) and the remote clone;\n\
         repeated tasks amortize everything but the task round-trip (§7.3's pilot argument)."
    );
}
