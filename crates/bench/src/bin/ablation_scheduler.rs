//! Ablation: EASY backfill vs plain FIFO on a mixed batch workload —
//! makespan and mean queue wait (virtual time). Justifies the scheduler
//! design choice called out in DESIGN.md §4.

use hpcci::cluster::NodeId;
use hpcci::scheduler::{
    BatchScheduler, JobPayload, JobSpec, Partition, SchedulerConfig, SchedulingPolicy,
};
use hpcci::sim::{Advance, DetRng, SimDuration, SimTime};

fn workload(seed: u64) -> Vec<JobSpec> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..120)
        .map(|i| {
            // Mix: many narrow short jobs, a few wide long ones.
            let wide = rng.chance(0.15);
            let nodes = if wide { rng.range_u64(4, 9) as u32 } else { 1 };
            let secs = if wide {
                rng.range_u64(1800, 5400)
            } else {
                rng.range_u64(60, 900)
            };
            JobSpec {
                name: format!("job{i}"),
                user: hpcci::cluster::Uid(1000 + (i % 7) as u32),
                allocation: format!("proj{}", i % 3),
                partition: "compute".to_string(),
                nodes,
                cores_per_node: 32,
                // Users overestimate walltime ~2x, classic.
                walltime: SimDuration::from_secs(secs * 2),
                payload: JobPayload::Fixed {
                    duration: SimDuration::from_secs(secs),
                    success: true,
                },
            }
        })
        .collect()
}

fn run(policy: SchedulingPolicy, seed: u64) -> (f64, f64, f64) {
    let mut s = BatchScheduler::new(SchedulerConfig { policy });
    s.add_partition(Partition::new("compute", (0..8).map(NodeId).collect(), 32));
    let jobs = workload(seed);
    let mut arrival = SimTime::ZERO;
    let mut rng = DetRng::seed_from_u64(seed ^ 0xabc);
    let mut ids = Vec::new();
    for spec in jobs {
        arrival += SimDuration::from_secs_f64(rng.exponential(20.0));
        ids.push(s.submit(spec, arrival).unwrap());
    }
    while let Some(t) = s.next_event() {
        s.advance_to(t);
    }
    let makespan = s.now().as_secs_f64();
    let waits: Vec<f64> = ids
        .iter()
        .map(|&id| s.state(id).unwrap().queue_wait().unwrap().as_secs_f64())
        .collect();
    let mean_wait = waits.iter().sum::<f64>() / waits.len() as f64;
    let max_wait = waits.iter().cloned().fold(0.0, f64::max);
    (makespan, mean_wait, max_wait)
}

fn main() {
    hpcci_bench::section("Ablation — EASY backfill vs FIFO (8 nodes x 32 cores, 120 mixed jobs)");
    println!(
        "{:<16}{:>16}{:>18}{:>16}",
        "policy", "makespan (s)", "mean wait (s)", "max wait (s)"
    );
    let mut improvements = Vec::new();
    for seed in [1, 2, 3] {
        let (mf, wf, xf) = run(SchedulingPolicy::Fifo, seed);
        let (mb, wb, xb) = run(SchedulingPolicy::EasyBackfill, seed);
        println!("seed {seed}:");
        println!("{:<16}{:>16.0}{:>18.0}{:>16.0}", "  FIFO", mf, wf, xf);
        println!("{:<16}{:>16.0}{:>18.0}{:>16.0}", "  EASY backfill", mb, wb, xb);
        improvements.push(wf / wb.max(1.0));
    }
    let mean_impr = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!(
        "\nbackfill cuts mean queue wait by ~{mean_impr:.1}x on this workload; pilots submitted \
         by CORRECT benefit identically."
    );
}
